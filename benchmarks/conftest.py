"""Shared benchmark fixtures and result capture.

Each benchmark regenerates one of the paper's tables or figures and saves
the rendered rows/series under ``benchmarks/results/`` so the artifact
survives pytest's output capture.  Scaled-down parameters keep a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range; the
paper-scale runs recorded in EXPERIMENTS.md use the CLI (``enki-repro``)
with default parameters.

Benchmarks that track the perf trajectory additionally record wall-times
through the session-scoped :func:`bench_json` fixture, which merges them
into ``BENCH_core.json`` at the repo root when the session ends — a
machine-readable log of greedy/B&B solve times, settlement latency and
study throughput (serial vs parallel) from this PR onward.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable perf-trajectory log, at the repo root by design.
BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _cpu_cores() -> int:
    """Cores this process may actually run on (affinity mask)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cpu_cores_logical() -> int:
    """Logical cores in the machine, ignoring the affinity mask."""
    return os.cpu_count() or 1


@pytest.fixture(scope="session", autouse=True)
def warm_jit_kernels():
    """Warm the JIT kernel cache once before any benchmark times anything.

    One-time numba compilation (or cache load) must never land inside a
    timed region; the cost is recorded separately as
    ``jit_compile_seconds`` in the BENCH meta.  A no-op on the python
    backend.
    """
    from repro.kernels import warm_kernels

    warm_kernels()


@pytest.fixture(scope="session")
def bench_json():
    """Recorder that persists named wall-time entries to ``BENCH_core.json``.

    Usage: ``bench_json("greedy_solve_n50", seconds=0.0004, n_households=50)``.
    Entries recorded during the session are merged over any existing file
    (so partial benchmark runs refresh only what they measured) together
    with machine metadata.  Pass ``section="robustness"`` to file an entry
    under a different top-level section than ``"benchmarks"`` (used for
    the quarantine/fallback overhead trajectory).

    Every timed entry automatically carries ``kernel_backend`` and
    ``cpu_cores_visible`` (recorders may override them) so each row is
    interpretable on its own — a timing without the backend and core
    count that produced it is not a trajectory point.  The ``"gates"``
    section is exempt; gate rows record bound/reason only.
    """
    entries = {}

    def _record(name: str, section: str = "benchmarks", **fields) -> None:
        if section != "gates":
            from repro.kernels import active_backend

            fields.setdefault("kernel_backend", active_backend())
            fields.setdefault("cpu_cores_visible", _cpu_cores())
        entries.setdefault(section, {})[name] = fields

    yield _record

    if not entries:
        return
    payload = {"meta": {}, "benchmarks": {}}
    if BENCH_JSON_PATH.exists():
        try:
            payload = json.loads(BENCH_JSON_PATH.read_text())
        except (ValueError, OSError):
            pass
    for section, section_entries in entries.items():
        payload.setdefault(section, {}).update(section_entries)
    from repro.kernels import kernel_meta

    payload["meta"] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        # ``cpu_cores`` kept for trajectory compatibility; it equals the
        # affinity-visible count, which is what parallel speedups obey.
        "cpu_cores": _cpu_cores(),
        "cpu_cores_visible": _cpu_cores(),
        "cpu_cores_logical": _cpu_cores_logical(),
        "platform": platform.platform(),
        # Kernel provenance: which repro.kernels build timed entries ran
        # under, the numba version (null on the python fallback), and the
        # one-time compile cost excluded from every timed region.
        **kernel_meta(),
    }
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def gate_note(bench_json):
    """Recorder for perf-smoke **gate** status, one entry per gate.

    Several perf gates only bind on capable runners (4+ visible cores for
    the service budgets, an importable numba for the kernel A/B, 2+ cores
    for the fan-out parallelism).  Every gate calls this exactly once per
    session with whether its assertion was enforced and why — recorded
    under the ``"gates"`` section of ``BENCH_core.json`` so CI can print
    a per-gate "bound" / "skipped on this runner" summary line instead of
    a silently green check that never asserted anything.
    """

    def _note(gate: str, bound: bool, reason: str) -> None:
        bench_json(gate, section="gates", bound=bound, reason=reason)
        status = "bound" if bound else "skipped on this runner"
        print(f"\n[gate] {gate}: {status} ({reason})")

    return _note


def time_call(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-time of ``fn()`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="session")
def save_result():
    """Writer that persists a rendered experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rendered: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print(f"\n[{name}]\n{rendered}")

    return _save


@pytest.fixture(scope="session")
def study():
    """One shared user-study run for the Tables II-IV / Figures 8-9 benches."""
    from repro.experiments.user_study_run import run_default_study

    return run_default_study(seed=1720)


@pytest.fixture(scope="session")
def welfare_small():
    """One shared scaled social-welfare run for figs 4-6 extraction benches."""
    from repro.experiments.social_welfare import run_social_welfare_study

    return run_social_welfare_study(
        populations=(10, 20, 30), days=3, seed=2017, optimal_time_limit_s=10.0
    )


def day_problem(n_households: int, seed: int = 2017):
    """A representative §VI day instance for solver benchmarks."""
    from repro.allocation.base import AllocationProblem
    from repro.core.mechanism import truthful_reports
    from repro.pricing.quadratic import QuadraticPricing
    from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

    generator = ProfileGenerator()
    profiles = generator.sample_population(
        np.random.default_rng(seed), n_households
    )
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, QuadraticPricing()
    )
