"""Shared benchmark fixtures and result capture.

Each benchmark regenerates one of the paper's tables or figures and saves
the rendered rows/series under ``benchmarks/results/`` so the artifact
survives pytest's output capture.  Scaled-down parameters keep a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range; the
paper-scale runs recorded in EXPERIMENTS.md use the CLI (``enki-repro``)
with default parameters.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Writer that persists a rendered experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rendered: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print(f"\n[{name}]\n{rendered}")

    return _save


@pytest.fixture(scope="session")
def study():
    """One shared user-study run for the Tables II-IV / Figures 8-9 benches."""
    from repro.experiments.user_study_run import run_default_study

    return run_default_study(seed=1720)


@pytest.fixture(scope="session")
def welfare_small():
    """One shared scaled social-welfare run for figs 4-6 extraction benches."""
    from repro.experiments.social_welfare import run_social_welfare_study

    return run_social_welfare_study(
        populations=(10, 20, 30), days=3, seed=2017, optimal_time_limit_s=10.0
    )


def day_problem(n_households: int, seed: int = 2017):
    """A representative §VI day instance for solver benchmarks."""
    from repro.allocation.base import AllocationProblem
    from repro.core.mechanism import truthful_reports
    from repro.pricing.quadratic import QuadraticPricing
    from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

    generator = ProfileGenerator()
    profiles = generator.sample_population(
        np.random.default_rng(seed), n_households
    )
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, QuadraticPricing()
    )
