"""Ablation benches: ordering, xi sweep, pricing model, VCG contrast.

Expected shapes:

* ordering — the paper's ascending-flexibility order beats random
  placement; greedy placement in any order beats uniform random;
* xi — center surplus grows linearly in xi, household utility falls;
* pricing — the strictly convex quadratic flattens at least as well as
  the merely convex two-step price;
* VCG — Enki is always budget balanced and orders of magnitude faster
  than the n+1 exact solves VCG needs.
"""

from repro.experiments import (
    ablation_ordering,
    ablation_pricing,
    ablation_xi,
    examples_section4,
    vcg_contrast,
)


def test_bench_ordering(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: ablation_ordering.run(populations=(10, 20), days=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    assert result.mean_cost("enki-greedy") <= result.mean_cost("random") + 1e-9
    assert result.mean_cost("order-random") <= result.mean_cost("random") + 1e-9
    save_result("ablation_ordering", result.render())


def test_bench_xi(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: ablation_xi.run(
            xis=(1.0, 1.1, 1.2, 1.5, 2.0), n_households=20, days=3, seed=2017
        ),
        rounds=1,
        iterations=1,
    )
    surpluses = [p.center_surplus for p in result.points]
    assert surpluses == sorted(surpluses)
    utilities = [p.mean_utility for p in result.points]
    assert utilities == sorted(utilities, reverse=True)
    save_result("ablation_xi", result.render())


def test_bench_pricing(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: ablation_pricing.run(populations=(10, 20), days=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_pricing", result.render())


def test_bench_vcg_contrast(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: vcg_contrast.run(n_households=10, days=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    assert result.enki_always_balanced
    assert result.mean_slowdown > 1.0
    save_result("vcg_contrast", result.render())


def test_bench_baseline_landscape(benchmark, save_result):
    from repro.experiments import baseline_landscape

    result = benchmark.pedantic(
        lambda: baseline_landscape.run(n_households=20, days=6, seed=2017),
        rounds=1,
        iterations=1,
    )
    enki = result.row("enki")
    dlc = result.row("dlc")
    base = result.row("no-control")
    assert enki.unserved_fraction == 0.0
    assert dlc.unserved_fraction > 0.0
    assert enki.mean_peak_kw <= base.mean_peak_kw + 1e-9
    save_result("baseline_landscape", result.render())


def test_bench_section4_examples(benchmark, save_result):
    result = benchmark(lambda: examples_section4.run(seed=7))
    save_result("examples_section4", result.render())
