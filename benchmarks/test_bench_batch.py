"""Perf-smoke gates for the batched multi-day engine and allocation cache.

Two A/B benches, both asserting bit-identical results before timing
anything (a fast wrong answer is not a speedup):

* ``study_batched_n1k_d64`` — a 64-day greedy study run as one fused
  columnar batch under the active kernel backend, against the same study
  as 64 per-day round trips under the forced python kernels.  The >= 3x
  gate binds only where numba is importable: on the python backend the
  dominant placement sweep is identical in both paths by design, so the
  batch fusion alone is worth a few percent, and the gate would measure
  noise.  No-numba runners record both timings and skip with a logged
  reason, same contract as ``greedy_kernel_n100k``.
* ``alloc_cache_warm_fig5`` — the fig5 study (greedy + branch and bound)
  run cold then warm on one shared :class:`AllocationCache`.  The >= 5x
  gate binds only when the cold run proved every exact-solver day AND
  spent real time doing it: anytime (unproven) results are deliberately
  uncacheable, so a runner too slow to prove within the budget re-solves
  those days warm and the ratio measures the time limit — while a runner
  so fast every day proves in milliseconds leaves nothing for the cache
  to amortize and the ratio measures fixed overhead.  Either way the
  timings are recorded and the skip is logged.
"""

import time

import pytest

from conftest import time_call


def _record_key(records):
    """Everything in a record except wall time and cache provenance."""
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost,
         r.proven_optimal, r.nodes_explored, r.served_tier)
        for r in records
    ]


def test_bench_study_batched_n1k_d64(bench_json, gate_note):
    from repro.allocation.greedy import GreedyFlexibilityAllocator
    from repro.kernels import (
        active_backend, forced_backend, numba_available, warm_kernels,
    )
    from repro.sim.engine import SocialWelfareStudy

    study = SocialWelfareStudy(
        allocators=[GreedyFlexibilityAllocator()], columnar=True
    )
    n, days, seed = 1000, 64, 2017

    with forced_backend("python"):
        per_day = study.run(n, days=days, seed=seed, workers=1)
        per_day_s = time_call(
            lambda: study.run(n, days=days, seed=seed, workers=1),
            repeats=3, warmup=0,
        )

    warm_kernels()  # one-time JIT compile outside the timed region
    batched = study.run(n, days=days, seed=seed, workers=1, batch_days=days)
    batched_s = time_call(
        lambda: study.run(n, days=days, seed=seed, workers=1, batch_days=days),
        repeats=3, warmup=0,
    )

    assert _record_key(per_day) == _record_key(batched), (
        "batched engine must be bit-identical to the per-day path"
    )

    speedup = per_day_s / batched_s if batched_s > 0 else float("inf")
    bench_json(
        "study_batched_n1k_d64",
        n_households=n,
        days=days,
        per_day_python_seconds=per_day_s,
        batched_seconds=batched_s,
        speedup_vs_per_day=speedup,
    )
    if not numba_available():
        message = (
            "numba is not importable on this runner; batched and per-day "
            "paths share the python placement sweep "
            f"(recorded {speedup:.2f}x for the trajectory), skipped the "
            ">=3x gate"
        )
        gate_note("study_batched_n1k_d64", False, message)
        pytest.skip(message)
    gate_note(
        "study_batched_n1k_d64", True,
        f"numba importable ({active_backend()} backend): "
        f"{speedup:.2f}x over the per-day python loop",
    )
    assert speedup >= 3.0, (
        f"batched engine is only {speedup:.2f}x the per-day python loop "
        f"({batched_s:.3f}s vs {per_day_s:.3f}s); the gate requires 3x"
    )


#: Cache A/B workload: sized (fixed seed, so the instances are
#: deterministic) so the exact solver dominates the cold run yet every
#: day proves within the budget on the reference box with an order of
#: magnitude to spare for slower runners.  B&B hardness is wildly
#: instance-dependent — most sampled days prove in milliseconds, a hard
#: day can outlive any budget — hence the two bind conditions below.
_CACHE_POPULATIONS = (28,)
_CACHE_DAYS = 4
_CACHE_TIME_LIMIT_S = 60.0
_CACHE_SEED = 2017

#: The gate only binds when the cold run's exact solves add up to real
#: work; below this the warm ratio measures fixed overhead, not caching.
_CACHE_MIN_SOLVER_S = 2.0


def test_bench_alloc_cache_warm_fig5(bench_json, gate_note):
    from repro.allocation.cache import AllocationCache
    from repro.experiments.social_welfare import run_social_welfare_study

    cache = AllocationCache()

    def _run():
        return run_social_welfare_study(
            populations=_CACHE_POPULATIONS,
            days=_CACHE_DAYS,
            seed=_CACHE_SEED,
            optimal_time_limit_s=_CACHE_TIME_LIMIT_S,
            columnar=True,
            batch_days=_CACHE_DAYS,
            alloc_cache=cache,
        )

    started = time.perf_counter()
    cold = _run()
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    warm = _run()
    warm_s = time.perf_counter() - started

    assert _record_key(cold.records) == _record_key(warm.records), (
        "warm-cache replay must be bit-identical to the cold run"
    )
    assert all(not r.cache_hit for r in cold.records)

    bnb = [r for r in cold.records if r.allocator == "optimal-bnb"]
    assert bnb, "fig5 study must exercise the exact solver"
    proven = sum(1 for r in bnb if r.proven_optimal)
    solver_s = sum(r.wall_time_s for r in bnb)
    stats = cache.stats()
    assert stats["hits"] > 0, "warm run must hit the cache"

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    bench_json(
        "alloc_cache_warm_fig5",
        populations=list(_CACHE_POPULATIONS),
        days=_CACHE_DAYS,
        cold_seconds=cold_s,
        warm_seconds=warm_s,
        warm_speedup=speedup,
        cold_bnb_solver_seconds=solver_s,
        proven_bnb_days=proven,
        bnb_days=len(bnb),
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
    )
    if proven < len(bnb):
        message = (
            f"cold run proved only {proven}/{len(bnb)} exact-solver days "
            f"within {_CACHE_TIME_LIMIT_S:.0f}s; unproven (anytime) results "
            "are uncacheable by design, so the warm ratio measures the "
            f"time limit, not the cache (recorded {speedup:.2f}x)"
        )
        gate_note("alloc_cache_warm_fig5", False, message)
        pytest.skip(message)
    if solver_s < _CACHE_MIN_SOLVER_S:
        message = (
            f"cold exact solves took only {solver_s:.2f}s on this runner "
            f"(< {_CACHE_MIN_SOLVER_S:.0f}s); nothing substantial for the "
            f"cache to amortize, recorded {speedup:.2f}x and skipped the "
            ">=5x gate"
        )
        gate_note("alloc_cache_warm_fig5", False, message)
        pytest.skip(message)
    gate_note(
        "alloc_cache_warm_fig5", True,
        f"all {len(bnb)} exact-solver days proved cold in {solver_s:.1f}s: "
        f"warm replay {speedup:.2f}x",
    )
    assert speedup >= 5.0, (
        f"warm-cache replay is only {speedup:.2f}x the cold run "
        f"({warm_s:.3f}s vs {cold_s:.3f}s); the gate requires 5x"
    )
