"""Benchmarks for the columnar (structure-of-arrays) large-n fast path.

The object path tops out around a few hundred households per second of
allocation; the columnar path is the large-n story — these benches record
the full sampled-allocated-settled day at n = 1k / 10k / 100k plus the
bare greedy kernel at 100k into ``BENCH_core.json``, the trajectory the
scaling table in ``docs/performance.md`` is transcribed from.  The
n = 100k day carries the ISSUE's acceptance budget: under 5 seconds.
"""

import random
import time

import numpy as np
import pytest

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.core.columnar import ColumnarReports
from repro.core.mechanism import EnkiMechanism
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.parallel import available_cores
from repro.sim.profiles import ProfileGenerator

from conftest import time_call

#: The ISSUE's acceptance budget for the full n = 100k day, in seconds.
_DAY_N100K_BUDGET_S = 5.0

#: Acceptance budget for the sharded 1M-household day (4+ core hosts).
_DAY_N1M_BUDGET_S = 5.0


def _columnar_day(n_households, seed=2017):
    """One full day: sample the population, allocate greedily, settle."""
    rng = np.random.default_rng(seed)
    cols = ProfileGenerator().sample_population_columnar(rng, n_households)
    neighborhood = cols.to_neighborhood("wide")
    mechanism = EnkiMechanism(seed=seed)
    return mechanism.run_day_columnar(neighborhood, rng=random.Random(seed))


def _record_day(bench_json, name, n_households, repeats):
    from repro.kernels import active_backend

    seconds = time_call(lambda: _columnar_day(n_households), repeats=repeats)
    bench_json(
        name,
        seconds=seconds,
        n_households=n_households,
        kernel_backend=active_backend(),
    )
    return seconds


def test_bench_day_n1k(bench_json):
    seconds = _record_day(bench_json, "day_n1k", 1_000, repeats=5)
    assert seconds < _DAY_N100K_BUDGET_S


def test_bench_day_n10k(bench_json):
    seconds = _record_day(bench_json, "day_n10k", 10_000, repeats=5)
    assert seconds < _DAY_N100K_BUDGET_S


def test_bench_day_n100k(bench_json):
    """The acceptance bench: a full 100k-household day in under 5 s."""
    seconds = _record_day(bench_json, "day_n100k", 100_000, repeats=3)
    assert seconds < _DAY_N100K_BUDGET_S, (
        f"columnar day at n=100k took {seconds:.2f}s, over the "
        f"{_DAY_N100K_BUDGET_S}s acceptance budget"
    )


@pytest.mark.slow
def test_bench_day_n1m_sharded(bench_json):
    """A 1M-household day sharded across workers over shm transport.

    Sampling is setup (recorded separately); the timed region is the
    sharded allocate + settle via :func:`run_columnar_day_sharded`, with
    the neighborhood packed once into a shared segment and each worker
    greedily solving a contiguous row slice.  The <5 s acceptance budget
    binds on 4+ visible-core hosts; smaller boxes record the time only.
    """
    from repro.sim.engine import run_columnar_day_sharded

    n = 1_000_000
    workers = 4
    shards = 8
    started = time.perf_counter()
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(2017), n
    )
    neighborhood = cols.to_neighborhood("wide")
    sampling_s = time.perf_counter() - started

    mechanism = EnkiMechanism(seed=2017)
    started = time.perf_counter()
    outcome = run_columnar_day_sharded(
        mechanism,
        neighborhood,
        shards=shards,
        workers=workers,
        rng=random.Random(2017),
    )
    day_s = time.perf_counter() - started
    assert outcome.settlement.total_cost > 0
    assert len(outcome.allocation_starts) == n

    from repro.kernels import active_backend

    cores = available_cores()
    bench_json(
        "day_n1m",
        seconds=day_s,
        sampling_seconds=sampling_s,
        n_households=n,
        shards=shards,
        workers=workers,
        cpu_cores_visible=cores,
        kernel_backend=active_backend(),
    )
    if cores >= 4:
        assert day_s < _DAY_N1M_BUDGET_S, (
            f"sharded day at n=1M took {day_s:.2f}s, over the "
            f"{_DAY_N1M_BUDGET_S}s budget on {cores} cores"
        )


def test_bench_greedy_solve_n100k(bench_json):
    """The bare vectorized greedy kernel at n = 100k (no sampling/settle)."""
    n = 100_000
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(2017), n
    )
    neighborhood = cols.to_neighborhood("wide")
    pricing = QuadraticPricing()
    compiled = ColumnarReports.truthful(neighborhood).compile(
        neighborhood, pricing
    )
    from repro.kernels import active_backend

    allocator = GreedyFlexibilityAllocator()
    seconds = time_call(
        lambda: allocator.solve_columnar(compiled, pricing, random.Random(0)),
        repeats=3,
    )
    bench_json(
        "greedy_solve_n100k",
        seconds=seconds,
        n_households=n,
        kernel_backend=active_backend(),
    )
    result = allocator.solve_columnar(compiled, pricing, random.Random(0))
    assert bool(np.all(result.starts >= compiled.win_start))
    assert bool(np.all(result.starts + compiled.duration <= compiled.win_end))
