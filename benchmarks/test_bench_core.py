"""Micro-benchmarks for the mechanism's core primitives.

Not tied to one paper artifact; these track the cost of the operations
every experiment is built from (settlement, scoring, greedy allocation),
so regressions in the hot paths show up even when the figure-level
benches drown them in workload generation.

``test_bench_bnb_n30_smoke`` doubles as the CI perf-smoke gate: it fails
when the exact solver's bench instance regresses more than 2x over the
committed ``BENCH_core.json`` trajectory (a deliberately loose threshold
that absorbs runner-speed noise but catches the "accidentally quadratic"
class of regression).
"""

import json
import pathlib
import random
import time

import numpy as np

from repro.core.defection import defection_scores
from repro.core.flexibility import predicted_flexibility
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.pricing.load_profile import LoadProfile
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

from conftest import day_problem


def _world(n=50, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def test_bench_predicted_flexibility(benchmark):
    neighborhood = _world()
    reports = truthful_reports(neighborhood)
    preferences = {hid: r.preference for hid, r in reports.items()}
    scores = benchmark(lambda: predicted_flexibility(preferences))
    assert len(scores) == 50


def test_bench_settlement(benchmark):
    neighborhood = _world()
    mechanism = EnkiMechanism(seed=0)
    reports = truthful_reports(neighborhood)
    allocation = mechanism.allocate(neighborhood, reports).allocation
    settlement = benchmark(
        lambda: mechanism.settle(neighborhood, reports, allocation, dict(allocation))
    )
    assert settlement.total_cost > 0


def test_bench_defection_scores(benchmark):
    neighborhood = _world()
    mechanism = EnkiMechanism(seed=0)
    reports = truthful_reports(neighborhood)
    allocation = mechanism.allocate(neighborhood, reports).allocation
    pricing = QuadraticPricing()
    scores = benchmark(
        lambda: defection_scores(
            allocation, dict(allocation), neighborhood.households, pricing
        )
    )
    assert all(value == 0.0 for value in scores.values())


def test_bench_quadratic_cost(benchmark):
    pricing = QuadraticPricing()
    profile = LoadProfile(np.random.default_rng(0).uniform(0, 30, 24))
    cost = benchmark(lambda: pricing.cost(profile))
    assert cost > 0


def test_bench_greedy_n50(benchmark):
    from repro.allocation.greedy import GreedyFlexibilityAllocator

    problem = day_problem(50)
    allocator = GreedyFlexibilityAllocator()
    result = benchmark(lambda: allocator.solve(problem, random.Random(0)))
    assert problem.is_feasible(result.allocation)


#: Committed perf trajectory (repo root); the smoke gate reads the
#: ``bnb_solve_n30`` entry refreshed on the recording machine.
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Regression tolerance over the committed time — loose on purpose, CI
#: runners are not the recording machine.
_BNB_REGRESSION_FACTOR = 2.0


def test_bench_bnb_n30_smoke(benchmark):
    from repro.allocation.optimal import BranchAndBoundAllocator

    problem = day_problem(30)
    allocator = BranchAndBoundAllocator(time_limit_s=30.0)
    result = benchmark(lambda: allocator.solve(problem, random.Random(0)))
    assert problem.is_feasible(result.allocation)
    assert result.proven_optimal

    committed = json.loads(_BENCH_JSON.read_text())["benchmarks"][
        "bnb_solve_n30"
    ]["seconds"]
    # Best-of-5 independent timing: robust against one noisy sample, and
    # not coupled to pytest-benchmark's calibration internals.
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        allocator.solve(problem, random.Random(0))
        best = min(best, time.perf_counter() - started)
    assert best <= _BNB_REGRESSION_FACTOR * committed, (
        f"bnb_solve_n30 took {best:.4f}s, more than "
        f"{_BNB_REGRESSION_FACTOR}x the committed {committed:.4f}s"
    )


def test_bench_greedy_kernel_n100k(bench_json, gate_note):
    """Perf-smoke gate for the JIT placement kernel: numba >= 3x python.

    Times the bare ``solve_columnar`` sweep at n = 100k under each kernel
    backend (same compiled problem, same rng seed — the allocations are
    bit-identical by construction, asserted here too) and records the A/B
    into ``BENCH_core.json``.  Without a working numba the gate records
    the python time and skips with a logged reason — the fallback must
    keep working everywhere, the speedup only binds where numba exists.
    """
    import logging

    import pytest

    from repro.allocation.greedy import GreedyFlexibilityAllocator
    from repro.core.columnar import ColumnarReports
    from repro.kernels import forced_backend, numba_available, warm_kernels
    from repro.sim.profiles import ProfileGenerator

    n = 100_000
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(2017), n
    )
    neighborhood = cols.to_neighborhood("wide")
    pricing = QuadraticPricing()
    compiled = ColumnarReports.truthful(neighborhood).compile(
        neighborhood, pricing
    )
    allocator = GreedyFlexibilityAllocator()

    def _solve():
        return allocator.solve_columnar(compiled, pricing, random.Random(0))

    with forced_backend("python"):
        python_result = _solve()
        best_python = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            _solve()
            best_python = min(best_python, time.perf_counter() - started)

    if not numba_available():
        # No-numba runners record the python time only: ``numba_seconds``
        # / ``speedup`` are *omitted*, never null, so downstream summaries
        # don't render "speedup: null" for a measurement that never ran.
        bench_json(
            "greedy_kernel_n100k",
            n_households=n,
            python_seconds=best_python,
        )
        message = (
            "numba is not importable on this runner; recorded the python "
            f"kernel time ({best_python:.3f}s) and skipped the >=3x gate"
        )
        gate_note("greedy_kernel_n100k", False, message)
        logging.getLogger(__name__).info(message)
        pytest.skip(message)

    with forced_backend("numba"):
        warm_kernels()  # compile outside the timed region
        numba_result = _solve()
        best_numba = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            _solve()
            best_numba = min(best_numba, time.perf_counter() - started)

    assert np.array_equal(python_result.starts, numba_result.starts)
    assert python_result.cost == numba_result.cost
    speedup = best_python / best_numba if best_numba > 0 else float("inf")
    bench_json(
        "greedy_kernel_n100k",
        n_households=n,
        python_seconds=best_python,
        numba_seconds=best_numba,
        speedup=speedup,
    )
    gate_note(
        "greedy_kernel_n100k", True,
        f"numba importable: {speedup:.2f}x over the python kernels",
    )
    assert speedup >= 3.0, (
        f"numba placement kernel is only {speedup:.2f}x the python build "
        f"({best_numba:.3f}s vs {best_python:.3f}s); the gate requires 3x"
    )


def test_bench_study_throughput_workers2(bench_json, gate_note):
    """Perf-smoke gate for the parallel day fan-out.

    A columnar greedy study (n=20k x 12 days) run serially and with two
    workers must return bit-identical records, and on hosts where at
    least two cores are visible to this process the two-worker run must
    achieve effective parallelism >= 1.5 (wall-time ratio).
    Single-visible-core runners skip the gate with a logged reason —
    fork fan-out cannot beat serial on one core.
    """
    import pytest

    from repro.allocation.greedy import GreedyFlexibilityAllocator
    from repro.sim.engine import SocialWelfareStudy
    from repro.sim.parallel import available_cores

    study = SocialWelfareStudy(
        allocators=[GreedyFlexibilityAllocator()], columnar=True
    )
    n, days, seed = 20_000, 12, 2017

    started = time.perf_counter()
    serial = study.run(n, days=days, seed=seed, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = study.run(n, days=days, seed=seed, workers=2)
    parallel_s = time.perf_counter() - started

    def _key(records):
        return [
            (r.day, r.n_households, r.allocator, r.par, r.cost,
             r.proven_optimal, r.nodes_explored, r.served_tier)
            for r in records
        ]

    assert _key(serial) == _key(parallel), (
        "workers=2 day fan-out must be bit-identical to serial"
    )

    cores = available_cores()
    effective = serial_s / parallel_s if parallel_s > 0 else float("inf")
    bench_json(
        "study_throughput_workers2",
        n_households=n,
        days=days,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        effective_parallelism=effective,
        cpu_cores_visible=cores,
    )
    if cores < 2:
        message = (
            f"effective-parallelism gate needs >= 2 visible cores, have "
            f"{cores} (recorded {effective:.2f}x for the trajectory)"
        )
        gate_note("study_throughput_workers2", False, message)
        pytest.skip(message)
    gate_note(
        "study_throughput_workers2", True,
        f"{cores} visible cores >= 2: {effective:.2f}x at workers=2",
    )
    assert effective >= 1.5, (
        f"expected effective parallelism >= 1.5 at workers=2 on {cores} "
        f"visible cores, got {effective:.2f}x"
    )


def test_bench_day_n10k_smoke(benchmark):
    """Perf-smoke gate for the columnar path: a full 10k-household day.

    Fails when the sampled-allocated-settled columnar day regresses more
    than 2x over the committed ``day_n10k`` trajectory — the same loose
    threshold as the B&B gate, catching the "a per-household loop crept
    back in" class of regression.
    """
    from repro.core.mechanism import EnkiMechanism
    from repro.sim.profiles import ProfileGenerator

    def _day():
        cols = ProfileGenerator().sample_population_columnar(
            np.random.default_rng(2017), 10_000
        )
        neighborhood = cols.to_neighborhood("wide")
        return EnkiMechanism(seed=2017).run_day_columnar(
            neighborhood, rng=random.Random(2017)
        )

    outcome = benchmark(_day)
    assert outcome.settlement.total_cost > 0

    committed = json.loads(_BENCH_JSON.read_text())["benchmarks"][
        "day_n10k"
    ]["seconds"]
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        _day()
        best = min(best, time.perf_counter() - started)
    assert best <= _BNB_REGRESSION_FACTOR * committed, (
        f"day_n10k took {best:.4f}s, more than "
        f"{_BNB_REGRESSION_FACTOR}x the committed {committed:.4f}s"
    )
