"""Extension benches: decentralized dynamics, coalitions, multi-appliance.

Expected shapes: best-response dynamics converge in a few rounds and land
within a few percent of the greedy's cost; coalition pre-commitment drops
flexibility scores; multi-appliance days stay budget balanced.
"""

import random

from repro.core.mechanism import EnkiMechanism
from repro.core.types import Preference
from repro.experiments import ablation_decentralized, ext_coalitions
from repro.extensions.appliances import (
    ApplianceRequest,
    MultiApplianceEnki,
    MultiApplianceHousehold,
)


def test_bench_decentralized(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: ablation_decentralized.run(
            populations=(10, 20, 30), days=3, seed=2017
        ),
        rounds=1,
        iterations=1,
    )
    for point in result.points:
        assert point.converged_fraction == 1.0
        assert point.relative_excess < 0.15
    save_result("ablation_decentralized", result.render())


def test_bench_coalitions(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: ext_coalitions.run(
            sizes=(2, 3), n_households=20, days=3, seed=2017
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ext_coalitions", result.render())


def test_bench_forecast_market(benchmark, save_result):
    from repro.experiments import ext_forecast_market

    result = benchmark.pedantic(
        lambda: ext_forecast_market.run(n_households=10, days=10, seed=2017),
        rounds=1,
        iterations=1,
    )
    assert result.row("oracle").imbalance_cost == 0.0
    save_result("ext_forecast_market", result.render())


def test_bench_conservation(benchmark, save_result):
    from repro.experiments import ext_conservation

    result = benchmark.pedantic(
        lambda: ext_conservation.run(
            xis=(1.0, 1.5, 2.0), n_households=15, days=3, seed=2017
        ),
        rounds=1,
        iterations=1,
    )
    served = [p.mean_served_energy_kwh for p in result.points]
    assert served == sorted(served, reverse=True)
    save_result("ext_conservation", result.render())


def test_bench_scale_sweep(benchmark, save_result):
    from repro.experiments import abl_scale

    result = benchmark.pedantic(
        lambda: abl_scale.run(populations=(100, 250, 500, 1000), seed=2017),
        rounds=1,
        iterations=1,
    )
    assert all(p.par < 10.0 for p in result.points)
    save_result("abl_scale", result.render())


def test_bench_verify_properties(benchmark, save_result):
    from repro.experiments import verify_properties

    result = benchmark.pedantic(
        lambda: verify_properties.run(n_households=15, seed=2017),
        rounds=1,
        iterations=1,
    )
    assert result.all_passed
    save_result("verify_properties", result.render())


def test_bench_calculator_effect(benchmark, save_result):
    from repro.experiments import ext_calculator

    result = benchmark.pedantic(
        lambda: ext_calculator.run(seed=2017), rounds=1, iterations=1
    )
    assert result.overall_reduction > -0.05
    save_result("ext_calculator", result.render())


def test_bench_multi_appliance_day(benchmark):
    rng = random.Random(4)
    homes = [
        MultiApplianceHousehold.of(
            f"home{i}",
            rng.uniform(3.0, 9.0),
            ApplianceRequest("ev", Preference.of(17 + i % 3, 24, 3), rating_kw=7.2),
            ApplianceRequest("wash", Preference.of(8, 20, 1), rating_kw=2.0),
            base_charge=1.5,
        )
        for i in range(15)
    ]
    mechanism = MultiApplianceEnki(EnkiMechanism(seed=0))
    outcome = benchmark(lambda: mechanism.run_day(homes))
    assert len(outcome.bills) == 15
