"""Figure 4 bench: peak-to-average ratio, Enki vs Optimal.

The benchmark times one full simulated day (workload generation + both
allocators); the saved series is the figure's two PAR curves.  Expected
shape: the two series track each other closely (the paper reports the
differences "are not large").
"""

import random

import numpy as np

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.sim.engine import SocialWelfareStudy


def test_fig4_one_day_both_allocators(benchmark):
    study = SocialWelfareStudy(
        [
            GreedyFlexibilityAllocator(),
            BranchAndBoundAllocator(time_limit_s=10.0, seed=0),
        ]
    )
    records = benchmark.pedantic(
        lambda: study.run(20, days=1, seed=7), rounds=1, iterations=1
    )
    assert len(records) == 2


def test_fig4_series(benchmark, welfare_small, save_result):
    from repro.experiments import fig4_par

    result = benchmark(lambda: fig4_par.extract(welfare_small))
    # The reproduction claim: Enki's PAR stays close to Optimal's.
    for row in result.rows:
        assert abs(row.gap) < 1.5
    save_result("fig4_par", result.render())
