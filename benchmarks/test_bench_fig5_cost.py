"""Figure 5 bench: neighborhood cost, Enki vs Optimal.

Expected shape: Enki's cost sits within a few percent of Optimal's at
every population size (the paper's "approximately the same performance").
"""

from repro.core.mechanism import EnkiMechanism
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

import numpy as np


def test_fig5_enki_full_day_settlement(benchmark):
    """Time a complete Enki day (allocation + settlement) at n=30."""
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(5), 30)
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    mechanism = EnkiMechanism(seed=0)
    outcome = benchmark(lambda: mechanism.run_day(neighborhood))
    assert outcome.settlement.total_cost > 0


def test_fig5_series(benchmark, welfare_small, save_result):
    from repro.experiments import fig5_cost

    result = benchmark(lambda: fig5_cost.extract(welfare_small))
    for row in result.rows:
        # Greedy can never beat the exact optimum...
        assert row.enki_cost >= row.optimal_cost - 1e-6
        # ...and should stay within ~10% of it on §VI workloads.
        assert row.relative_excess < 0.10
    save_result("fig5_cost", result.render())
