"""Figure 6 bench: scheduling time, Enki greedy vs the exact solver.

This is the paper's headline tractability figure, regenerated directly as
benchmark timings: the same day instance is solved by both allocators at
each population size.  Expect the greedy to stay in the millisecond range
while the exact solver's time grows by orders of magnitude (the paper
reports ~600x at 40+ households).
"""

import random

import pytest

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator

from conftest import day_problem

POPULATIONS = (10, 20, 30, 40, 50)


@pytest.mark.parametrize("n", POPULATIONS)
def test_fig6_enki_greedy_time(benchmark, n):
    problem = day_problem(n)
    allocator = GreedyFlexibilityAllocator()
    result = benchmark(lambda: allocator.solve(problem, random.Random(0)))
    assert problem.is_feasible(result.allocation)


@pytest.mark.parametrize("n", POPULATIONS)
def test_fig6_optimal_time(benchmark, n):
    problem = day_problem(n)
    allocator = BranchAndBoundAllocator(time_limit_s=15.0, seed=0)
    result = benchmark.pedantic(
        lambda: allocator.solve(problem, random.Random(0)), rounds=1, iterations=1
    )
    assert problem.is_feasible(result.allocation)


def test_fig6_series(benchmark, welfare_small, save_result):
    from repro.experiments import fig6_time

    result = benchmark(lambda: fig6_time.extract(welfare_small))
    save_result("fig6_time", result.render())
