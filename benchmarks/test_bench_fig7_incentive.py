"""Figure 7 bench: the best-response sweep of the first household.

Expected shape: the truthful report (18, 20) tops (or nearly tops) the
mean-utility curve over all reportable windows — weak Bayesian incentive
compatibility.
"""

from repro.experiments import fig7_incentive


def test_fig7_sweep(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig7_incentive.run(n_households=20, repeats=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    sweep = result.sweep
    # Truth-telling leaves at most a sliver of utility on the table.
    assert sweep.regret() <= 0.2 * abs(sweep.best_utility) + 1e-9
    save_result("fig7_incentive", result.render())
