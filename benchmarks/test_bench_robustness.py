"""Benchmarks for the robustness stack's overhead and degradation latency.

Two costs matter for running the fault-tolerant pipeline by default:

* **Quarantine overhead** — screening every report in front of the
  mechanism must be cheap enough to leave on unconditionally.  Measured
  as the relative slowdown of a full settled day (allocate → consume →
  settle) at n=200 with a ``clamp`` quarantine versus none; the
  acceptance bar is < 5%.
* **Fallback-trigger latency** — when the primary solver dies, the time
  between its failure and the next tier serving an allocation.

Both are recorded to the ``robustness`` section of ``BENCH_core.json``
for the perf trajectory.
"""

import random
import time

import numpy as np

from repro.allocation.base import Allocator
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.robustness import FallbackAllocator, Quarantine
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

from conftest import day_problem, time_call

#: The settlement scale the <5% overhead claim is made at.
N_HOUSEHOLDS = 200


def _neighborhood(n=N_HOUSEHOLDS, seed=3):
    profiles = ProfileGenerator().sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


class _ExplodingAllocator(Allocator):
    """A primary tier that fails instantly (isolates trigger latency)."""

    name = "exploding"

    def solve(self, problem, rng=None):
        raise RuntimeError("injected failure")


def test_bench_quarantine_screen(benchmark):
    """Raw screen cost over n=200 clean reports (the fast path)."""
    neighborhood = _neighborhood()
    reports = truthful_reports(neighborhood)
    quarantine = Quarantine("clamp")
    result = benchmark(lambda: quarantine.screen(neighborhood, reports))
    assert len(result.accepted) == N_HOUSEHOLDS
    assert result.n_quarantined == 0


def test_bench_quarantine_overhead_per_settlement(bench_json):
    """Screening adds < 5% to a full settled day at n=200 (the ISSUE bar)."""
    neighborhood = _neighborhood()
    reports = truthful_reports(neighborhood)
    plain = EnkiMechanism(seed=0)
    quarantined = EnkiMechanism(seed=0, quarantine=Quarantine("clamp"))

    # Interleave the two pipelines and compare medians: run-to-run machine
    # noise (~10% on a 3 ms workload) hits both sides alike, and medians
    # shrug off the occasional descheduled round that a mean (or a single
    # unlucky min) would inherit.
    import gc
    import statistics

    plain_times, quarantined_times = [], []
    plain.run_day(neighborhood, reports)
    quarantined.run_day(neighborhood, reports)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(50):
            started = time.perf_counter()
            plain.run_day(neighborhood, reports)
            plain_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            quarantined.run_day(neighborhood, reports)
            quarantined_times.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    t_plain = statistics.median(plain_times)
    t_quarantined = statistics.median(quarantined_times)
    overhead = (t_quarantined - t_plain) / t_plain
    t_screen = time_call(
        lambda: Quarantine("clamp").screen(neighborhood, reports), repeats=10
    )

    bench_json(
        "quarantine_overhead_n200",
        section="robustness",
        settled_day_s=t_plain,
        settled_day_quarantined_s=t_quarantined,
        screen_s=t_screen,
        overhead_fraction=overhead,
        n_households=N_HOUSEHOLDS,
    )
    assert overhead < 0.05, (
        f"quarantine overhead {overhead:.1%} exceeds the 5% budget "
        f"({t_plain * 1e3:.2f} ms -> {t_quarantined * 1e3:.2f} ms)"
    )


def test_bench_fallback_trigger_latency(bench_json):
    """Time from primary-tier failure to the greedy tier serving a day."""
    problem = day_problem(50)
    chain = FallbackAllocator(
        [_ExplodingAllocator(), GreedyFlexibilityAllocator()]
    )
    greedy_alone = GreedyFlexibilityAllocator()

    t_chain = time_call(lambda: chain.solve(problem, random.Random(0)), repeats=10)
    t_greedy = time_call(
        lambda: greedy_alone.solve(problem, random.Random(0)), repeats=10
    )
    # The trigger cost is what the chain adds on top of the serving tier.
    trigger_s = max(t_chain - t_greedy, 0.0)

    result = chain.solve(problem, random.Random(0))
    assert result.served_tier == 1

    bench_json(
        "fallback_trigger_latency_n50",
        section="robustness",
        chain_solve_s=t_chain,
        serving_tier_solve_s=t_greedy,
        trigger_latency_s=trigger_s,
        n_households=50,
    )
    # Degrading tiers must be effectively free next to any real solve.
    assert trigger_s < 0.01


def test_bench_checkpoint_append(benchmark, tmp_path):
    """Per-day checkpoint persistence cost (one fsync'd JSONL line)."""
    from repro.robustness import CheckpointStore

    store = CheckpointStore(str(tmp_path / "bench.ck.jsonl"))
    payload = {"records": [{"day": 0, "cost": 1.0}] * 2}
    counter = iter(range(10**9))

    benchmark(lambda: store.append(f"day-{next(counter)}", payload))
