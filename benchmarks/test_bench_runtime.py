"""Perf-trajectory benchmarks for the parallel runtime and settlement path.

These are the entries the repo's ``BENCH_core.json`` is built from:

* greedy and branch-and-bound solve times on representative §VI instances;
* a full 200-household ``EnkiMechanism.settle`` (the vectorized Eq. 4-8
  chain), asserted to stay under 10 ms;
* social-welfare study throughput in days/sec, serial (``workers=1``) vs
  parallel (``workers=4``), with a record-for-record bit-identity check.

The parallel speedup assertion only applies on machines with 4+ cores —
on smaller boxes the numbers are still recorded (process fan-out cannot
beat serial on one core) so the trajectory stays honest per machine.
"""

import random
import time

import numpy as np

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.sim.engine import SocialWelfareStudy
from repro.sim.parallel import available_cores
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles

from conftest import day_problem, time_call

#: Throughput-study shape: >= 30 households x >= 8 days, greedy + optimal.
THROUGHPUT_N = 30
THROUGHPUT_DAYS = 8
THROUGHPUT_SEED = 2017
#: Anytime budget per B&B solve.  A search that *completes* within the
#: budget is deterministic; one cut off by the deadline is wall-clock
#: dependent, so the identity check below only binds B&B days that proved
#: optimality in both runs (greedy days always bind).
THROUGHPUT_TIME_LIMIT_S = 30.0
PARALLEL_WORKERS = 4


def _neighborhood(n, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def test_bench_greedy_solve_n50(bench_json):
    problem = day_problem(50)
    allocator = GreedyFlexibilityAllocator()
    seconds = time_call(lambda: allocator.solve(problem, random.Random(0)), repeats=20)
    bench_json("greedy_solve_n50", seconds=seconds, n_households=50)
    assert problem.is_feasible(allocator.solve(problem, random.Random(0)).allocation)


def test_bench_bnb_solve_n30(bench_json):
    problem = day_problem(30)
    allocator = BranchAndBoundAllocator(time_limit_s=30.0)
    result = allocator.solve(problem, random.Random(0))
    bench_json(
        "bnb_solve_n30",
        seconds=result.wall_time_s,
        n_households=30,
        proven_optimal=result.proven_optimal,
        nodes_explored=result.nodes_explored,
        root_bound_matched=result.root_bound_matched,
    )
    assert problem.is_feasible(result.allocation)


def test_bench_bnb_proven_fraction(bench_json):
    """Fraction of default-study days the exact solver proves optimal.

    Replays the n=40 and n=50 slices of the paper-default social-welfare
    study (10 days, 60 s anytime budget, seed 2017) and records how many
    days end with ``proven_optimal`` — the headline the bound/search
    acceleration is meant to move without touching the allocations.
    """
    study = SocialWelfareStudy(
        allocators=[BranchAndBoundAllocator(time_limit_s=60.0)]
    )
    for n in (40, 50):
        records = study.run(n, days=10, seed=2017, workers=1)
        proven = sum(1 for r in records if r.proven_optimal)
        bench_json(
            f"bnb_proven_fraction_n{n}",
            n_households=n,
            days=len(records),
            proven_days=proven,
            proven_fraction=proven / len(records),
            time_limit_s=60.0,
        )


def test_bench_settlement_200(bench_json):
    neighborhood = _neighborhood(200)
    mechanism = EnkiMechanism(seed=0)
    reports = truthful_reports(neighborhood)
    allocation = mechanism.allocate(neighborhood, reports).allocation
    seconds = time_call(
        lambda: mechanism.settle(neighborhood, reports, allocation, dict(allocation)),
        repeats=20,
    )
    bench_json("settlement_200", seconds=seconds, n_households=200)
    # Acceptance bar for the vectorized Eq. 4-8 chain.
    assert seconds < 0.010, f"settle(200) took {seconds * 1000:.2f} ms (budget 10 ms)"


def _comparable(records):
    """Day records minus wall-clock time (which legitimately varies)."""
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost, r.proven_optimal,
         r.nodes_explored)
        for r in records
    ]


def test_bench_study_throughput_serial_vs_parallel(bench_json):
    study = SocialWelfareStudy(
        allocators=[
            GreedyFlexibilityAllocator(),
            BranchAndBoundAllocator(time_limit_s=THROUGHPUT_TIME_LIMIT_S),
        ]
    )

    started = time.perf_counter()
    serial = study.run(THROUGHPUT_N, THROUGHPUT_DAYS, seed=THROUGHPUT_SEED, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = study.run(
        THROUGHPUT_N, THROUGHPUT_DAYS, seed=THROUGHPUT_SEED, workers=PARALLEL_WORKERS
    )
    parallel_s = time.perf_counter() - started

    for serial_record, parallel_record in zip(
        _comparable(serial), _comparable(parallel)
    ):
        anytime_cutoff = serial_record[2] != "enki-greedy" and not (
            serial_record[5] and parallel_record[5]
        )
        if anytime_cutoff:
            # A deadline-cut B&B day is wall-clock dependent by design;
            # only its identity-relevant prefix must agree.
            assert serial_record[:3] == parallel_record[:3]
            continue
        assert serial_record == parallel_record, (
            "parallel study must be bit-identical to serial at the same seed"
        )

    cores = available_cores()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    bench_json(
        "study_throughput",
        n_households=THROUGHPUT_N,
        days=THROUGHPUT_DAYS,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        serial_days_per_s=THROUGHPUT_DAYS / serial_s,
        parallel_days_per_s=THROUGHPUT_DAYS / parallel_s,
        workers=PARALLEL_WORKERS,
        # workers beyond the core count only time-slice; record the real
        # process-level parallelism so a 1-core row explains itself.
        effective_parallelism=min(PARALLEL_WORKERS, cores),
        speedup=speedup,
        cpu_cores=cores,
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on "
            f"{cores} cores, got {speedup:.2f}x"
        )
