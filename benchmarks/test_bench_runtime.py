"""Perf-trajectory benchmarks for the parallel runtime and settlement path.

These are the entries the repo's ``BENCH_core.json`` is built from:

* greedy and branch-and-bound solve times on representative §VI instances;
* a full 200-household ``EnkiMechanism.settle`` (the vectorized Eq. 4-8
  chain), asserted to stay under 10 ms;
* social-welfare study throughput in days/sec, serial (``workers=1``) vs
  parallel (``workers=4``), with a record-for-record bit-identity check.

The parallel speedup assertion only applies on machines with 4+ cores —
on smaller boxes the numbers are still recorded (process fan-out cannot
beat serial on one core) so the trajectory stays honest per machine.
"""

import pickle
import random
import time

import numpy as np

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.sim.engine import SocialWelfareStudy
from repro.sim.parallel import available_cores, logical_cores
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles
from repro.sim.shm import SharedArena

from conftest import day_problem, time_call

#: Throughput-study shape: >= 30 households x >= 8 days, greedy + optimal.
THROUGHPUT_N = 30
THROUGHPUT_DAYS = 8
THROUGHPUT_SEED = 2017
#: Anytime budget per B&B solve.  A search that *completes* within the
#: budget is deterministic; one cut off by the deadline is wall-clock
#: dependent, so the identity check below only binds B&B days that proved
#: optimality in both runs (greedy days always bind).
THROUGHPUT_TIME_LIMIT_S = 30.0
PARALLEL_WORKERS = 4


def _neighborhood(n, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def test_bench_greedy_solve_n50(bench_json):
    problem = day_problem(50)
    allocator = GreedyFlexibilityAllocator()
    seconds = time_call(lambda: allocator.solve(problem, random.Random(0)), repeats=20)
    bench_json("greedy_solve_n50", seconds=seconds, n_households=50)
    assert problem.is_feasible(allocator.solve(problem, random.Random(0)).allocation)


def test_bench_bnb_solve_n30(bench_json):
    problem = day_problem(30)
    allocator = BranchAndBoundAllocator(time_limit_s=30.0)
    result = allocator.solve(problem, random.Random(0))
    bench_json(
        "bnb_solve_n30",
        seconds=result.wall_time_s,
        n_households=30,
        proven_optimal=result.proven_optimal,
        nodes_explored=result.nodes_explored,
        root_bound_matched=result.root_bound_matched,
    )
    assert problem.is_feasible(result.allocation)


def test_bench_bnb_proven_fraction(bench_json):
    """Fraction of default-study days the exact solver proves optimal.

    Replays the n=40 and n=50 slices of the paper-default social-welfare
    study (10 days, 60 s anytime budget, seed 2017) and records how many
    days end with ``proven_optimal`` — the headline the bound/search
    acceleration is meant to move without touching the allocations.
    """
    study = SocialWelfareStudy(
        allocators=[BranchAndBoundAllocator(time_limit_s=60.0)]
    )
    for n in (40, 50):
        records = study.run(n, days=10, seed=2017, workers=1)
        proven = sum(1 for r in records if r.proven_optimal)
        bench_json(
            f"bnb_proven_fraction_n{n}",
            n_households=n,
            days=len(records),
            proven_days=proven,
            proven_fraction=proven / len(records),
            time_limit_s=60.0,
        )


def test_bench_settlement_200(bench_json):
    neighborhood = _neighborhood(200)
    mechanism = EnkiMechanism(seed=0)
    reports = truthful_reports(neighborhood)
    allocation = mechanism.allocate(neighborhood, reports).allocation
    seconds = time_call(
        lambda: mechanism.settle(neighborhood, reports, allocation, dict(allocation)),
        repeats=20,
    )
    bench_json("settlement_200", seconds=seconds, n_households=200)
    # Acceptance bar for the vectorized Eq. 4-8 chain.
    assert seconds < 0.010, f"settle(200) took {seconds * 1000:.2f} ms (budget 10 ms)"


def _comparable(records):
    """Day records minus wall-clock time (which legitimately varies)."""
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost, r.proven_optimal,
         r.nodes_explored)
        for r in records
    ]


def test_bench_study_throughput_serial_vs_parallel(bench_json):
    study = SocialWelfareStudy(
        allocators=[
            GreedyFlexibilityAllocator(),
            BranchAndBoundAllocator(time_limit_s=THROUGHPUT_TIME_LIMIT_S),
        ]
    )

    started = time.perf_counter()
    serial = study.run(THROUGHPUT_N, THROUGHPUT_DAYS, seed=THROUGHPUT_SEED, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = study.run(
        THROUGHPUT_N, THROUGHPUT_DAYS, seed=THROUGHPUT_SEED, workers=PARALLEL_WORKERS
    )
    parallel_s = time.perf_counter() - started

    for serial_record, parallel_record in zip(
        _comparable(serial), _comparable(parallel)
    ):
        anytime_cutoff = serial_record[2] != "enki-greedy" and not (
            serial_record[5] and parallel_record[5]
        )
        if anytime_cutoff:
            # A deadline-cut B&B day is wall-clock dependent by design;
            # only its identity-relevant prefix must agree.
            assert serial_record[:3] == parallel_record[:3]
            continue
        assert serial_record == parallel_record, (
            "parallel study must be bit-identical to serial at the same seed"
        )

    cores = available_cores()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    serialize = _transport_serialize_seconds(
        n=10_000, days=THROUGHPUT_DAYS
    )
    bench_json(
        "study_throughput",
        n_households=THROUGHPUT_N,
        days=THROUGHPUT_DAYS,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        serial_days_per_s=THROUGHPUT_DAYS / serial_s,
        parallel_days_per_s=THROUGHPUT_DAYS / parallel_s,
        workers=PARALLEL_WORKERS,
        # workers beyond the core count only time-slice; record the real
        # process-level parallelism so a 1-core row explains itself.
        effective_parallelism=min(PARALLEL_WORKERS, cores),
        speedup=speedup,
        cpu_cores=cores,
        cpu_cores_visible=cores,
        cpu_cores_logical=logical_cores(),
        # Per-stage transport breakdown (measured at n=10k where it
        # matters): seconds spent turning 8 days into task payloads on the
        # legacy object-graph pickle path vs the shared-memory descriptor
        # path, plus the compute stage for scale.
        serialize_pickle_seconds=serialize["pickle_s"],
        serialize_shm_seconds=serialize["shm_s"],
        serialize_speedup=serialize["speedup"],
        compute_seconds=serial_s,
    )
    assert serialize["speedup"] >= 10.0, (
        f"shm transport must cut serialize-stage seconds >= 10x, got "
        f"{serialize['speedup']:.1f}x ({serialize['pickle_s']:.4f}s -> "
        f"{serialize['shm_s']:.4f}s)"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on "
            f"{cores} cores, got {speedup:.2f}x"
        )


def _transport_serialize_seconds(n, days):
    """Seconds to serialize ``days`` day payloads, per transport.

    The legacy object-graph path pickles the per-household
    ``Neighborhood`` (the pre-shm task payload) into every task; the
    shared-memory path packs the arrays into a segment once and pickles
    only the few-hundred-byte descriptor per task.
    """
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(THROUGHPUT_SEED), n
    )
    neighborhood = cols.to_neighborhood("wide")
    object_graph = neighborhood.to_objects()

    started = time.perf_counter()
    for _ in range(days):
        pickle.dumps(object_graph, protocol=pickle.HIGHEST_PROTOCOL)
    pickle_s = time.perf_counter() - started

    started = time.perf_counter()
    with SharedArena() as arena:
        day = arena.pack_day(neighborhood)
        for _ in range(days):
            pickle.dumps(day, protocol=pickle.HIGHEST_PROTOCOL)
        shm_s = time.perf_counter() - started
    return {
        "pickle_s": pickle_s,
        "shm_s": shm_s,
        "speedup": pickle_s / shm_s if shm_s > 0 else float("inf"),
    }


#: ``bnb_parallel_n50`` shape: the paper's n=50 slice, 10 days, 60 s
#: anytime budget — serial exact solver vs 4-way subtree fan-out.
BNB_PARALLEL_N = 50
BNB_PARALLEL_DAYS = 10
BNB_PARALLEL_TIME_LIMIT_S = 60.0


def test_bench_bnb_parallel_n50(bench_json):
    """Parallel subtree B&B vs serial on the hardest paper slice.

    Completed searches are bit-identical by construction; the payoff of
    the fan-out is *provenance* — within the same 60 s anytime budget the
    4-worker solver should prove at least one additional n=50 day optimal
    (asserted only on hosts with 4+ visible cores; elsewhere the counts
    are recorded so the trajectory stays honest per machine).
    """
    serial = BranchAndBoundAllocator(time_limit_s=BNB_PARALLEL_TIME_LIMIT_S)
    fanout = BranchAndBoundAllocator(
        time_limit_s=BNB_PARALLEL_TIME_LIMIT_S, workers=PARALLEL_WORKERS
    )
    serial_proven = 0
    parallel_proven = 0
    serial_s = 0.0
    parallel_s = 0.0
    for day in range(BNB_PARALLEL_DAYS):
        problem = day_problem(BNB_PARALLEL_N, seed=THROUGHPUT_SEED + day)
        s = serial.solve(problem, random.Random(0))
        p = fanout.solve(problem, random.Random(0))
        serial_proven += int(s.proven_optimal)
        parallel_proven += int(p.proven_optimal)
        serial_s += s.wall_time_s
        parallel_s += p.wall_time_s
        if s.proven_optimal and p.proven_optimal:
            # Both searches completed: the merge order makes the parallel
            # result replay the serial incumbent trajectory exactly.
            assert s.cost == p.cost, f"day {day}: {s.cost} != {p.cost}"
            assert s.allocation == p.allocation, f"day {day}"
            assert s.root_bound_matched == p.root_bound_matched
    cores = available_cores()
    bench_json(
        "bnb_parallel_n50",
        n_households=BNB_PARALLEL_N,
        days=BNB_PARALLEL_DAYS,
        time_limit_s=BNB_PARALLEL_TIME_LIMIT_S,
        workers=PARALLEL_WORKERS,
        serial_proven_days=serial_proven,
        parallel_proven_days=parallel_proven,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        cpu_cores_visible=cores,
        cpu_cores_logical=logical_cores(),
    )
    if cores >= 4:
        # On a time-sliced (fewer-core) host a worker's wall budget covers
        # less CPU than serial's, so provenance claims only bind here.
        assert parallel_proven >= serial_proven, (
            "subtree fan-out may never lose provenance vs serial"
        )
        assert parallel_proven >= serial_proven + 1, (
            f"expected >= 1 additional proven day at workers="
            f"{PARALLEL_WORKERS} on {cores} cores "
            f"({serial_proven} -> {parallel_proven})"
        )
