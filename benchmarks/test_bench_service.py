"""Benchmarks for the supervised shard service (the ``city`` path).

These track what the service layer adds on top of the bare columnar day:
shared-memory packing, supervision, journaling and settlement records.
``city_n10k`` is the CI perf-smoke gate for the service; ``city_n1m`` is
the headline — one million households sharded through the supervised
service — and is ``slow``-marked, recorded into ``BENCH_core.json`` for
the scaling table in ``docs/performance.md``.  Wall-clock budgets only
bind on hosts with 4+ visible cores: below that the pool time-slices and
the numbers measure the scheduler, not the service.

``ingest_n1m`` benches the streaming report-ingestion path of PR 9: one
million reports arriving as interleaved out-of-order chunks, coalesced
through the columnar micro-batch builder and scattered zero-copy into
the shard's shared-memory day segment.  It gates that streamed
ingestion+packing stays within 2x of the direct columnar-array path,
and documents the ablation that motivates the design: a naive
per-report object path (RawReport construction + scalar validation +
dict routing + scalar scatter, exactly what you would write without the
columnar builder) is >= 10x slower than the micro-batched ingest.
"""

import time

import numpy as np
import pytest

from repro.mechanisms.enki import serving_mechanism
from repro.service import serve_city
from repro.sim.parallel import available_cores

#: Perf-smoke budget for the 10k-household city on 4+ core hosts.
_CITY_N10K_BUDGET_S = 10.0

#: Acceptance budget for the 1M-household city on 4+ core hosts.
_CITY_N1M_BUDGET_S = 120.0

#: Streamed ingestion+packing must stay within this factor of the
#: direct columnar-array path (wire arrays + pack).
_INGEST_STREAM_FACTOR = 2.0

#: The naive per-report object path must be at least this many times
#: slower than the micro-batched streamed ingest (the ablation).
_INGEST_NAIVE_FACTOR = 10.0


def _serve(n, shards, workers):
    result = serve_city(
        n=n,
        shards=shards,
        workers=workers,
        seed=2017,
        mechanism=serving_mechanism(seed=2017),
    )
    assert result.settled == shards
    assert result.n_households == n
    assert result.degraded == ()
    assert result.all_budget_balanced()
    return result


def test_bench_city_n10k(bench_json, gate_note):
    """Perf-smoke gate: a 10k-household city through the full service."""
    cores = available_cores()
    workers = min(4, cores)
    result = _serve(10_000, shards=8, workers=workers)
    bench_json(
        "city_n10k",
        seconds=result.wall_time_s,
        n_households=10_000,
        shards=8,
        workers=workers,
    )
    if cores < 4:
        gate_note(
            "city_n10k", False,
            f"budget binds on 4+ visible cores, have {cores}",
        )
        return
    gate_note("city_n10k", True, f"{cores} visible cores >= 4")
    assert result.wall_time_s < _CITY_N10K_BUDGET_S


@pytest.mark.slow
def test_bench_city_n1m(bench_json, gate_note):
    """The headline: one million households, supervised, in one run."""
    cores = available_cores()
    workers = min(8, max(1, cores))
    result = _serve(1_000_000, shards=32, workers=workers)
    bench_json(
        "city_n1m",
        seconds=result.wall_time_s,
        n_households=1_000_000,
        shards=32,
        workers=workers,
    )
    if cores < 4:
        gate_note(
            "city_n1m", False,
            f"budget binds on 4+ visible cores, have {cores}",
        )
        return
    gate_note("city_n1m", True, f"{cores} visible cores >= 4")
    assert result.wall_time_s < _CITY_N1M_BUDGET_S


def _naive_per_report_ingest(ids, begin, end, duration, metered, order, rows):
    """The ablation: ingest ``rows`` reports one object at a time.

    What a service without the columnar builder would do per report:
    construct the :class:`RawReport`, run the scalar admission checks
    (the same constraints ``validate_raw_report`` enforces, minus the
    object ``Report`` it would additionally build), route through a
    household-id dictionary, and scatter three scalar stores.  Returns
    the wall seconds for exactly ``rows`` reports.
    """
    from repro.core.intervals import HOURS_PER_DAY
    from repro.robustness.quarantine import RawReport, _as_grid_int

    route = {household_id: i for i, household_id in enumerate(ids.tolist())}
    n = ids.shape[0]
    out_b = np.full(n, np.nan)
    out_e = np.full(n, np.nan)
    out_d = np.full(n, np.nan)
    sub = order[:rows]
    started = time.perf_counter()
    for j in sub.tolist():
        report = RawReport(
            ids[j], float(begin[j]), float(end[j]), float(duration[j])
        )
        row = route.get(report.household_id)
        if row is None:
            continue
        b = _as_grid_int(report.begin)
        e = _as_grid_int(report.end)
        d = _as_grid_int(report.duration)
        if (
            b is None or e is None or d is None or d < 1
            or d != int(metered[row]) or e < b or b < 0
            or e > HOURS_PER_DAY or e - b < d
        ):
            continue
        out_b[row] = b
        out_e[row] = e
        out_d[row] = d
    return time.perf_counter() - started


@pytest.mark.slow
def test_bench_ingest_n1m(bench_json, gate_note):
    """Streamed ingestion of a 1M-report day: throughput and latency.

    Three measured paths over the same traffic:

    * **direct** — the batch entry point's ingestion work: truthful wire
      arrays + ``pack_day`` (the floor any path must approach).
    * **streamed** — pack with embedded report columns, register, then
      245 interleaved out-of-order 4096-row chunks through the
      micro-batch builder, the verifying id router and the shared-memory
      scatter.  Records total seconds, reports/s and the p99 per-submit
      admission latency.
    * **naive** — the per-report object ablation (scalar validation +
      dict routing + scalar scatter), timed on a 100k-report subsample
      and scaled linearly (the loop is O(rows) with no warm-up effects).

    Gates (4+ core runners): streamed <= 2x direct, naive >= 10x the
    streamed ingest (excluding the pack both columnar paths share).
    """
    from repro.service import (
        BoundedIngestQueue,
        ReportChunk,
        StreamIngestor,
        sample_shard,
        stream_arrival_order,
    )
    from repro.service.shard import ShardJob
    from repro.sim.rng import root_entropy
    from repro.sim.shm import SharedArena

    n = 1_000_000
    chunk_rows = 4096
    naive_rows = 100_000
    root = root_entropy(2017)
    # Traffic generation happens OUTSIDE every timed region: the bench
    # times ingestion, not the synthetic load generator.
    neighborhood, shard_seed = sample_shard(root, 0, n)
    ids = np.asarray(neighborhood.ids)
    begin, end, duration = neighborhood.truthful_wire()
    order = stream_arrival_order(root, 0, n)
    chunks = []
    for at in range(0, n, chunk_rows):
        rows = order[at : at + chunk_rows]
        chunks.append(
            ReportChunk(ids[rows], begin[rows], end[rows], duration[rows])
        )

    # Direct columnar-array path: what submit_shard does after sampling.
    arena = SharedArena(prefix="bench-direct")
    started = time.perf_counter()
    wire = neighborhood.truthful_wire()
    arena.pack_day(neighborhood)
    direct_s = time.perf_counter() - started
    arena.dispose()

    # Streamed path: pack + register + ingest every chunk + final flush.
    arena = SharedArena(prefix="bench-stream")
    sealed = []
    ingestor = StreamIngestor(
        queue=BoundedIngestQueue(capacity=4),
        enqueue=lambda index, job: sealed.append(index),
        flush_age_s=None,
    )
    latencies = []
    started = time.perf_counter()
    day = arena.pack_day(neighborhood, report_columns=True)
    pack_s = time.perf_counter() - started
    ingestor.register(
        0,
        ShardJob(index=0, day=day, seed=shard_seed),
        neighborhood.ids,
        assume_canonical_ids=True,
    )
    for chunk in chunks:
        chunk_started = time.perf_counter()
        ingestor.submit(chunk)
        latencies.append(time.perf_counter() - chunk_started)
    ingestor.flush(reason="final")
    streamed_s = time.perf_counter() - started
    ingest_s = streamed_s - pack_s

    # Exactness before speed: every report landed on its row, zero-copy.
    assert sealed == [0]
    assert ingestor.incomplete() == ()
    rep_begin, rep_end, rep_duration = day.report_views()
    assert np.array_equal(rep_begin, wire[0])
    assert np.array_equal(rep_end, wire[1])
    assert np.array_equal(rep_duration, wire[2])
    arena.dispose()

    naive_sample_s = _naive_per_report_ingest(
        ids, begin, end, duration, neighborhood.duration, order, naive_rows
    )
    naive_s = naive_sample_s * (n / naive_rows)

    throughput = n / streamed_s
    p99_ms = float(np.percentile(np.asarray(latencies), 99)) * 1e3
    stream_factor = streamed_s / direct_s
    naive_factor = naive_s / ingest_s
    bench_json(
        "ingest_n1m",
        n_reports=n,
        chunk_rows=chunk_rows,
        direct_seconds=direct_s,
        streamed_seconds=streamed_s,
        streamed_pack_seconds=pack_s,
        streamed_ingest_seconds=ingest_s,
        naive_seconds=naive_s,
        naive_sampled_rows=naive_rows,
        reports_per_second=throughput,
        p99_submit_ms=p99_ms,
        streamed_vs_direct=stream_factor,
        naive_vs_streamed_ingest=naive_factor,
    )

    cores = available_cores()
    if cores < 4:
        gate_note(
            "ingest_n1m", False,
            f"timing gates bind on 4+ visible cores, have {cores} "
            f"(recorded {stream_factor:.2f}x direct, naive ablation "
            f"{naive_factor:.1f}x)",
        )
        return
    gate_note(
        "ingest_n1m", True,
        f"{cores} visible cores >= 4: streamed {stream_factor:.2f}x direct, "
        f"naive {naive_factor:.1f}x streamed ingest",
    )
    assert stream_factor <= _INGEST_STREAM_FACTOR, (
        f"streamed ingestion+packing took {streamed_s:.3f}s, more than "
        f"{_INGEST_STREAM_FACTOR}x the direct columnar path's {direct_s:.3f}s"
    )
    assert naive_factor >= _INGEST_NAIVE_FACTOR, (
        f"naive per-report path is only {naive_factor:.1f}x the streamed "
        f"ingest ({naive_s:.2f}s vs {ingest_s:.3f}s); the ablation gate "
        f"requires {_INGEST_NAIVE_FACTOR}x"
    )
