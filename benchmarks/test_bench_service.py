"""Benchmarks for the supervised shard service (the ``city`` path).

These track what the service layer adds on top of the bare columnar day:
shared-memory packing, supervision, journaling and settlement records.
``city_n10k`` is the CI perf-smoke gate for the service; ``city_n1m`` is
the headline — one million households sharded through the supervised
service — and is ``slow``-marked, recorded into ``BENCH_core.json`` for
the scaling table in ``docs/performance.md``.  Wall-clock budgets only
bind on hosts with 4+ visible cores: below that the pool time-slices and
the numbers measure the scheduler, not the service.
"""

import pytest

from repro.mechanisms.enki import serving_mechanism
from repro.service import serve_city
from repro.sim.parallel import available_cores

#: Perf-smoke budget for the 10k-household city on 4+ core hosts.
_CITY_N10K_BUDGET_S = 10.0

#: Acceptance budget for the 1M-household city on 4+ core hosts.
_CITY_N1M_BUDGET_S = 120.0


def _serve(n, shards, workers):
    result = serve_city(
        n=n,
        shards=shards,
        workers=workers,
        seed=2017,
        mechanism=serving_mechanism(seed=2017),
    )
    assert result.settled == shards
    assert result.n_households == n
    assert result.degraded == ()
    assert result.all_budget_balanced()
    return result


def test_bench_city_n10k(bench_json):
    """Perf-smoke gate: a 10k-household city through the full service."""
    cores = available_cores()
    workers = min(4, cores)
    result = _serve(10_000, shards=8, workers=workers)
    bench_json(
        "city_n10k",
        seconds=result.wall_time_s,
        n_households=10_000,
        shards=8,
        workers=workers,
    )
    if cores >= 4:
        assert result.wall_time_s < _CITY_N10K_BUDGET_S


@pytest.mark.slow
def test_bench_city_n1m(bench_json):
    """The headline: one million households, supervised, in one run."""
    cores = available_cores()
    workers = min(8, max(1, cores))
    result = _serve(1_000_000, shards=32, workers=workers)
    bench_json(
        "city_n1m",
        seconds=result.wall_time_s,
        n_households=1_000_000,
        shards=32,
        workers=workers,
    )
    if cores >= 4:
        assert result.wall_time_s < _CITY_N1M_BUDGET_S
