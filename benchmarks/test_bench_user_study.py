"""Tables II-IV and Figures 8-9 benches: the Section VII user study.

One study run feeds all five artifacts; the timing benchmark measures the
full 20-subject, 8-session study.  Expected shapes: defection is rare
overall and rarest in Cooperate (Table II), significantly rarer than
chance (Table III), T2 subjects defect least by the end (Table IV),
true-interval selection rises Initial -> Cooperate (Figure 8), and
well-understanding subjects lock to full flexibility (Figure 9).
"""

from repro.experiments import (
    fig8_true_interval,
    fig9_flexibility,
    table2_defection,
    table3_mannwhitney,
    table4_treatments,
)
from repro.experiments.user_study_run import run_default_study


def test_bench_full_study(benchmark):
    result = benchmark.pedantic(
        lambda: run_default_study(seed=2), rounds=1, iterations=1
    )
    assert len(result.subjects) == 20


def test_table2_rows(benchmark, study, save_result):
    result = benchmark(lambda: table2_defection.extract(study))
    assert result.rates["Overall"] < 0.5
    assert result.rates["Initial"] > result.rates["Cooperate"]
    save_result("table2_defection", result.render())


def test_table3_rows(benchmark, study, save_result):
    result = benchmark(lambda: table3_mannwhitney.extract(study))
    assert result.significant("Overall")
    assert result.significant("Cooperate")
    save_result("table3_mannwhitney", result.render())


def test_table4_rows(benchmark, study, save_result):
    result = benchmark(lambda: table4_treatments.extract(study))
    save_result("table4_treatments", result.render())


def test_fig8_rows(benchmark, study, save_result):
    result = benchmark(lambda: fig8_true_interval.extract(study))
    assert result.ratio_increased
    save_result("fig8_true_interval", result.render())


def test_fig9_rows(benchmark, study, save_result):
    result = benchmark(lambda: fig9_flexibility.extract(study))
    assert result.good_lock_in
    save_result("fig9_flexibility", result.render())
