#!/usr/bin/env python
"""Electric-vehicle charging: the paper's motivating application.

Section III names EV charging as a natural fit: each household must charge
its car for a few contiguous hours before the morning commute and is
flexible about exactly when overnight.  This example builds a 20-home
neighborhood of commuters, compares the uncoordinated outcome ("plug in
the moment you get home") against Enki's coordinated schedule, and prints
the two load profiles side by side.

Run:
    python examples/ev_charging.py
"""

import random

from repro import EnkiMechanism, HouseholdType, Neighborhood, Preference
from repro.mechanisms.proportional import ProportionalMechanism
from repro.pricing.load_profile import LoadProfile

#: 7.2 kW is a typical level-2 home charger.
CHARGER_KW = 7.2


def build_commuter_neighborhood(n_homes: int, seed: int) -> Neighborhood:
    """Homes arrive 17:00-19:00 and need 2-4 hours of charge by 7:00.

    The true window runs from arrival until early morning; because our
    grid is one day, we model the overnight stretch as [arrival, 24).
    """
    rng = random.Random(seed)
    households = []
    for index in range(n_homes):
        arrival = rng.choice([17, 18, 19])
        hours_needed = rng.choice([2, 3, 4])
        households.append(
            HouseholdType(
                household_id=f"ev{index:02d}",
                true_preference=Preference.of(arrival, 24, hours_needed),
                valuation_factor=rng.uniform(3.0, 9.0),
                rating_kw=CHARGER_KW,
            )
        )
    return Neighborhood.of(*households)


def ascii_profile(profile: LoadProfile, scale_kw: float = 10.0) -> str:
    """A terminal bar chart of the 24-hour load profile."""
    lines = []
    for hour in range(24):
        bar = "#" * int(round(profile[hour] / scale_kw))
        lines.append(f"  {hour:02d}:00 |{bar:<20} {profile[hour]:6.1f} kW")
    return "\n".join(lines)


def main() -> None:
    neighborhood = build_commuter_neighborhood(n_homes=20, seed=3)

    # Uncoordinated: everyone charges the moment they arrive.
    baseline = ProportionalMechanism(placement="preferred").run_day(
        neighborhood, rng=random.Random(0)
    )
    baseline_profile = LoadProfile.from_schedule(
        baseline.consumption, neighborhood.households
    )

    # Enki: the neighborhood schedules within each commuter's window.
    outcome = EnkiMechanism(seed=0).run_day(neighborhood)
    enki_profile = outcome.settlement.load_profile

    print("Uncoordinated charging (plug in on arrival):")
    print(ascii_profile(baseline_profile))
    print(
        f"\n  peak {baseline_profile.peak_kw:.1f} kW, "
        f"PAR {baseline_profile.peak_to_average_ratio():.2f}, "
        f"cost ${baseline.total_cost:.0f}"
    )

    print("\nEnki-coordinated charging:")
    print(ascii_profile(enki_profile))
    print(
        f"\n  peak {enki_profile.peak_kw:.1f} kW, "
        f"PAR {enki_profile.peak_to_average_ratio():.2f}, "
        f"cost ${outcome.settlement.total_cost:.0f}"
    )

    saving = 1.0 - outcome.settlement.total_cost / baseline.total_cost
    print(f"\nEnki cuts the neighborhood's power bill by {saving:.0%}.")


if __name__ == "__main__":
    main()
