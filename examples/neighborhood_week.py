#!/usr/bin/env python
"""A week in an Enki neighborhood with learning smart meters.

Wires together the full agent stack from Figure 1: household agents with
different behaviours (truthful, misreporting, stubborn), one household
whose reports come from its ECC unit's learned model, and the
neighborhood controller that mediates with the power company.  Prints a
day-by-day ledger and each household's weekly totals.

Run:
    python examples/neighborhood_week.py
"""

import random

from repro import EnkiMechanism, HouseholdType, Preference
from repro.agents.behavior import (
    MisreportBehavior,
    StubbornBehavior,
    TruthfulBehavior,
)
from repro.agents.ecc import EccBehavior, EccUnit
from repro.agents.household import HouseholdAgent
from repro.agents.neighborhood import NeighborhoodController


def build_agents() -> list:
    rng = random.Random(7)
    agents = []
    # Six ordinary truthful households with staggered evening windows.
    for index in range(6):
        begin = 16 + index % 3
        agents.append(
            HouseholdAgent(
                HouseholdType(
                    f"home{index}",
                    Preference.of(begin, begin + 6, rng.choice([1, 2, 3])),
                    valuation_factor=rng.uniform(3.0, 9.0),
                ),
                TruthfulBehavior(),
            )
        )
    # One household that misreports (shifts its window 3 hours early) and
    # then defects back — the Theorem 2 deviation.
    agents.append(
        HouseholdAgent(
            HouseholdType("shifty", Preference.of(18, 21, 2), 6.0),
            MisreportBehavior(shift=-3),
        )
    )
    # One stubborn household that ignores its allocation.
    agents.append(
        HouseholdAgent(
            HouseholdType("stubborn", Preference.of(17, 22, 2), 6.0),
            StubbornBehavior(),
        )
    )
    # One household whose smart meter learns and reports automatically.
    agents.append(
        HouseholdAgent(
            HouseholdType("learned", Preference.of(18, 23, 2), 6.0),
            EccBehavior(EccUnit("learned")),
        )
    )
    return agents


def main() -> None:
    agents = build_agents()
    controller = NeighborhoodController(agents, EnkiMechanism(seed=1))

    print("day  cost($)  surplus($)  peak(kW)  defectors")
    outcomes = controller.run_days(7, seed=99)
    for day, outcome in enumerate(outcomes):
        settlement = outcome.settlement
        defectors = [
            hid for hid in outcome.allocation if outcome.defected(hid)
        ]
        print(
            f"{day:>3}  {settlement.total_cost:>7.1f}  "
            f"{settlement.neighborhood_utility:>10.2f}  "
            f"{settlement.load_profile.peak_kw:>8.1f}  "
            f"{', '.join(defectors) if defectors else '-'}"
        )

    print("\nweekly household ledger")
    print(f"{'household':<10} {'paid($)':>8} {'utility':>8} {'defect rate':>12}")
    for agent in agents:
        paid = sum(log.payment for log in agent.history)
        print(
            f"{agent.household_id:<10} {paid:>8.2f} "
            f"{agent.total_utility():>8.2f} {agent.defection_rate():>12.0%}"
        )

    learned = next(a for a in agents if a.household_id == "learned")
    predicted = learned.behavior.ecc.forecaster.predict()
    print(
        f"\nThe 'learned' household's ECC now predicts window {predicted.window} "
        f"for {predicted.duration}h — learned from {len(learned.history)} days "
        "of its own consumption."
    )


if __name__ == "__main__":
    main()
