#!/usr/bin/env python
"""Watch price-based control herd the peak around the evening.

Section II's critique of real-time pricing, animated in the terminal: a
neighborhood of flexible households chases yesterday's cheapest hours day
after day, so the peak never flattens — it migrates.  The same households
under Enki settle into a flat schedule on day one.

Run:
    python examples/price_herding_demo.py
"""

import random

from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.mechanisms.rtp import RealTimePricingControl
from repro.pricing.load_profile import LoadProfile
from repro.reporting.ascii import series_table, sparkline

DAYS = 7
EVENING = range(14, 24)


def build_neighborhood(n: int = 16) -> Neighborhood:
    rng = random.Random(5)
    households = []
    for index in range(n):
        duration = rng.choice([1, 2, 3])
        households.append(
            HouseholdType(
                f"hh{index:02d}",
                Preference.of(14, 24, duration),
                valuation_factor=rng.uniform(3.0, 9.0),
            )
        )
    return Neighborhood.of(*households)


def main() -> None:
    neighborhood = build_neighborhood()

    rtp = RealTimePricingControl()
    rtp.reset()
    print("Real-time pricing: evening load (hours 14-23), day by day")
    rtp_peaks = []
    for day in range(DAYS):
        result = rtp.run_day(neighborhood, rng=random.Random(day))
        profile = LoadProfile.from_schedule(
            result.consumption, neighborhood.households
        )
        evening = [profile[h] for h in EVENING]
        details = rtp.last_details
        rtp_peaks.append(details.peak_kw)
        print(
            f"  day {day}: {sparkline(evening)}  "
            f"peak {details.peak_kw:.0f} kW at {details.peak_hour:02d}:00, "
            f"PAR {profile.peak_to_average_ratio():.2f}"
        )

    enki = EnkiMechanism(seed=0)
    enki_peaks = []
    enki_series = []
    for day in range(DAYS):
        outcome = enki.run_day(neighborhood, rng=random.Random(day))
        profile = outcome.settlement.load_profile
        enki_peaks.append(profile.peak_kw)
        enki_series.append([profile[h] for h in EVENING])

    print("\nEnki, same households: flat from day one")
    for day, evening in enumerate(enki_series):
        print(
            f"  day {day}: {sparkline(evening)}  peak {enki_peaks[day]:.0f} kW"
        )

    print()
    print(
        series_table(
            "daily peaks (kW)",
            [rtp_peaks, enki_peaks],
            ["rtp ", "enki"],
        )
    )
    print(
        f"\nMean peak: RTP {sum(rtp_peaks)/DAYS:.1f} kW vs "
        f"Enki {sum(enki_peaks)/DAYS:.1f} kW — the price signal shifts the "
        "peak, the mechanism removes it."
    )


if __name__ == "__main__":
    main()
