#!/usr/bin/env python
"""Quickstart: one Enki day for a three-household neighborhood.

Recreates the paper's Example 3 (Section IV-B2): household A prefers an
off-peak window (16-18) while B and C both want two hours somewhere in the
evening (18-21).  Enki allocates greedily by flexibility, everyone follows
their allocation, and the settlement shows the off-peak household paying
the least.

Run:
    python examples/quickstart.py
"""

from repro import EnkiMechanism, HouseholdType, Neighborhood, Preference


def main() -> None:
    neighborhood = Neighborhood.of(
        HouseholdType("A", Preference.of(16, 18, 2), valuation_factor=5.0),
        HouseholdType("B", Preference.of(18, 21, 2), valuation_factor=5.0),
        HouseholdType("C", Preference.of(18, 21, 2), valuation_factor=5.0),
    )

    mechanism = EnkiMechanism(seed=7)  # sigma=0.3, k=1, xi=1.2 defaults
    outcome = mechanism.run_day(neighborhood)
    settlement = outcome.settlement

    print("Allocations (suggested consumption windows):")
    for hid in sorted(outcome.allocation):
        print(f"  {hid}: {outcome.allocation[hid]}")

    print("\nSettlement:")
    header = f"  {'household':<10} {'flexibility':>11} {'payment':>8} {'utility':>8}"
    print(header)
    for hid in sorted(settlement.payments):
        print(
            f"  {hid:<10} {settlement.flexibility[hid]:>11.3f} "
            f"{settlement.payments[hid]:>8.3f} {settlement.utilities[hid]:>8.3f}"
        )

    print(f"\nNeighborhood cost kappa(omega): ${settlement.total_cost:.2f}")
    print(
        f"Center surplus (xi - 1) * kappa: ${settlement.neighborhood_utility:.2f}"
        "  (ex ante budget balance, Theorem 1)"
    )
    assert settlement.payments["A"] < settlement.payments["B"]
    print("\nThe off-peak household A pays the least, as Example 3 predicts.")


if __name__ == "__main__":
    main()
