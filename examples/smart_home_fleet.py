#!/usr/bin/env python
"""Multi-appliance smart homes: the paper's "variety of appliances" note.

Builds a neighborhood of homes from realistic appliance archetypes (EV
charger, dishwasher, washer, dryer, pool pump, water heater), runs one
Enki day at the appliance level, and prints each home's itemized bill —
the Section III extension ("several such preferences for a given
household and adding a constant cost to each household's payment") made
concrete.

Run:
    python examples/smart_home_fleet.py
"""

import numpy as np

from repro.core.mechanism import EnkiMechanism
from repro.extensions.appliances import MultiApplianceEnki
from repro.sim.appliance_models import (
    build_multi_appliance_population,
    population_statistics,
)


def main() -> None:
    rng = np.random.default_rng(11)
    homes = build_multi_appliance_population(rng, n_households=12, base_charge=1.0)

    stats = population_statistics(homes)
    print(
        f"{int(stats['households'])} homes, {int(stats['appliances'])} shiftable "
        f"appliances ({stats['appliances_per_household']:.1f} per home):"
    )
    for key, value in sorted(stats.items()):
        if key.startswith("count_"):
            print(f"  {key[6:]:<13} {int(value)} homes")

    outcome = MultiApplianceEnki(EnkiMechanism(seed=3)).run_day(homes)
    profile = outcome.day.settlement.load_profile
    print(
        f"\nEnki schedule: peak {profile.peak_kw:.1f} kW, "
        f"PAR {profile.peak_to_average_ratio():.2f}, "
        f"procurement cost ${outcome.total_cost:.0f}"
    )

    print("\nItemized bills (base charge $1.00 covers nonshiftable loads):")
    for home in homes:
        bill = outcome.bills[home.household_id]
        items = ", ".join(
            f"{name} ${payment:.2f}"
            for name, payment in sorted(bill.per_appliance_payment.items())
        )
        print(
            f"  {home.household_id:<8} total ${bill.payment:6.2f}  "
            f"(base $1.00 + {items})"
        )

    total_billed = sum(bill.payment for bill in outcome.bills.values())
    base_total = sum(home.base_charge for home in homes)
    print(
        f"\nRevenue check: ${total_billed:.2f} billed = "
        f"1.2 x ${outcome.total_cost:.2f} procurement + ${base_total:.2f} base "
        "(Theorem 1 budget balance at the appliance level)"
    )


if __name__ == "__main__":
    main()
