#!/usr/bin/env python
"""Replay the Section VII user study with simulated subjects.

Runs the paper's full two-treatment study design — 20 subjects, four
sessions per treatment, scripted artificial agents that defect during
Rounds 1-8 and cooperate in Rounds 9-16 — and prints the reproduction of
Tables II-IV and the Figure 8/9 statistics.

Run:
    python examples/user_study_replay.py [seed]
"""

import sys

from repro.experiments import (
    fig8_true_interval,
    fig9_flexibility,
    table2_defection,
    table3_mannwhitney,
    table4_treatments,
)
from repro.experiments.user_study_run import run_default_study


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1720
    print(f"Running the 20-subject study (seed {seed})...\n")
    study = run_default_study(seed=seed)

    print("Table II — average defection rate per stage")
    print(table2_defection.extract(study).render())

    print("\nTable III — Mann-Whitney U vs random defection")
    print(table3_mannwhitney.extract(study).render())

    print("\nTable IV — defection rate per treatment")
    print(table4_treatments.extract(study).render())

    print("\nFigure 8 — true-interval selecting ratio (Initial vs Cooperate)")
    print(fig8_true_interval.extract(study).render())

    print("\nFigure 9 — flexibility ratio over rounds")
    print(fig9_flexibility.extract(study).render())


if __name__ == "__main__":
    main()
