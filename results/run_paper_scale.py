"""Paper-scale run of every experiment; writes rendered tables to results/."""
import pathlib
import sys
import time

from repro.experiments import (
    ablation_ordering, ablation_pricing, ablation_xi, examples_section4,
    fig4_par, fig5_cost, fig6_time, fig7_incentive, fig8_true_interval,
    fig9_flexibility, table2_defection, table3_mannwhitney, table4_treatments,
    vcg_contrast,
)
from repro.experiments.social_welfare import run_social_welfare_study
from repro.experiments.user_study_run import run_default_study

OUT = pathlib.Path(__file__).parent
def save(name, rendered):
    (OUT / f"{name}.txt").write_text(rendered + "\n")
    print(f"== {name} ==\n{rendered}\n", flush=True)

t0 = time.time()
print("social welfare sweep (figs 4-6), 10 days x {10..50}, 30s limit", flush=True)
welfare = run_social_welfare_study(populations=(10, 20, 30, 40, 50), days=10,
                                   seed=2017, optimal_time_limit_s=30.0)
save("fig4_par", fig4_par.extract(welfare).render())
save("fig5_cost", fig5_cost.extract(welfare).render())
save("fig6_time", fig6_time.extract(welfare).render())
print(f"welfare done in {time.time()-t0:.0f}s", flush=True)

save("fig7_incentive", fig7_incentive.run(n_households=50, repeats=10, seed=2017).render())
print(f"fig7 done {time.time()-t0:.0f}s", flush=True)

study = run_default_study(seed=1720)
save("table2_defection", table2_defection.extract(study).render())
save("table3_mannwhitney", table3_mannwhitney.extract(study).render())
save("table4_treatments", table4_treatments.extract(study).render())
save("fig8_true_interval", fig8_true_interval.extract(study).render())
save("fig9_flexibility", fig9_flexibility.extract(study).render())
print(f"user study done {time.time()-t0:.0f}s", flush=True)

save("examples_section4", examples_section4.run(seed=7).render())
save("ablation_ordering", ablation_ordering.run(populations=(10, 20, 30, 40, 50), days=5, seed=2017).render())
save("ablation_xi", ablation_xi.run(n_households=30, days=5, seed=2017).render())
save("ablation_pricing", ablation_pricing.run(populations=(10, 20, 30), days=5, seed=2017).render())
save("vcg_contrast", vcg_contrast.run(n_households=12, days=5, seed=2017).render())
print(f"ALL DONE in {time.time()-t0:.0f}s", flush=True)
