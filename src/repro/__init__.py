"""Reproduction of "A Mechanism for Cooperative Demand-Side Management".

This package implements Enki (ICDCS 2017): a tractable, budget-balanced
demand-side-management mechanism for day-ahead residential power scheduling,
together with every substrate the paper's evaluation needs — allocation
solvers (greedy and exact), pricing models, household/ECC agents, baseline
mechanisms (VCG, proportional price-taking), the Section VI simulation
study, and the Section VII user-study game.

Quickstart::

    from repro import (
        EnkiMechanism, Neighborhood, HouseholdType, Preference,
    )

    hh = [
        HouseholdType("A", Preference.of(16, 18, 2), valuation_factor=5.0),
        HouseholdType("B", Preference.of(18, 21, 2), valuation_factor=5.0),
        HouseholdType("C", Preference.of(18, 21, 2), valuation_factor=5.0),
    ]
    outcome = EnkiMechanism().run_day(Neighborhood.of(*hh))
    print(outcome.allocation, outcome.settlement.payments)
"""

from .allocation import (
    AllocationItem,
    AllocationProblem,
    AllocationResult,
    Allocator,
    BranchAndBoundAllocator,
    ExhaustiveAllocator,
    GreedyFlexibilityAllocator,
    LocalSearchAllocator,
    RandomAllocator,
)
from .core import (
    DayOutcome,
    EnkiMechanism,
    HouseholdType,
    Interval,
    Neighborhood,
    Preference,
    Report,
    Settlement,
    truthful_reports,
)
from .pricing import LoadProfile, QuadraticPricing, TwoStepPricing

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Interval",
    "Preference",
    "HouseholdType",
    "Neighborhood",
    "Report",
    "EnkiMechanism",
    "Settlement",
    "DayOutcome",
    "truthful_reports",
    "Allocator",
    "AllocationItem",
    "AllocationProblem",
    "AllocationResult",
    "GreedyFlexibilityAllocator",
    "BranchAndBoundAllocator",
    "ExhaustiveAllocator",
    "LocalSearchAllocator",
    "RandomAllocator",
    "LoadProfile",
    "QuadraticPricing",
    "TwoStepPricing",
]
