"""Agent substrate: households, behaviours, ECC units and the center."""

from .behavior import (
    Behavior,
    FixedReportBehavior,
    MisreportBehavior,
    NarrowingBehavior,
    StubbornBehavior,
    TruthfulBehavior,
)
from .ecc import EccBehavior, EccUnit
from .forecasting import (
    EwmaForecaster,
    Forecaster,
    HistogramForecaster,
    backtest_accuracy,
)
from .household import HouseholdAgent, HouseholdDayLog
from .neighborhood import NeighborhoodController

__all__ = [
    "Behavior",
    "TruthfulBehavior",
    "MisreportBehavior",
    "NarrowingBehavior",
    "FixedReportBehavior",
    "StubbornBehavior",
    "EccUnit",
    "EccBehavior",
    "Forecaster",
    "HistogramForecaster",
    "EwmaForecaster",
    "backtest_accuracy",
    "HouseholdAgent",
    "HouseholdDayLog",
    "NeighborhoodController",
]
