"""Household behaviour strategies: how agents report and consume.

The paper's analysis distinguishes truthful households (report the true
window, follow the allocation) from misreporting defectors (report a
shifted or widened window, then consume within the true window anyway).
These strategies plug into :class:`repro.agents.household.HouseholdAgent`
and the simulation engine.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import closest_feasible_consumption
from ..core.types import HouseholdType, Preference, Report


class Behavior(abc.ABC):
    """How a household decides its report and its consumption."""

    @abc.abstractmethod
    def report(
        self, day: int, household: HouseholdType, rng: random.Random
    ) -> Report:
        """The preference the household declares for the next day."""

    def consume(
        self,
        day: int,
        household: HouseholdType,
        report: Report,
        allocation: Interval,
        rng: random.Random,
    ) -> Interval:
        """The interval the household actually uses.

        Default: follow the allocation when it fits the true window,
        otherwise defect to the closest feasible placement.
        """
        true = household.true_preference
        return closest_feasible_consumption(true.window, true.duration, allocation)


class TruthfulBehavior(Behavior):
    """Report the true preference; the allocation then always fits it."""

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        return Report(household.household_id, household.true_preference)


class MisreportBehavior(Behavior):
    """Report a distorted window, then defect back to the true preference.

    This is the Theorem 2 deviation: e.g. true window (18, 20) reported as
    (14, 20).  The allocation may land outside the true window, in which
    case the household overrides it (Section III allows defection only
    within the true window).

    Args:
        shift: Hours to shift the reported window start (negative = earlier).
        widen: Extra hours added to the reported window on each side.
    """

    def __init__(self, shift: int = 0, widen: int = 0) -> None:
        if widen < 0:
            raise ValueError(f"widen cannot be negative, got {widen}")
        self.shift = shift
        self.widen = widen

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        true = household.true_preference
        start = true.window.start + self.shift - self.widen
        end = true.window.end + self.shift + self.widen
        start = max(0, min(start, HOURS_PER_DAY - true.duration))
        end = max(start + true.duration, min(end, HOURS_PER_DAY))
        return Report(
            household.household_id, Preference(Interval(start, end), true.duration)
        )


class NarrowingBehavior(Behavior):
    """Report only a slice of the true window (hiding flexibility).

    The opposite prosocial failure from misreporting: the household tells
    the truth but *less* of it, reporting a narrower admissible window.
    Used to probe Property 1 (wider truthful windows pay less).
    """

    def __init__(self, keep_hours: Optional[int] = None) -> None:
        if keep_hours is not None and keep_hours < 1:
            raise ValueError(f"keep_hours must be >= 1, got {keep_hours}")
        self.keep_hours = keep_hours

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        true = household.true_preference
        keep = self.keep_hours if self.keep_hours is not None else true.duration
        keep = max(true.duration, min(keep, true.window.length))
        latest_start = true.window.end - keep
        start = rng.randint(true.window.start, latest_start)
        return Report(
            household.household_id,
            Preference(Interval(start, start + keep), true.duration),
        )


class FixedReportBehavior(Behavior):
    """Always declare one specific preference (used by best-response sweeps)."""

    def __init__(self, preference: Preference) -> None:
        self.preference = preference

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        if self.preference.duration != household.true_preference.duration:
            raise ValueError(
                "fixed report must keep the household's true duration "
                f"({household.true_preference.duration}h)"
            )
        return Report(household.household_id, self.preference)


class StubbornBehavior(Behavior):
    """Report truthfully but consume at the most-preferred start regardless.

    Models a household that ignores its allocation: it always consumes at
    its favourite placement (the start of its true window), defecting
    whenever the allocation differs.  Used by failure-injection tests —
    Property 3 says such a household must pay more.
    """

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        return Report(household.household_id, household.true_preference)

    def consume(
        self,
        day: int,
        household: HouseholdType,
        report: Report,
        allocation: Interval,
        rng: random.Random,
    ) -> Interval:
        true = household.true_preference
        return Interval(true.window.start, true.window.start + true.duration)
