"""The Energy Consumption Controller (ECC) unit.

Per Section I, an ECC unit embedded in the smart meter (1) learns the
household's daily consumption pattern, (2) decides, and (3) reports the
household's demand for the next day.  This module composes a
:class:`~repro.agents.forecasting.Forecaster` with the reporting step and a
cold-start fallback.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.intervals import Interval
from ..core.types import HouseholdType, Preference, Report
from .behavior import Behavior
from .forecasting import Forecaster, HistogramForecaster


class EccUnit:
    """Learns a household's pattern and reports on its behalf.

    Args:
        household_id: Whose meter this is.
        forecaster: The pattern learner (histogram learner by default).
        fallback: Preference to report before any history exists (a new
            installation); when omitted the ECC reports the household's
            true preference until it has observations.
    """

    def __init__(
        self,
        household_id: str,
        forecaster: Optional[Forecaster] = None,
        fallback: Optional[Preference] = None,
    ) -> None:
        self.household_id = household_id
        self.forecaster = forecaster if forecaster is not None else HistogramForecaster()
        self.fallback = fallback

    def observe(self, consumption: Interval) -> None:
        """Ingest one day of realized consumption into the learner."""
        self.forecaster.update(consumption.start, consumption.length)

    def report(self, true_preference: Optional[Preference] = None) -> Report:
        """Produce the next-day report: the learned window, or the fallback.

        Args:
            true_preference: Used as the cold-start report when no fallback
                was configured and no history exists yet.
        """
        if self.forecaster.n_observations > 0:
            return Report(self.household_id, self.forecaster.predict())
        if self.fallback is not None:
            return Report(self.household_id, self.fallback)
        if true_preference is not None:
            return Report(self.household_id, true_preference)
        raise RuntimeError(
            f"ECC for {self.household_id!r} has no history, fallback, or true preference"
        )


class EccBehavior(Behavior):
    """A household behaviour driven by its ECC unit.

    Reports come from the learned model; consumption follows the default
    closest-feasible rule of :class:`~repro.agents.behavior.Behavior`.  The
    simulation loop should call :meth:`observe` with each day's realized
    consumption so the model keeps learning.
    """

    def __init__(self, ecc: EccUnit) -> None:
        self.ecc = ecc

    def report(self, day: int, household: HouseholdType, rng: random.Random) -> Report:
        if household.household_id != self.ecc.household_id:
            raise ValueError(
                f"ECC belongs to {self.ecc.household_id!r}, not {household.household_id!r}"
            )
        report = self.ecc.report(true_preference=household.true_preference)
        # The mechanism assumes durations are truthful; clamp the learned
        # duration to the household's real one to stay inside the model.
        if report.preference.duration != household.true_preference.duration:
            duration = household.true_preference.duration
            window = report.preference.window
            if window.length < duration:
                window = household.true_preference.window
            report = Report(self.ecc.household_id, Preference(window, duration))
        return report

    def observe(self, consumption: Interval) -> None:
        """Feed realized consumption back into the learner."""
        self.ecc.observe(consumption)
