"""Consumption-pattern learning for the ECC unit.

The paper's Energy Consumption Controller "learns each household's daily
power consumption pattern through machine learning techniques" before
deciding and reporting the next day's demand.  Two light-weight online
learners are provided; both consume observed (start hour, duration) pairs
and predict the next day's preference window.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import List, Optional, Tuple

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import Preference


class Forecaster(abc.ABC):
    """Online model of one household's daily consumption pattern."""

    @abc.abstractmethod
    def update(self, start: int, duration: int) -> None:
        """Ingest one observed day of consumption."""

    @abc.abstractmethod
    def predict(self) -> Preference:
        """Predict the next day's preference window and duration.

        Raises:
            RuntimeError: Before any observation has been ingested.
        """

    @property
    @abc.abstractmethod
    def n_observations(self) -> int:
        """How many days have been observed."""


def _clamped_window(start: int, end: int, duration: int) -> Preference:
    """Build a preference, clamping to the day and the duration fit."""
    start = max(0, min(start, HOURS_PER_DAY - duration))
    end = max(start + duration, min(end, HOURS_PER_DAY))
    return Preference(Interval(start, end), duration)


class HistogramForecaster(Forecaster):
    """Frequency-based forecaster over start hours and durations.

    Predicts the modal duration and a window spanning the observed start
    hours between two quantiles, padded by ``margin`` hours on each side —
    the margin is the household's declared flexibility.
    """

    def __init__(self, low_quantile: float = 0.1, high_quantile: float = 0.9,
                 margin: int = 1) -> None:
        if not 0 <= low_quantile <= high_quantile <= 1:
            raise ValueError(
                f"bad quantile range [{low_quantile}, {high_quantile}]"
            )
        if margin < 0:
            raise ValueError(f"margin cannot be negative, got {margin}")
        self.low_quantile = low_quantile
        self.high_quantile = high_quantile
        self.margin = margin
        self._starts: List[int] = []
        self._durations: Counter = Counter()

    def update(self, start: int, duration: int) -> None:
        if not 0 <= start < HOURS_PER_DAY:
            raise ValueError(f"start hour {start} outside the day")
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        self._starts.append(start)
        self._durations[duration] += 1

    @property
    def n_observations(self) -> int:
        return len(self._starts)

    def predict(self) -> Preference:
        if not self._starts:
            raise RuntimeError("forecaster has no observations yet")
        ordered = sorted(self._starts)
        low_idx = int(self.low_quantile * (len(ordered) - 1))
        high_idx = int(round(self.high_quantile * (len(ordered) - 1)))
        duration = self._durations.most_common(1)[0][0]
        window_start = ordered[low_idx] - self.margin
        window_end = ordered[high_idx] + duration + self.margin
        return _clamped_window(window_start, window_end, duration)


class EwmaForecaster(Forecaster):
    """Exponentially weighted moving average of start and duration.

    Reacts faster to regime changes than the histogram learner; the window
    is the EWMA start plus/minus a fixed half-width.
    """

    def __init__(self, alpha: float = 0.3, half_width: int = 2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if half_width < 0:
            raise ValueError(f"half width cannot be negative, got {half_width}")
        self.alpha = alpha
        self.half_width = half_width
        self._start: Optional[float] = None
        self._duration: Optional[float] = None
        self._count = 0

    def update(self, start: int, duration: int) -> None:
        if not 0 <= start < HOURS_PER_DAY:
            raise ValueError(f"start hour {start} outside the day")
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        if self._start is None:
            self._start = float(start)
            self._duration = float(duration)
        else:
            self._start += self.alpha * (start - self._start)
            self._duration += self.alpha * (duration - self._duration)
        self._count += 1

    @property
    def n_observations(self) -> int:
        return self._count

    def predict(self) -> Preference:
        if self._start is None or self._duration is None:
            raise RuntimeError("forecaster has no observations yet")
        duration = max(1, int(round(self._duration)))
        center = int(round(self._start))
        return _clamped_window(
            center - self.half_width, center + duration + self.half_width, duration
        )


def backtest_accuracy(
    forecaster: Forecaster, history: List[Tuple[int, int]]
) -> float:
    """Fraction of days whose realized start fell inside the predicted window.

    Walks the history forward: each day is predicted from the prior days
    only, then ingested.  Days before the first observation are skipped.
    """
    hits = 0
    evaluated = 0
    for start, duration in history:
        if forecaster.n_observations > 0:
            predicted = forecaster.predict()
            evaluated += 1
            if predicted.window.contains_slot(start):
                hits += 1
        forecaster.update(start, duration)
    if evaluated == 0:
        return 0.0
    return hits / evaluated
