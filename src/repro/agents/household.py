"""Household agents: a type plus a behaviour plus a running account."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.intervals import Interval
from ..core.types import HouseholdType, Report
from .behavior import Behavior, TruthfulBehavior


@dataclass
class HouseholdDayLog:
    """What one household experienced on one day."""

    day: int
    report: Report
    allocation: Interval
    consumption: Interval
    payment: float
    utility: float

    @property
    def defected(self) -> bool:
        return self.consumption != self.allocation


class HouseholdAgent:
    """An autonomous household participating in the neighborhood.

    Wraps the private :class:`HouseholdType` with a behaviour strategy and
    accumulates a per-day log that learning behaviours and the user-study
    analysis read back.
    """

    def __init__(
        self, household: HouseholdType, behavior: Optional[Behavior] = None
    ) -> None:
        self.household = household
        self.behavior = behavior if behavior is not None else TruthfulBehavior()
        self.history: List[HouseholdDayLog] = []

    @property
    def household_id(self) -> str:
        return self.household.household_id

    def report(self, day: int, rng: random.Random) -> Report:
        """Declare the next day's preference."""
        return self.behavior.report(day, self.household, rng)

    def consume(
        self, day: int, report: Report, allocation: Interval, rng: random.Random
    ) -> Interval:
        """Realize consumption given the received allocation."""
        return self.behavior.consume(day, self.household, report, allocation, rng)

    def record(self, log: HouseholdDayLog) -> None:
        """Append a settled day to the agent's history."""
        self.history.append(log)

    def total_utility(self) -> float:
        """Cumulative quasilinear utility over the recorded days."""
        return sum(log.utility for log in self.history)

    def defection_rate(self) -> float:
        """Fraction of recorded days the agent defected."""
        if not self.history:
            return 0.0
        return sum(1 for log in self.history if log.defected) / len(self.history)
