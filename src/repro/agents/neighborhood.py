"""The neighborhood controller: the "center" of Figure 1.

Mediates between household agents and the power company: collects reports,
runs the mechanism's allocation, gathers realized consumption, settles
payments and pushes each household its own day log (step 5 of Figure 1:
"consumption and payment").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import ConsumptionMap, HouseholdId, Neighborhood, Report
from ..sim.rng import spawn_seed
from .behavior import Behavior
from .ecc import EccBehavior
from .household import HouseholdAgent, HouseholdDayLog


class NeighborhoodController:
    """Runs the Enki day cycle over a set of household agents."""

    def __init__(
        self,
        agents: Sequence[HouseholdAgent],
        mechanism: Optional[EnkiMechanism] = None,
    ) -> None:
        if not agents:
            raise ValueError("a neighborhood needs at least one household agent")
        ids = [agent.household_id for agent in agents]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate household ids: {ids}")
        self.agents: Dict[HouseholdId, HouseholdAgent] = {
            agent.household_id: agent for agent in agents
        }
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.neighborhood = Neighborhood.of(
            *(agent.household for agent in agents)
        )
        self._day = 0

    def run_day(self, rng: Optional[random.Random] = None) -> DayOutcome:
        """Execute one full day: report, allocate, consume, settle, notify."""
        rng = rng if rng is not None else random.Random()
        day = self._day

        reports: Dict[HouseholdId, Report] = {
            hid: agent.report(day, rng) for hid, agent in self.agents.items()
        }
        allocation_result = self.mechanism.allocate(
            self.neighborhood, reports, random.Random(spawn_seed(rng))
        )
        consumption: ConsumptionMap = {
            hid: agent.consume(
                day, reports[hid], allocation_result.allocation[hid], rng
            )
            for hid, agent in self.agents.items()
        }
        settlement = self.mechanism.settle(
            self.neighborhood, reports, allocation_result.allocation, consumption
        )

        for hid, agent in self.agents.items():
            log = HouseholdDayLog(
                day=day,
                report=reports[hid],
                allocation=allocation_result.allocation[hid],
                consumption=consumption[hid],
                payment=settlement.payments[hid],
                utility=settlement.utilities[hid],
            )
            agent.record(log)
            behavior: Behavior = agent.behavior
            if isinstance(behavior, EccBehavior):
                behavior.observe(consumption[hid])

        self._day += 1
        return DayOutcome(
            reports=reports,
            allocation_result=allocation_result,
            consumption=consumption,
            settlement=settlement,
        )

    def run_days(
        self, days: int, seed: Optional[int] = None
    ) -> List[DayOutcome]:
        """Run several consecutive days with one master seed."""
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        rng = random.Random(seed)
        return [self.run_day(random.Random(spawn_seed(rng))) for _ in range(days)]
