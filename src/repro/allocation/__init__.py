"""Allocation substrate: solvers for the Eq. 2 scheduling problem."""

from .base import (
    AllocationItem,
    AllocationProblem,
    AllocationResult,
    Allocator,
)
from .decentralized import (
    BestResponseDynamicsAllocator,
    ConvergenceStats,
    is_nash_equilibrium,
)
from .exhaustive import ExhaustiveAllocator
from .greedy import GreedyFlexibilityAllocator
from .local_search import LocalSearchAllocator, improve_allocation
from .optimal import BranchAndBoundAllocator
from .random_alloc import EarliestAllocator, RandomAllocator
from .relaxation import quadratic_waterfill_bound, waterfill_levels

__all__ = [
    "AllocationItem",
    "AllocationProblem",
    "AllocationResult",
    "Allocator",
    "ExhaustiveAllocator",
    "GreedyFlexibilityAllocator",
    "LocalSearchAllocator",
    "improve_allocation",
    "BranchAndBoundAllocator",
    "BestResponseDynamicsAllocator",
    "ConvergenceStats",
    "is_nash_equilibrium",
    "EarliestAllocator",
    "RandomAllocator",
    "quadratic_waterfill_bound",
    "waterfill_levels",
]
