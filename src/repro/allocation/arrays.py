"""Structure-of-arrays compilation of allocation problems.

Every allocator used to re-derive the same per-item facts — begin-slot
ranges, prefix-sum index vectors, window supports, suffix aggregates —
from ``AllocationItem`` attributes inside its hot loop.  This module
lowers an :class:`~repro.allocation.base.AllocationProblem` **once** into
flat numpy arrays that the greedy allocator, the hill climber, the
relaxation bounds and the branch-and-bound solver all share:

* :class:`CompiledProblem` — per-item scalars (window bounds, duration,
  rating, energy) as parallel arrays, plus per-item begin-candidate index
  vectors so a placement scan is one fancy-indexed subtraction against a
  maintained load prefix sum instead of a Python loop.
* :class:`SuffixArrays` — the branch-and-bound bound data (remaining
  energy, per-hour capacity, window support, brick counts, pairwise
  minimum-overlap cross terms) for every suffix of a branch order, built
  with reverse cumulative sums instead of the seed's O(n^2 * 24) Python
  loops.

Compilation is cached per problem object (weakly), so the warm-start
greedy running inside the exact solver reuses the same compiled view as
a standalone greedy solve on the same day instance.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY
from ..core.types import HouseholdId
from ..pricing.quadratic import QuadraticPricing
from .base import AllocationItem, AllocationProblem


@dataclass(frozen=True)
class CompiledProblem:
    """An allocation problem lowered to flat numpy arrays.

    Arrays are parallel to the households (one row each, in the order given
    at compile time).  ``start_index[i]``/``end_index[i]`` hold the
    feasible begin slots of item ``i`` and their block ends, so the sum of
    an existing load profile under every candidate block of item ``i`` is
    ``prefix[end_index[i]] - prefix[start_index[i]]`` for a maintained
    prefix-sum vector ``prefix`` (one vectorized subtraction per item).

    ``items`` is populated by :meth:`from_items` (the object path); the
    columnar path (:meth:`from_arrays`) leaves it empty and carries only
    the ``ids`` vector — consumers that need ``AllocationItem`` objects
    should go through
    :func:`repro.allocation.base.problem_from_compiled`.
    """

    items: Tuple[AllocationItem, ...]
    ids: Tuple[HouseholdId, ...]
    sigma: Optional[float]
    win_start: np.ndarray
    win_end: np.ndarray
    duration: np.ndarray
    rating: np.ndarray
    n_placements: np.ndarray
    energy: np.ndarray
    start_index: Tuple[np.ndarray, ...]
    end_index: Tuple[np.ndarray, ...]
    index_of: Dict[HouseholdId, int]

    @classmethod
    def from_items(
        cls, items: Sequence[AllocationItem], pricing=None
    ) -> "CompiledProblem":
        """Lower ``items`` (in the given order) into arrays."""
        n = len(items)
        win_start = np.fromiter((it.window.start for it in items), np.intp, count=n)
        win_end = np.fromiter((it.window.end for it in items), np.intp, count=n)
        duration = np.fromiter((it.duration for it in items), np.intp, count=n)
        rating = np.fromiter((it.rating_kw for it in items), np.float64, count=n)
        n_placements = win_end - win_start - duration + 1
        start_index = tuple(
            np.arange(a, a + count, dtype=np.intp)
            for a, count in zip(win_start.tolist(), n_placements.tolist())
        )
        end_index = tuple(
            starts + v for starts, v in zip(start_index, duration.tolist())
        )
        sigma = pricing.sigma if isinstance(pricing, QuadraticPricing) else None
        return cls(
            items=tuple(items),
            ids=tuple(it.household_id for it in items),
            sigma=sigma,
            win_start=win_start,
            win_end=win_end,
            duration=duration,
            rating=rating,
            n_placements=n_placements,
            energy=rating * duration,
            start_index=start_index,
            end_index=end_index,
            index_of={it.household_id: i for i, it in enumerate(items)},
        )

    @classmethod
    def from_arrays(
        cls,
        ids: Sequence[HouseholdId],
        win_start: np.ndarray,
        win_end: np.ndarray,
        duration: np.ndarray,
        rating: np.ndarray,
        pricing=None,
    ) -> "CompiledProblem":
        """Lower parallel household arrays directly, skipping the objects.

        The columnar fast path: no ``AllocationItem``/``Report`` objects
        are materialized.  The per-item begin-candidate index vectors are
        built as views into one flat ``arange`` (one vectorized pass plus
        an O(n) split), so compiling 100k households costs milliseconds,
        not a Python loop over 100k windows.
        """
        win_start = np.ascontiguousarray(win_start, dtype=np.intp)
        win_end = np.ascontiguousarray(win_end, dtype=np.intp)
        duration = np.ascontiguousarray(duration, dtype=np.intp)
        rating = np.ascontiguousarray(rating, dtype=np.float64)
        n = win_start.shape[0]
        n_placements = win_end - win_start - duration + 1
        if n and int(n_placements.min()) < 1:
            bad = int(np.argmin(n_placements))
            raise ValueError(
                f"window [{int(win_start[bad])}, {int(win_end[bad])}) cannot "
                f"fit duration {int(duration[bad])} (household {ids[bad]!r})"
            )
        # All items' begin slots as one flat vector, then per-item views.
        bounds = np.cumsum(n_placements)
        total = int(bounds[-1]) if n else 0
        flat = (
            np.arange(total, dtype=np.intp)
            - np.repeat(bounds - n_placements, n_placements)
            + np.repeat(win_start, n_placements)
        )
        flat_ends = flat + np.repeat(duration, n_placements)
        start_index = tuple(np.split(flat, bounds[:-1]))
        end_index = tuple(np.split(flat_ends, bounds[:-1]))
        sigma = pricing.sigma if isinstance(pricing, QuadraticPricing) else None
        ids = tuple(ids)
        return cls(
            items=(),
            ids=ids,
            sigma=sigma,
            win_start=win_start,
            win_end=win_end,
            duration=duration,
            rating=rating,
            n_placements=n_placements,
            energy=rating * duration,
            start_index=start_index,
            end_index=end_index,
            index_of={hid: i for i, hid in enumerate(ids)},
        )

    def __len__(self) -> int:
        return len(self.ids)

    def kernel_columns(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(win_start, win_end, duration, rating)`` for the JIT kernels.

        The four per-item columns the :mod:`repro.kernels` placement sweep
        reads, guaranteed contiguous in compiled row order (both
        constructors run them through ``np.fromiter``/``ascontiguousarray``)
        so the compiled build never copies.
        """
        return self.win_start, self.win_end, self.duration, self.rating

    def begin_candidates(
        self, i: int, offset: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Item ``i``'s begin/end prefix-index vectors from ``offset`` on.

        The branch-and-bound expansion skips the first ``offset``
        candidates when the symmetry constraint floors the begin slot;
        step-1 slices of the flat arange stay contiguous, so the pair
        feeds the compiled kernel without copies.
        """
        starts_idx = self.start_index[i]
        ends_idx = self.end_index[i]
        if offset:
            starts_idx = starts_idx[offset:]
            ends_idx = ends_idx[offset:]
        return starts_idx, ends_idx

    def block_sums(self, prefix: np.ndarray, i: int) -> np.ndarray:
        """Existing-load sum under every candidate block of item ``i``.

        ``prefix`` is the 25-entry prefix sum of the current hourly loads
        (``prefix[0] == 0``); entry ``k`` of the result is the load under
        the block beginning at ``start_index[i][k]``.
        """
        return prefix[self.end_index[i]] - prefix[self.start_index[i]]

    def window_matrix(self) -> np.ndarray:
        """Boolean ``(n, HOURS_PER_DAY)`` window-coverage indicator."""
        hours = np.arange(HOURS_PER_DAY)
        return (self.win_start[:, None] <= hours[None, :]) & (
            hours[None, :] < self.win_end[:, None]
        )

    def uniform_rating(self) -> Optional[float]:
        """The common power rating, or ``None`` if ratings differ."""
        if self.rating.size == 0:
            return None
        first = float(self.rating[0])
        if np.all(self.rating == first):
            return first
        return None

    def __reduce__(self):
        """Pickle only the five defining arrays; rebuild the rest.

        ``start_index``/``end_index`` are 2n views into one flat arange
        and ``index_of`` an n-entry dict — serializing them would ship
        several times the payload of the facts they are derived from.
        Rebuilding through :meth:`from_arrays` keeps worker transport
        (parallel branch and bound) proportional to n scalars.  ``items``
        does not survive the round trip (columnar consumers never use it).
        """
        return (
            _rebuild_compiled,
            (
                self.ids,
                np.asarray(self.win_start),
                np.asarray(self.win_end),
                np.asarray(self.duration),
                np.asarray(self.rating),
                self.sigma,
            ),
        )


def _rebuild_compiled(
    ids: Tuple[HouseholdId, ...],
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    sigma: Optional[float],
) -> CompiledProblem:
    """Unpickle target for :meth:`CompiledProblem.__reduce__`."""
    compiled = CompiledProblem.from_arrays(
        ids=ids,
        win_start=win_start,
        win_end=win_end,
        duration=duration,
        rating=rating,
        pricing=None,
    )
    object.__setattr__(compiled, "sigma", sigma)
    return compiled


#: Weak per-problem compilation cache: the warm-start greedy inside the
#: exact solver sees the same ``AllocationProblem`` object as a standalone
#: solve, so the lowering is paid once per day instance.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[AllocationProblem, CompiledProblem]" = (
    weakref.WeakKeyDictionary()
)


def compile_problem(problem: AllocationProblem) -> CompiledProblem:
    """The problem's :class:`CompiledProblem` (cached weakly per object)."""
    compiled = _COMPILE_CACHE.get(problem)
    if compiled is None:
        compiled = CompiledProblem.from_items(problem.items, problem.pricing)
        _COMPILE_CACHE[problem] = compiled
    return compiled


@dataclass(frozen=True)
class SuffixArrays:
    """Per-depth bound data for a fixed branch order.

    Index ``k`` describes the suffix of households ``k..n-1`` still
    unplaced when the search stands at depth ``k``; index ``n`` is the
    empty suffix.  These are exactly the seed solver's ``suffix_*``
    tables, built vectorized.
    """

    energy: np.ndarray           # (n+1,) remaining energy R_k
    self_term: np.ndarray        # (n+1,) sum_j r_j^2 v_j over the suffix
    cross: np.ndarray            # (n+1,) pairwise minimum-overlap floor
    caps: np.ndarray             # (n+1, 24) per-hour remaining capacity
    counts: np.ndarray           # (n+1, 24) remaining households covering h
    units: np.ndarray            # (n+1,) remaining brick count sum_j v_j
    support_index: Tuple[np.ndarray, ...]  # (n+1) hour-index arrays, caps > 0
    same_as_prev: Tuple[bool, ...]         # identical-spec symmetry flags

    @classmethod
    def from_compiled(cls, compiled: CompiledProblem) -> "SuffixArrays":
        """Build all suffix tables for the compiled items' order."""
        n = len(compiled)
        window = compiled.window_matrix()          # (n, 24) bool
        rating = compiled.rating
        duration = compiled.duration.astype(np.float64)

        def _suffix_sum(rows: np.ndarray) -> np.ndarray:
            """Reverse cumulative sum with a trailing zero row."""
            out = np.zeros((n + 1,) + rows.shape[1:], dtype=rows.dtype)
            if n:
                out[:n] = rows[::-1].cumsum(axis=0)[::-1]
            return out

        energy = _suffix_sum(rating * duration)
        self_term = _suffix_sum(rating * rating * duration)
        caps = _suffix_sum(window * rating[:, None])
        counts = _suffix_sum(window.astype(np.intp))
        units = _suffix_sum(compiled.duration)

        # Pairwise minimum-overlap floor on the cross terms of sum(X**2):
        # blocks of lengths v, v' confined to the hull of their windows
        # (length L) overlap at least v + v' - L hours, whatever happens.
        if n:
            hull = np.maximum(
                compiled.win_end[:, None], compiled.win_end[None, :]
            ) - np.minimum(compiled.win_start[:, None], compiled.win_start[None, :])
            forced = np.maximum(
                compiled.duration[:, None] + compiled.duration[None, :] - hull, 0
            )
            pair = rating[:, None] * rating[None, :] * forced
            pair[np.tril_indices(n)] = 0.0     # keep j < j' pairs only
            cross = _suffix_sum(pair.sum(axis=1))
        else:
            cross = np.zeros(1)

        if n:
            same = (
                (compiled.win_start[1:] == compiled.win_start[:-1])
                & (compiled.win_end[1:] == compiled.win_end[:-1])
                & (compiled.duration[1:] == compiled.duration[:-1])
                & (compiled.rating[1:] == compiled.rating[:-1])
            )
            same_as_prev = (False,) + tuple(same.tolist())
        else:
            same_as_prev = ()
        support_index = tuple(
            np.flatnonzero(caps[k] > 0.0) for k in range(n + 1)
        )
        return cls(
            energy=energy,
            self_term=self_term,
            cross=cross,
            caps=caps,
            counts=counts,
            units=units,
            support_index=support_index,
            same_as_prev=same_as_prev,
        )
