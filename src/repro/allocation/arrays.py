"""Structure-of-arrays compilation of allocation problems.

Every allocator used to re-derive the same per-item facts — begin-slot
ranges, prefix-sum index vectors, window supports, suffix aggregates —
from ``AllocationItem`` attributes inside its hot loop.  This module
lowers an :class:`~repro.allocation.base.AllocationProblem` **once** into
flat numpy arrays that the greedy allocator, the hill climber, the
relaxation bounds and the branch-and-bound solver all share:

* :class:`CompiledProblem` — per-item scalars (window bounds, duration,
  rating, energy) as parallel arrays, plus per-item begin-candidate index
  vectors so a placement scan is one fancy-indexed subtraction against a
  maintained load prefix sum instead of a Python loop.
* :class:`SuffixArrays` — the branch-and-bound bound data (remaining
  energy, per-hour capacity, window support, brick counts, pairwise
  minimum-overlap cross terms) for every suffix of a branch order, built
  with reverse cumulative sums instead of the seed's O(n^2 * 24) Python
  loops.

Compilation is cached per problem object (weakly), so the warm-start
greedy running inside the exact solver reuses the same compiled view as
a standalone greedy solve on the same day instance.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY
from ..core.types import HouseholdId
from ..pricing.quadratic import QuadraticPricing
from .base import AllocationItem, AllocationProblem


@dataclass(frozen=True)
class CompiledProblem:
    """An allocation problem lowered to flat numpy arrays.

    Arrays are parallel to the households (one row each, in the order given
    at compile time).  ``start_index[i]``/``end_index[i]`` hold the
    feasible begin slots of item ``i`` and their block ends, so the sum of
    an existing load profile under every candidate block of item ``i`` is
    ``prefix[end_index[i]] - prefix[start_index[i]]`` for a maintained
    prefix-sum vector ``prefix`` (one vectorized subtraction per item).

    ``start_index``/``end_index``/``index_of`` are **lazy**: the JIT
    placement sweep reads only :meth:`kernel_columns`, so the per-item
    index vectors (2n small arrays) and the id-to-row dict are built on
    first access and cached — a greedy-only day never pays for them,
    which matters when the batched engine compiles hundreds of days.

    ``items`` is populated by :meth:`from_items` (the object path); the
    columnar path (:meth:`from_arrays`) leaves it empty and carries only
    the ``ids`` vector — consumers that need ``AllocationItem`` objects
    should go through
    :func:`repro.allocation.base.problem_from_compiled`.
    """

    items: Tuple[AllocationItem, ...]
    ids: Tuple[HouseholdId, ...]
    sigma: Optional[float]
    win_start: np.ndarray
    win_end: np.ndarray
    duration: np.ndarray
    rating: np.ndarray
    n_placements: np.ndarray
    energy: np.ndarray

    @property
    def start_index(self) -> Tuple[np.ndarray, ...]:
        """Per-item begin-slot index vectors (lazy, cached)."""
        cached = self.__dict__.get("_start_index")
        if cached is None:
            cached = self._build_index_vectors()[0]
        return cached

    @property
    def end_index(self) -> Tuple[np.ndarray, ...]:
        """Per-item block-end index vectors (lazy, cached)."""
        cached = self.__dict__.get("_end_index")
        if cached is None:
            cached = self._build_index_vectors()[1]
        return cached

    @property
    def index_of(self) -> Dict[HouseholdId, int]:
        """Household id to compiled row (lazy, cached)."""
        cached = self.__dict__.get("_index_of")
        if cached is None:
            cached = {hid: i for i, hid in enumerate(self.ids)}
            object.__setattr__(self, "_index_of", cached)
        return cached

    def _build_index_vectors(
        self,
    ) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]:
        """Build and cache both index-vector tuples in one pass.

        All items' begin slots as one flat ``arange``, then per-item
        views by manual slicing — ``np.split`` routes every piece
        through ``array_split``'s swapaxes machinery, an order of
        magnitude slower for thousands of 1-d pieces.
        """
        counts = self.n_placements
        n = counts.shape[0]
        bounds = np.cumsum(counts)
        total = int(bounds[-1]) if n else 0
        flat = (
            np.arange(total, dtype=np.intp)
            - np.repeat(bounds - counts, counts)
            + np.repeat(self.win_start, counts)
        )
        flat_ends = flat + np.repeat(self.duration, counts)
        starts, ends = [], []
        lo = 0
        for hi in bounds.tolist():
            starts.append(flat[lo:hi])
            ends.append(flat_ends[lo:hi])
            lo = hi
        start_index = tuple(starts)
        end_index = tuple(ends)
        object.__setattr__(self, "_start_index", start_index)
        object.__setattr__(self, "_end_index", end_index)
        return start_index, end_index

    @classmethod
    def from_items(
        cls, items: Sequence[AllocationItem], pricing=None
    ) -> "CompiledProblem":
        """Lower ``items`` (in the given order) into arrays."""
        n = len(items)
        win_start = np.fromiter((it.window.start for it in items), np.intp, count=n)
        win_end = np.fromiter((it.window.end for it in items), np.intp, count=n)
        duration = np.fromiter((it.duration for it in items), np.intp, count=n)
        rating = np.fromiter((it.rating_kw for it in items), np.float64, count=n)
        n_placements = win_end - win_start - duration + 1
        sigma = pricing.sigma if isinstance(pricing, QuadraticPricing) else None
        return cls(
            items=tuple(items),
            ids=tuple(it.household_id for it in items),
            sigma=sigma,
            win_start=win_start,
            win_end=win_end,
            duration=duration,
            rating=rating,
            n_placements=n_placements,
            energy=rating * duration,
        )

    @classmethod
    def from_arrays(
        cls,
        ids: Sequence[HouseholdId],
        win_start: np.ndarray,
        win_end: np.ndarray,
        duration: np.ndarray,
        rating: np.ndarray,
        pricing=None,
    ) -> "CompiledProblem":
        """Lower parallel household arrays directly, skipping the objects.

        The columnar fast path: no ``AllocationItem``/``Report`` objects
        are materialized, and the per-item begin-candidate index vectors
        are deferred until a consumer (the exact solver, the object-path
        greedy) actually reads them — the JIT placement sweep never does,
        so compiling a greedy day is a handful of vectorized passes.
        """
        win_start = np.ascontiguousarray(win_start, dtype=np.intp)
        win_end = np.ascontiguousarray(win_end, dtype=np.intp)
        duration = np.ascontiguousarray(duration, dtype=np.intp)
        rating = np.ascontiguousarray(rating, dtype=np.float64)
        n = win_start.shape[0]
        n_placements = win_end - win_start - duration + 1
        if n and int(n_placements.min()) < 1:
            bad = int(np.argmin(n_placements))
            raise ValueError(
                f"window [{int(win_start[bad])}, {int(win_end[bad])}) cannot "
                f"fit duration {int(duration[bad])} (household {ids[bad]!r})"
            )
        sigma = pricing.sigma if isinstance(pricing, QuadraticPricing) else None
        ids = tuple(ids)
        return cls(
            items=(),
            ids=ids,
            sigma=sigma,
            win_start=win_start,
            win_end=win_end,
            duration=duration,
            rating=rating,
            n_placements=n_placements,
            energy=rating * duration,
        )

    def __len__(self) -> int:
        return len(self.ids)

    def kernel_columns(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(win_start, win_end, duration, rating)`` for the JIT kernels.

        The four per-item columns the :mod:`repro.kernels` placement sweep
        reads, guaranteed contiguous in compiled row order (both
        constructors run them through ``np.fromiter``/``ascontiguousarray``)
        so the compiled build never copies.
        """
        return self.win_start, self.win_end, self.duration, self.rating

    def begin_candidates(
        self, i: int, offset: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Item ``i``'s begin/end prefix-index vectors from ``offset`` on.

        The branch-and-bound expansion skips the first ``offset``
        candidates when the symmetry constraint floors the begin slot;
        step-1 slices of the flat arange stay contiguous, so the pair
        feeds the compiled kernel without copies.
        """
        starts_idx = self.start_index[i]
        ends_idx = self.end_index[i]
        if offset:
            starts_idx = starts_idx[offset:]
            ends_idx = ends_idx[offset:]
        return starts_idx, ends_idx

    def block_sums(self, prefix: np.ndarray, i: int) -> np.ndarray:
        """Existing-load sum under every candidate block of item ``i``.

        ``prefix`` is the 25-entry prefix sum of the current hourly loads
        (``prefix[0] == 0``); entry ``k`` of the result is the load under
        the block beginning at ``start_index[i][k]``.
        """
        return prefix[self.end_index[i]] - prefix[self.start_index[i]]

    def window_matrix(self) -> np.ndarray:
        """Boolean ``(n, HOURS_PER_DAY)`` window-coverage indicator."""
        hours = np.arange(HOURS_PER_DAY)
        return (self.win_start[:, None] <= hours[None, :]) & (
            hours[None, :] < self.win_end[:, None]
        )

    def uniform_rating(self) -> Optional[float]:
        """The common power rating, or ``None`` if ratings differ."""
        if self.rating.size == 0:
            return None
        first = float(self.rating[0])
        if np.all(self.rating == first):
            return first
        return None

    def __reduce__(self):
        """Pickle only the five defining arrays; rebuild the rest.

        ``start_index``/``end_index`` are 2n views into one flat arange
        and ``index_of`` an n-entry dict — serializing them would ship
        several times the payload of the facts they are derived from.
        Rebuilding through :meth:`from_arrays` keeps worker transport
        (parallel branch and bound) proportional to n scalars.  ``items``
        does not survive the round trip (columnar consumers never use it).
        """
        return (
            _rebuild_compiled,
            (
                self.ids,
                np.asarray(self.win_start),
                np.asarray(self.win_end),
                np.asarray(self.duration),
                np.asarray(self.rating),
                self.sigma,
            ),
        )


def _rebuild_compiled(
    ids: Tuple[HouseholdId, ...],
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    sigma: Optional[float],
) -> CompiledProblem:
    """Unpickle target for :meth:`CompiledProblem.__reduce__`."""
    compiled = CompiledProblem.from_arrays(
        ids=ids,
        win_start=win_start,
        win_end=win_end,
        duration=duration,
        rating=rating,
        pricing=None,
    )
    object.__setattr__(compiled, "sigma", sigma)
    return compiled


#: Weak per-problem compilation cache: the warm-start greedy inside the
#: exact solver sees the same ``AllocationProblem`` object as a standalone
#: solve, so the lowering is paid once per day instance.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[AllocationProblem, CompiledProblem]" = (
    weakref.WeakKeyDictionary()
)

#: Content-keyed LRU behind the weak cache.  The weak layer only helps
#: while the *same* ``AllocationProblem`` object is alive; drivers that
#: rebuild the problem from identical reports every call (the fig7
#: best-response sweep re-running one candidate day per repeat, a fixed
#: neighborhood simulated over many days) used to recompile silently on
#: every solve.  ``items`` tuples are frozen dataclasses, so identical
#: content hashes identically and the lowering is paid once per unique
#: day instance.
_CONTENT_CACHE: "OrderedDict[Tuple, CompiledProblem]" = OrderedDict()
_CONTENT_CACHE_CAPACITY = 256

_COMPILE_STATS = {"hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of :func:`compile_problem` (process-wide)."""
    return dict(_COMPILE_STATS)


def reset_compile_cache(stats_only: bool = False) -> None:
    """Zero the counters (and, unless ``stats_only``, drop cached entries)."""
    _COMPILE_STATS["hits"] = 0
    _COMPILE_STATS["misses"] = 0
    if not stats_only:
        _CONTENT_CACHE.clear()


def _content_key(problem: AllocationProblem) -> Tuple:
    """Hashable identity of everything :meth:`from_items` reads.

    The lowering consumes the item tuple plus (for quadratic pricing)
    ``sigma``; two problems agreeing on those compile to interchangeable
    views whatever else their pricing objects differ on.
    """
    sigma = (
        problem.pricing.sigma
        if isinstance(problem.pricing, QuadraticPricing)
        else None
    )
    return (problem.items, sigma)


def compile_problem(problem: AllocationProblem) -> CompiledProblem:
    """The problem's :class:`CompiledProblem`, cached per object and content.

    Lookup order: the weak per-object cache (free for repeat solves on
    one live problem object), then the content-keyed LRU (catches
    identical instances rebuilt from scratch).  Hit/miss counters are
    exposed via :func:`compile_cache_stats`; a content hit also
    repopulates the weak layer for the new object.
    """
    compiled = _COMPILE_CACHE.get(problem)
    if compiled is not None:
        _COMPILE_STATS["hits"] += 1
        return compiled
    key = _content_key(problem)
    compiled = _CONTENT_CACHE.get(key)
    if compiled is not None:
        _CONTENT_CACHE.move_to_end(key)
        _COMPILE_CACHE[problem] = compiled
        _COMPILE_STATS["hits"] += 1
        return compiled
    _COMPILE_STATS["misses"] += 1
    compiled = CompiledProblem.from_items(problem.items, problem.pricing)
    _COMPILE_CACHE[problem] = compiled
    _CONTENT_CACHE[key] = compiled
    while len(_CONTENT_CACHE) > _CONTENT_CACHE_CAPACITY:
        _CONTENT_CACHE.popitem(last=False)
    return compiled


@dataclass(frozen=True)
class SuffixArrays:
    """Per-depth bound data for a fixed branch order.

    Index ``k`` describes the suffix of households ``k..n-1`` still
    unplaced when the search stands at depth ``k``; index ``n`` is the
    empty suffix.  These are exactly the seed solver's ``suffix_*``
    tables, built vectorized.
    """

    energy: np.ndarray           # (n+1,) remaining energy R_k
    self_term: np.ndarray        # (n+1,) sum_j r_j^2 v_j over the suffix
    cross: np.ndarray            # (n+1,) pairwise minimum-overlap floor
    caps: np.ndarray             # (n+1, 24) per-hour remaining capacity
    counts: np.ndarray           # (n+1, 24) remaining households covering h
    units: np.ndarray            # (n+1,) remaining brick count sum_j v_j
    support_index: Tuple[np.ndarray, ...]  # (n+1) hour-index arrays, caps > 0
    same_as_prev: Tuple[bool, ...]         # identical-spec symmetry flags

    @classmethod
    def from_compiled(cls, compiled: CompiledProblem) -> "SuffixArrays":
        """Build all suffix tables for the compiled items' order."""
        n = len(compiled)
        window = compiled.window_matrix()          # (n, 24) bool
        rating = compiled.rating
        duration = compiled.duration.astype(np.float64)

        def _suffix_sum(rows: np.ndarray) -> np.ndarray:
            """Reverse cumulative sum with a trailing zero row."""
            out = np.zeros((n + 1,) + rows.shape[1:], dtype=rows.dtype)
            if n:
                out[:n] = rows[::-1].cumsum(axis=0)[::-1]
            return out

        energy = _suffix_sum(rating * duration)
        self_term = _suffix_sum(rating * rating * duration)
        caps = _suffix_sum(window * rating[:, None])
        counts = _suffix_sum(window.astype(np.intp))
        units = _suffix_sum(compiled.duration)

        # Pairwise minimum-overlap floor on the cross terms of sum(X**2):
        # blocks of lengths v, v' confined to the hull of their windows
        # (length L) overlap at least v + v' - L hours, whatever happens.
        if n:
            hull = np.maximum(
                compiled.win_end[:, None], compiled.win_end[None, :]
            ) - np.minimum(compiled.win_start[:, None], compiled.win_start[None, :])
            forced = np.maximum(
                compiled.duration[:, None] + compiled.duration[None, :] - hull, 0
            )
            pair = rating[:, None] * rating[None, :] * forced
            pair[np.tril_indices(n)] = 0.0     # keep j < j' pairs only
            cross = _suffix_sum(pair.sum(axis=1))
        else:
            cross = np.zeros(1)

        if n:
            same = (
                (compiled.win_start[1:] == compiled.win_start[:-1])
                & (compiled.win_end[1:] == compiled.win_end[:-1])
                & (compiled.duration[1:] == compiled.duration[:-1])
                & (compiled.rating[1:] == compiled.rating[:-1])
            )
            same_as_prev = (False,) + tuple(same.tolist())
        else:
            same_as_prev = ()
        support_index = tuple(
            np.flatnonzero(caps[k] > 0.0) for k in range(n + 1)
        )
        return cls(
            energy=energy,
            self_term=self_term,
            cross=cross,
            caps=caps,
            counts=counts,
            units=units,
            support_index=support_index,
            same_as_prev=same_as_prev,
        )
