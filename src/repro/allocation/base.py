"""Allocator interface and the allocation problem (Eq. 2).

An allocation problem fixes, for each household, a window, a duration and a
power rating; an allocator places one duration-length block per household
inside its window so as to minimize the neighborhood cost
``kappa = sum_h P_h(l_h)``.
"""

from __future__ import annotations

import abc
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

import numpy as np

from ..core.intervals import Interval
from ..core.types import (
    AllocationMap,
    HouseholdId,
    HouseholdType,
    Report,
)
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .arrays import CompiledProblem


@dataclass(frozen=True)
class AllocationItem:
    """One household's scheduling request inside an allocation problem."""

    household_id: HouseholdId
    window: Interval
    duration: int
    rating_kw: float

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")
        if self.window.length < self.duration:
            raise ValueError(
                f"window {self.window} cannot fit duration {self.duration}"
            )
        if self.rating_kw <= 0:
            raise ValueError(f"rating must be positive, got {self.rating_kw}")

    @property
    def n_placements(self) -> int:
        """Number of feasible begin slots (``slack + 1``)."""
        return self.window.length - self.duration + 1

    @property
    def energy_kwh(self) -> float:
        """Energy this household consumes regardless of placement."""
        return self.duration * self.rating_kw

    def placements(self) -> Tuple[Interval, ...]:
        """All feasible duration-length blocks, earliest first."""
        return tuple(
            Interval(start, start + self.duration)
            for start in range(self.window.start, self.window.end - self.duration + 1)
        )


@dataclass(frozen=True)
class AllocationProblem:
    """A day's scheduling instance: requests plus the pricing model."""

    items: Tuple[AllocationItem, ...]
    pricing: PricingModel

    def __post_init__(self) -> None:
        ids = [item.household_id for item in self.items]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate household ids in allocation problem")

    @classmethod
    def from_reports(
        cls,
        reports: Mapping[HouseholdId, Report],
        types: Mapping[HouseholdId, HouseholdType],
        pricing: PricingModel,
    ) -> "AllocationProblem":
        """Build the day's problem from household reports."""
        items = tuple(
            AllocationItem(
                household_id=hid,
                window=report.preference.window,
                duration=report.preference.duration,
                rating_kw=types[hid].rating_kw,
            )
            for hid, report in reports.items()
        )
        return cls(items=items, pricing=pricing)

    def __len__(self) -> int:
        return len(self.items)

    def cost(self, allocation: AllocationMap) -> float:
        """Neighborhood cost ``kappa`` of an allocation for this problem."""
        profile = LoadProfile.from_intervals(
            (allocation[item.household_id], item.rating_kw) for item in self.items
        )
        return self.pricing.cost(profile)

    def is_feasible(self, allocation: AllocationMap) -> bool:
        """True when every item got a valid block inside its window."""
        for item in self.items:
            placed = allocation.get(item.household_id)
            if placed is None:
                return False
            if placed.length != item.duration or not item.window.contains(placed):
                return False
        return True

    def search_space_size(self) -> int:
        """Product of per-household placement counts (Eq. 2 feasible set)."""
        size = 1
        for item in self.items:
            size *= item.n_placements
        return size


@dataclass
class AllocationResult:
    """An allocator's answer plus solve diagnostics.

    ``served_tier``/``fallback_trail`` are filled in by
    :class:`repro.robustness.fallback.FallbackAllocator`: the tier index
    that produced this allocation (0 = primary solver) and the record of
    every tier attempt that led to it.

    ``root_bound_matched`` is set by the exact solver when its root
    relaxation certified the incumbent — either immediately (the reported
    ``nodes_explored`` is then 1, the root evaluation) or as soon as the
    search found an incumbent meeting the root bound.

    ``kernel_backend`` records which :mod:`repro.kernels` build ran the
    solver's hot loop (``"numba"`` or ``"python"``; empty for allocators
    that have no kernelized loop).  Diagnostic only — both builds are
    bit-identical — but essential provenance for benchmark entries.

    ``cache_hit`` is provenance from
    :class:`repro.allocation.cache.AllocationCache`: ``True`` when this
    result was replayed from the memoization store instead of solved.
    The payload of a hit is byte-identical to the stored solve; only
    ``wall_time_s`` (the lookup time) and this flag differ.
    """

    allocation: AllocationMap
    cost: float
    wall_time_s: float
    proven_optimal: bool = False
    nodes_explored: int = 0
    lower_bound: Optional[float] = None
    allocator_name: str = ""
    served_tier: int = 0
    fallback_trail: Tuple = ()
    root_bound_matched: bool = False
    kernel_backend: str = ""
    cache_hit: bool = False


@dataclass
class ColumnarAllocationResult:
    """An allocator's answer on the columnar path: begin slots as a vector.

    ``starts[i]`` is the begin slot of the household at row ``i`` of the
    compiled problem; no per-household ``Interval`` objects are built.
    :meth:`to_result` bridges back to :class:`AllocationResult` when a
    consumer needs the dict-of-intervals form.
    """

    starts: np.ndarray
    cost: float
    wall_time_s: float
    proven_optimal: bool = False
    nodes_explored: int = 0
    lower_bound: Optional[float] = None
    allocator_name: str = ""
    served_tier: int = 0
    fallback_trail: Tuple = ()
    root_bound_matched: bool = False
    kernel_backend: str = ""
    cache_hit: bool = False

    def to_result(self, compiled: "CompiledProblem") -> AllocationResult:
        """Materialize the dict-of-intervals :class:`AllocationResult`."""
        durations = compiled.duration.tolist()
        starts = self.starts.tolist()
        allocation = {
            hid: Interval(s, s + v)
            for hid, s, v in zip(compiled.ids, starts, durations)
        }
        return AllocationResult(
            allocation=allocation,
            cost=self.cost,
            wall_time_s=self.wall_time_s,
            proven_optimal=self.proven_optimal,
            nodes_explored=self.nodes_explored,
            lower_bound=self.lower_bound,
            allocator_name=self.allocator_name,
            served_tier=self.served_tier,
            fallback_trail=self.fallback_trail,
            root_bound_matched=self.root_bound_matched,
            kernel_backend=self.kernel_backend,
            cache_hit=self.cache_hit,
        )


def problem_from_compiled(
    compiled: "CompiledProblem", pricing: PricingModel
) -> AllocationProblem:
    """Materialize an object :class:`AllocationProblem` from compiled arrays.

    The fallback bridge for allocators without a native columnar kernel:
    the objects are rebuilt in row order, so ``problem.items[i]`` is the
    household at compiled row ``i``.
    """
    items = tuple(
        AllocationItem(
            household_id=hid,
            window=Interval(a, b),
            duration=v,
            rating_kw=r,
        )
        for hid, a, b, v, r in zip(
            compiled.ids,
            compiled.win_start.tolist(),
            compiled.win_end.tolist(),
            compiled.duration.tolist(),
            compiled.rating.tolist(),
        )
    )
    return AllocationProblem(items=items, pricing=pricing)


class Allocator(abc.ABC):
    """Strategy interface for solving :class:`AllocationProblem`."""

    #: Human-readable name used in experiment output.
    name: str = "allocator"

    @abc.abstractmethod
    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        """Produce a feasible allocation for ``problem``.

        Args:
            problem: The day's scheduling instance.
            rng: Randomness source for tie-breaking; a fresh deterministic
                generator is used when omitted.
        """

    def solve_columnar(
        self,
        compiled: "CompiledProblem",
        pricing: PricingModel,
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """Solve a compiled (columnar) instance.

        The default bridges through the object path — materialize the
        ``AllocationProblem``, call :meth:`solve`, and gather the begin
        slots back into a vector — so every allocator works in columnar
        mode at paper sizes.  Allocators with a native array kernel (the
        greedy one) override this to skip the objects entirely.
        """
        problem = problem_from_compiled(compiled, pricing)
        result = self.solve(problem, rng)
        starts = np.fromiter(
            (result.allocation[hid].start for hid in compiled.ids),
            dtype=np.intp,
            count=len(compiled.ids),
        )
        return ColumnarAllocationResult(
            starts=starts,
            cost=result.cost,
            wall_time_s=result.wall_time_s,
            proven_optimal=result.proven_optimal,
            nodes_explored=result.nodes_explored,
            lower_bound=result.lower_bound,
            allocator_name=result.allocator_name,
            served_tier=result.served_tier,
            fallback_trail=result.fallback_trail,
            root_bound_matched=result.root_bound_matched,
            kernel_backend=result.kernel_backend,
            cache_hit=result.cache_hit,
        )

    def cache_token(self) -> Optional[str]:
        """Identity string for allocation memoization, or ``None``.

        A non-``None`` token asserts that a solve is a pure function of
        ``(compiled problem, initial rng state)`` — same inputs, byte-
        identical result — and must encode every constructor parameter
        that changes the answer (e.g. the greedy processing order).
        ``None`` (the default) marks the allocator uncacheable, so
        :class:`repro.allocation.cache.AllocationCache` passes its solves
        straight through.
        """
        return None

    def result_cacheable(self, result) -> bool:
        """Whether one concrete ``result`` may enter the memoization store.

        Allocators with anytime behaviour (wall-clock time limits)
        override this to admit only results that are pure functions of
        the inputs — e.g. the exact solver stores proven-optimal answers
        and refuses deadline-truncated incumbents.
        """
        return True

    def _finish(
        self,
        problem: AllocationProblem,
        allocation: AllocationMap,
        started_at: float,
        proven_optimal: bool = False,
        nodes_explored: int = 0,
        lower_bound: Optional[float] = None,
        root_bound_matched: bool = False,
        kernel_backend: str = "",
    ) -> AllocationResult:
        """Assemble a result, validating feasibility."""
        if not problem.is_feasible(allocation):
            raise RuntimeError(
                f"{self.name} produced an infeasible allocation: {allocation}"
            )
        return AllocationResult(
            allocation=allocation,
            cost=problem.cost(allocation),
            wall_time_s=time.perf_counter() - started_at,
            proven_optimal=proven_optimal,
            nodes_explored=nodes_explored,
            lower_bound=lower_bound,
            allocator_name=self.name,
            root_bound_matched=root_bound_matched,
            kernel_backend=kernel_backend,
        )
