"""Digest-keyed allocation memoization (the study-sweep replay cache).

Figure sweeps revisit identical day instances: fig4/5/6 share seeds
across mechanism variants, ablations re-run the same days under one
changed knob, and a warm re-run of a whole study repeats every solve
verbatim.  :class:`AllocationCache` memoizes columnar (and object-path)
solves under a stable content key so those replays skip the allocator
entirely.

The key has two layers:

* :func:`problem_digest` — a SHA-256 over the :class:`CompiledProblem`'s
  canonical arrays (ids, window bounds, durations as little-endian
  ``int64``, ratings as little-endian ``float64``, sigma).  It depends
  only on instance *content*, so the same problem digests identically in
  the parent, in a spawned or forked worker, and under either
  ``ENKI_KERNELS`` backend (pinned by ``tests/test_batch_equivalence.py``).
* The full cache key — digest plus the allocator's
  :meth:`~repro.allocation.base.Allocator.cache_token`, the active
  kernel backend, and a hash of the rng's initial state.  Backends are
  bit-identical, but keeping them apart makes every hit trivially
  byte-faithful to what *this* configuration would have computed.

Allocators opt in via ``cache_token()`` (``None`` = uncacheable, the
default) and may veto individual results via ``result_cacheable`` — the
branch-and-bound solver stores proven-optimal answers only, because a
deadline-truncated incumbent is a function of the wall clock, not of the
instance.  Hits return a fresh result object sharing the stored arrays,
with ``cache_hit=True`` and the lookup time as ``wall_time_s``; every
other field is byte-identical to the original solve.

The in-memory store is a bounded LRU.  An optional on-disk ``directory``
adds cross-process reuse: entries are pickled under their key with an
atomic rename, so parallel study workers (which each hold their own
in-memory LRU) share warm solves through the filesystem.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import tempfile
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Optional, Union

import numpy as np

from ..kernels import active_backend
from ..pricing.base import PricingModel
from .arrays import CompiledProblem, compile_problem
from .base import (
    AllocationProblem,
    AllocationResult,
    Allocator,
    ColumnarAllocationResult,
)


def problem_digest(compiled: CompiledProblem) -> str:
    """Stable SHA-256 hex digest of a compiled instance's content.

    Canonical form: row count, the id vector, the four defining columns
    with forced little-endian width (``<i8`` for the index columns,
    ``<f8`` for ratings — so the digest is identical across platforms
    whatever ``np.intp`` is), and sigma.  Everything else on a
    :class:`CompiledProblem` is derived from these.
    """
    h = hashlib.sha256()
    h.update(str(len(compiled)).encode("ascii"))
    for hid in compiled.ids:
        h.update(b"\x00")
        h.update(str(hid).encode("utf-8"))
    for column in (compiled.win_start, compiled.win_end, compiled.duration):
        h.update(np.ascontiguousarray(column, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(compiled.rating, dtype="<f8").tobytes())
    h.update(repr(compiled.sigma).encode("ascii"))
    return h.hexdigest()


def _rng_token(rng: Optional[random.Random]) -> str:
    """Hash of the rng's *initial* state (the part of the key the solve reads)."""
    if rng is None:
        return "none"
    return hashlib.sha256(repr(rng.getstate()).encode("ascii")).hexdigest()[:16]


#: Either result representation the cache can hold.
CachedResult = Union[AllocationResult, ColumnarAllocationResult]


class AllocationCache:
    """Bounded LRU (plus optional on-disk store) of allocation results.

    Args:
        capacity: Maximum in-memory entries; the least recently used
            entry is evicted beyond it.
        directory: Optional directory for the cross-process store.  Each
            entry is one pickle named by its key, written with an atomic
            rename; missing directory is created on first store.

    Thread/process notes: the cache itself is process-local.  Pickling a
    cache (shipping it inside a study task to a pool worker) transports
    the configuration but *not* the in-memory entries — workers warm
    their own LRU, and share solves only through ``directory``.
    """

    def __init__(self, capacity: int = 1024, directory: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = os.fspath(directory) if directory is not None else None
        self._memory: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._stats = {"hits": 0, "misses": 0, "bypassed": 0, "stored": 0}

    # -- introspection ------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters: ``hits``/``misses``/``bypassed`` lookups, ``stored`` puts."""
        return dict(self._stats)

    def __len__(self) -> int:
        return len(self._memory)

    # -- keying -------------------------------------------------------

    def key_for(
        self,
        allocator: Allocator,
        compiled: CompiledProblem,
        rng: Optional[random.Random],
        path: str = "col",
    ) -> Optional[str]:
        """The full cache key, or ``None`` when the allocator is uncacheable."""
        token = allocator.cache_token()
        if token is None:
            return None
        return "-".join(
            (
                path,
                problem_digest(compiled),
                hashlib.sha256(token.encode("utf-8")).hexdigest()[:16],
                active_backend(),
                _rng_token(rng),
            )
        )

    # -- the memoized solve entry points ------------------------------

    def solve_columnar(
        self,
        allocator: Allocator,
        compiled: CompiledProblem,
        pricing: PricingModel,
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """``allocator.solve_columnar`` through the cache."""
        key = self.key_for(allocator, compiled, rng, path="col")
        if key is None:
            self._stats["bypassed"] += 1
            return allocator.solve_columnar(compiled, pricing, rng)
        started_at = time.perf_counter()
        stored = self._get(key)
        if stored is not None:
            self._stats["hits"] += 1
            return replace(
                stored,
                cache_hit=True,
                wall_time_s=time.perf_counter() - started_at,
            )
        self._stats["misses"] += 1
        result = allocator.solve_columnar(compiled, pricing, rng)
        if allocator.result_cacheable(result):
            self._put(key, result)
        return result

    def solve(
        self,
        allocator: Allocator,
        problem: AllocationProblem,
        rng: Optional[random.Random] = None,
    ) -> AllocationResult:
        """``allocator.solve`` through the cache (the object-path twin).

        Keys through the problem's compiled view (shared with the
        solvers via :func:`compile_problem`), under a distinct namespace
        from columnar entries — the two result shapes never alias.
        """
        key = self.key_for(allocator, compile_problem(problem), rng, path="obj")
        if key is None:
            self._stats["bypassed"] += 1
            return allocator.solve(problem, rng)
        started_at = time.perf_counter()
        stored = self._get(key)
        if stored is not None:
            self._stats["hits"] += 1
            return replace(
                stored,
                cache_hit=True,
                wall_time_s=time.perf_counter() - started_at,
            )
        self._stats["misses"] += 1
        result = allocator.solve(problem, rng)
        if allocator.result_cacheable(result):
            self._put(key, result)
        return result

    # -- storage ------------------------------------------------------

    def _get(self, key: str) -> Optional[CachedResult]:
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            return entry
        if self.directory is not None:
            path = os.path.join(self.directory, f"{key}.pkl")
            try:
                with open(path, "rb") as handle:
                    entry = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                return None
            self._remember(key, entry)
            return entry
        return None

    def _put(self, key: str, result: CachedResult) -> None:
        self._remember(key, result)
        self._stats["stored"] += 1
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, os.path.join(self.directory, f"{key}.pkl"))
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    def _remember(self, key: str, result: CachedResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # -- transport ----------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Ship configuration and counters, never the entry payloads."""
        return {
            "capacity": self.capacity,
            "directory": self.directory,
            "_stats": dict(self._stats),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.capacity = state["capacity"]
        self.directory = state["directory"]
        self._stats = dict(state["_stats"])
        self._memory = OrderedDict()
