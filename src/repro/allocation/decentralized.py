"""Decentralized scheduling via asynchronous best-response dynamics.

The paper's conclusion names a decentralized mechanism as future work; the
natural baseline is the game-theoretic scheduler of Mohsenian-Rad et al.
(the paper's [6]): households take turns moving their own block to the
placement that minimizes their bill given everyone else's current
schedule.  Under usage-proportional billing of a convex cost, each
household's bill is minimized by minimizing its own marginal contribution
to the neighborhood cost, so the dynamics coincide with coordinate descent
on ``kappa`` and converge to a pure Nash equilibrium (the paper of [6]
proves this for exactly this class of games; termination here follows
because each move strictly lowers the bounded-below total cost).

Unlike :class:`~repro.allocation.local_search.LocalSearchAllocator` (a
centralized heuristic with restarts), this allocator models the *protocol*:
no restarts, households move one at a time from an uncoordinated starting
schedule, and the result reports how many rounds the neighborhood needed
to converge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap
from ..pricing.quadratic import QuadraticPricing
from .base import AllocationProblem, AllocationResult, Allocator


@dataclass
class ConvergenceStats:
    """How the best-response dynamics played out."""

    rounds: int
    moves: int
    converged: bool


class BestResponseDynamicsAllocator(Allocator):
    """Asynchronous best-response dynamics from an uncoordinated start.

    Args:
        max_rounds: Safety cap on full passes over the households; the
            dynamics converge long before this on realistic instances.
        start: Initial schedule — ``"preferred"`` (everyone at their window
            start, the uncoordinated outcome) or ``"random"``.
        seed: Move-order randomness when ``solve`` gets no rng.
    """

    name = "best-response"

    def __init__(
        self,
        max_rounds: int = 200,
        start: str = "preferred",
        seed: Optional[int] = None,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if start not in ("preferred", "random"):
            raise ValueError(f"start must be 'preferred' or 'random', got {start!r}")
        self.max_rounds = max_rounds
        self.start = start
        self._seed = seed
        #: Stats of the most recent solve (for experiments and tests).
        self.last_stats: Optional[ConvergenceStats] = None

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        import time

        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        allocation: AllocationMap = {}
        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        for item in problem.items:
            if self.start == "preferred":
                begin = item.window.start
            else:
                begin = rng.randrange(
                    item.window.start, item.window.end - item.duration + 1
                )
            placed = Interval(begin, begin + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw

        quadratic = isinstance(problem.pricing, QuadraticPricing)
        items = list(problem.items)
        moves = 0
        converged = False
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            rng.shuffle(items)
            any_move = False
            for item in items:
                placed = allocation[item.household_id]
                loads[placed.start:placed.end] -= item.rating_kw

                if quadratic:
                    window_loads = loads[item.window.start:item.window.end]
                    sums = np.convolve(
                        window_loads, np.ones(item.duration), mode="valid"
                    )
                    best_idx = int(np.argmin(sums))
                    current_idx = placed.start - item.window.start
                    if sums[best_idx] < sums[current_idx] - 1e-12:
                        placed = Interval(
                            item.window.start + best_idx,
                            item.window.start + best_idx + item.duration,
                        )
                        any_move = True
                        moves += 1
                else:
                    best_start, best_delta = placed.start, self._delta(
                        problem, loads, placed.start, item
                    )
                    for begin in range(
                        item.window.start, item.window.end - item.duration + 1
                    ):
                        delta = self._delta(problem, loads, begin, item)
                        if delta < best_delta - 1e-12:
                            best_start, best_delta = begin, delta
                    if best_start != placed.start:
                        placed = Interval(best_start, best_start + item.duration)
                        any_move = True
                        moves += 1

                allocation[item.household_id] = placed
                loads[placed.start:placed.end] += item.rating_kw

            if not any_move:
                converged = True
                break

        self.last_stats = ConvergenceStats(
            rounds=rounds, moves=moves, converged=converged
        )
        return self._finish(problem, allocation, started_at)

    @staticmethod
    def _delta(problem: AllocationProblem, loads: np.ndarray, begin: int, item) -> float:
        return sum(
            problem.pricing.marginal_cost(float(loads[h]), item.rating_kw)
            for h in range(begin, begin + item.duration)
        )


def is_nash_equilibrium(
    problem: AllocationProblem, allocation: AllocationMap, tolerance: float = 1e-9
) -> bool:
    """True when no household can lower its marginal cost unilaterally."""
    loads = np.zeros(HOURS_PER_DAY, dtype=float)
    for item in problem.items:
        placed = allocation[item.household_id]
        loads[placed.start:placed.end] += item.rating_kw

    for item in problem.items:
        placed = allocation[item.household_id]
        loads[placed.start:placed.end] -= item.rating_kw
        current = sum(
            problem.pricing.marginal_cost(float(loads[h]), item.rating_kw)
            for h in range(placed.start, placed.end)
        )
        for begin in range(item.window.start, item.window.end - item.duration + 1):
            candidate = sum(
                problem.pricing.marginal_cost(float(loads[h]), item.rating_kw)
                for h in range(begin, begin + item.duration)
            )
            if candidate < current - tolerance:
                loads[placed.start:placed.end] += item.rating_kw
                return False
        loads[placed.start:placed.end] += item.rating_kw
    return True
