"""Exhaustive allocator: brute-force ground truth for small instances.

Enumerates the full Cartesian product of feasible placements (Eq. 2's
search space).  Used in tests to certify the branch-and-bound solver and in
examples to visualize the Section IV worked examples.
"""

from __future__ import annotations

import itertools
import random
import time
from typing import Optional

import numpy as np

from ..core.intervals import HOURS_PER_DAY
from ..core.types import AllocationMap
from ..pricing.quadratic import QuadraticPricing
from .base import AllocationProblem, AllocationResult, Allocator

#: Refuse to enumerate spaces larger than this (protects test runs).
DEFAULT_SPACE_LIMIT = 2_000_000


class ExhaustiveAllocator(Allocator):
    """Complete enumeration of Eq. 2's feasible set."""

    name = "exhaustive"

    def __init__(self, space_limit: int = DEFAULT_SPACE_LIMIT) -> None:
        self.space_limit = space_limit

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        space = problem.search_space_size()
        if space > self.space_limit:
            raise ValueError(
                f"search space {space} exceeds exhaustive limit {self.space_limit}; "
                "use the branch-and-bound allocator instead"
            )
        if not problem.items:
            return self._finish(problem, {}, started_at, proven_optimal=True)

        placements = [item.placements() for item in problem.items]
        ratings = [item.rating_kw for item in problem.items]
        pricing = problem.pricing

        best_cost = float("inf")
        best_choice = None
        nodes = 0
        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        for choice in itertools.product(*placements):
            nodes += 1
            loads[:] = 0.0
            for interval, rating in zip(choice, ratings):
                loads[interval.start:interval.end] += rating
            if isinstance(pricing, QuadraticPricing):
                cost = pricing.sigma * float(np.dot(loads, loads))
            else:
                cost = sum(pricing.hourly_cost(float(l)) for l in loads)
            if cost < best_cost:
                best_cost = cost
                best_choice = choice

        allocation: AllocationMap = {
            item.household_id: interval
            for item, interval in zip(problem.items, best_choice)
        }
        return self._finish(
            problem, allocation, started_at, proven_optimal=True, nodes_explored=nodes
        )
