"""Enki's greedy allocator (Section IV-C).

Households are handled in order of *increasing* predicted flexibility
(Eq. 4 computed from reports, assuming truthfulness), breaking ties
randomly.  Each household in turn receives the placement inside its window
that minimally increases the neighborhood cost given the blocks placed so
far.  One pass, O(n log n + n * W * v) — the tractability half of the
paper's Figure 6 comparison.

Two solve paths share the placement logic:

* :meth:`GreedyFlexibilityAllocator.solve` — the object path over
  ``AllocationItem``s, with a fresh prefix-sum rebuild per placement.
* :meth:`GreedyFlexibilityAllocator.solve_columnar` — the large-n kernel:
  one ``flexibility_vector`` call, one ``np.lexsort`` with vectorized
  random tie-break keys, then the whole ordered-placement sweep in
  :func:`repro.kernels.placement.place_day` — numba-compiled when the
  kernel registry selects it, the bit-identical pure-python reference
  otherwise, with the backend that ran recorded on the result.  On the
  paper's exact-binary ratings every partial sum is exact, so the two
  paths pick identical placements (pinned by
  ``tests/test_columnar_equivalence.py``).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.flexibility import flexibility_vector
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap, HouseholdId
from ..kernels import active_backend
from ..kernels.placement import PlacementScratch, place_batch, place_day
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .arrays import CompiledProblem, compile_problem
from .base import (
    AllocationProblem,
    AllocationResult,
    Allocator,
    ColumnarAllocationResult,
)


def predicted_flexibility_for_problem(
    problem: AllocationProblem,
    compiled: Optional[CompiledProblem] = None,
) -> Dict[HouseholdId, float]:
    """Predicted flexibility (Eq. 4) of each item from the problem's windows.

    Reuses the problem's :class:`CompiledProblem` start/end/duration
    arrays (compiled once per problem object and shared with the solvers)
    instead of rebuilding them with per-item ``np.fromiter`` passes.
    """
    if compiled is None:
        compiled = compile_problem(problem)
    if len(compiled) == 0:
        return {}
    scores = flexibility_vector(
        compiled.win_start, compiled.win_end, compiled.duration
    )
    return dict(zip(compiled.ids, scores.tolist()))


class GreedyFlexibilityAllocator(Allocator):
    """The Enki greedy allocation of Section IV-C.

    Args:
        ascending: Process least-flexible households first (the paper's
            order).  The ordering ablation flips this to show why the
            inflexible-first order matters: rigid households have few
            choices, so fixing them early lets flexible ones fill valleys.
        seed: Tie-break seed used when ``solve`` is not handed an rng.
    """

    name = "enki-greedy"

    def __init__(self, ascending: bool = True, seed: Optional[int] = None) -> None:
        self.ascending = ascending
        self._seed = seed

    def cache_token(self) -> str:
        """Greedy solves are pure in (problem, rng): memoizable.

        The token pins the processing order and the fallback tie-break
        seed (consulted only when a solve is not handed an rng) — the two
        constructor knobs that change the answer.
        """
        return f"enki-greedy:asc={self.ascending}:seed={self._seed}"

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        compiled = compile_problem(problem)
        flexibility = predicted_flexibility_for_problem(problem, compiled)
        # Random tie-breaking via a per-household random key, then flexibility.
        order = sorted(
            problem.items,
            key=lambda item: (
                flexibility[item.household_id]
                if self.ascending
                else -flexibility[item.household_id],
                rng.random(),
            ),
        )

        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        window_prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        allocation: AllocationMap = {}
        quadratic = isinstance(problem.pricing, QuadraticPricing)
        for item in order:
            best_start = self._best_start(
                problem, compiled, loads, prefix, item, quadratic, window_prefix
            )
            placed = Interval(best_start, best_start + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw
            np.cumsum(loads, out=prefix[1:])

        return self._finish(problem, allocation, started_at)

    def solve_columnar(
        self,
        compiled: CompiledProblem,
        pricing: PricingModel,
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """The large-n greedy kernel: no per-household objects.

        Flexibility scores come from one :func:`flexibility_vector` call;
        the processing order is one stable ``np.lexsort`` over
        ``(tie_key, flexibility)`` with tie keys drawn in row order from
        ``rng`` (the same draw sequence the object path's ``sorted`` key
        function consumes); the ordered-placement sweep itself — candidate
        argmin plus O(24) incremental load/prefix updates per placement —
        runs in :func:`repro.kernels.placement.place_day`, compiled or
        pure-python per the kernel registry, bit-identical either way.
        """
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)
        n = len(compiled)
        starts_out = np.zeros(n, dtype=np.intp)
        if n == 0:
            return ColumnarAllocationResult(
                starts=starts_out,
                cost=pricing.cost(LoadProfile()),
                wall_time_s=time.perf_counter() - started_at,
                allocator_name=self.name,
                kernel_backend=active_backend(),
            )

        flex = flexibility_vector(
            compiled.win_start, compiled.win_end, compiled.duration
        )
        keys = np.fromiter(
            (rng.random() for _ in range(n)), dtype=float, count=n
        )
        order = np.lexsort((keys, flex if self.ascending else -flex))

        win_start, win_end, duration, rating = compiled.kernel_columns()
        backend = place_day(
            order,
            win_start,
            win_end,
            duration,
            rating,
            pricing,
            starts_out,
            PlacementScratch(),
        )

        # Cost through the same difference-array builder the object path's
        # ``problem.cost`` uses, rows in compiled order, so the float
        # accumulation sequence matches bit for bit.
        profile = LoadProfile.from_arrays(
            starts_out, starts_out + compiled.duration, compiled.rating
        )
        return ColumnarAllocationResult(
            starts=starts_out,
            cost=pricing.cost(profile),
            wall_time_s=time.perf_counter() - started_at,
            allocator_name=self.name,
            kernel_backend=backend,
        )

    def solve_columnar_batch(
        self,
        compiled_days: Sequence[CompiledProblem],
        pricing: PricingModel,
        rngs: Sequence[Optional[random.Random]],
    ) -> List[ColumnarAllocationResult]:
        """Fused greedy over a batch of days: one kernel call for all D.

        Per-day work that is inherently day-local stays per-day and in
        day order — flexibility scores (coverage is a day-local
        reduction) and tie keys (each day's rng draws exactly the
        sequence :meth:`solve_columnar` would) — then one global stable
        ``np.lexsort`` with the day index as the most-significant key
        reproduces every day's within-day processing order, and
        :func:`repro.kernels.placement.place_batch` runs all D
        ordered-placement sweeps in a single kernel invocation.  Results
        are bit-identical to D separate :meth:`solve_columnar` calls
        (pinned by ``tests/test_batch_equivalence.py``); each day's
        ``wall_time_s`` is the batch total apportioned evenly, which is
        why equivalence checks exclude that field.
        """
        started_at = time.perf_counter()
        n_days = len(compiled_days)
        if len(rngs) != n_days:
            raise ValueError(
                f"got {len(rngs)} rngs for {n_days} days; need one per day"
            )
        lengths = np.array([len(c) for c in compiled_days], dtype=np.intp)
        offsets = np.zeros(n_days + 1, dtype=np.intp)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        starts_out = np.zeros(total, dtype=np.intp)

        flex_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        for compiled, rng in zip(compiled_days, rngs):
            n = len(compiled)
            if n == 0:
                # Mirror solve_columnar's empty-day early return: no
                # flexibility pass (it rejects empty coverage) and zero
                # rng draws.
                continue
            rng = rng if rng is not None else random.Random(self._seed)
            flex_parts.append(
                flexibility_vector(
                    compiled.win_start, compiled.win_end, compiled.duration
                )
            )
            key_parts.append(
                np.fromiter((rng.random() for _ in range(n)), dtype=float, count=n)
            )
        if total:
            flex = np.concatenate(flex_parts)
            keys = np.concatenate(key_parts)
            day_idx = np.repeat(np.arange(n_days, dtype=np.intp), lengths)
            # Day most-significant, then the per-day (flexibility, tie-key)
            # pair: lexsort is stable, so rows of day k land in exactly the
            # order the per-day lexsort would produce.
            order = np.lexsort((keys, flex if self.ascending else -flex, day_idx))
            win_start = np.concatenate([c.win_start for c in compiled_days])
            win_end = np.concatenate([c.win_end for c in compiled_days])
            duration = np.concatenate([c.duration for c in compiled_days])
            rating = np.concatenate([c.rating for c in compiled_days])
            backend = place_batch(
                offsets,
                order,
                win_start,
                win_end,
                duration,
                rating,
                pricing,
                starts_out,
                PlacementScratch(),
            )
        else:
            backend = active_backend()

        elapsed = time.perf_counter() - started_at
        per_day_s = elapsed / n_days if n_days else elapsed
        results: List[ColumnarAllocationResult] = []
        for k, compiled in enumerate(compiled_days):
            day_starts = starts_out[offsets[k]:offsets[k + 1]].copy()
            if len(compiled) == 0:
                cost = pricing.cost(LoadProfile())
            else:
                profile = LoadProfile.from_arrays(
                    day_starts, day_starts + compiled.duration, compiled.rating
                )
                cost = pricing.cost(profile)
            results.append(
                ColumnarAllocationResult(
                    starts=day_starts,
                    cost=cost,
                    wall_time_s=per_day_s,
                    allocator_name=self.name,
                    kernel_backend=backend,
                )
            )
        return results

    @staticmethod
    def _best_start(
        problem: AllocationProblem,
        compiled: CompiledProblem,
        loads: np.ndarray,
        prefix: np.ndarray,
        item,
        quadratic: bool,
        window_prefix: np.ndarray,
    ) -> int:
        """Begin slot minimizing the marginal cost of this item's block.

        Under quadratic pricing the marginal cost of a block is, up to a
        placement-independent constant, proportional to the sum of existing
        loads under the block; the compiled begin-candidate index vectors
        turn the maintained prefix sum into every candidate window's sum in
        one vectorized subtraction, reused across placements instead of
        re-convolving per item.  Other pricing models get the same
        sliding-window treatment over batched per-hour marginal costs
        (which depend only on that hour's load), accumulated into the
        caller's reused ``window_prefix`` scratch row (entry 0 stays 0)
        instead of a per-item ``np.concatenate`` — so no candidate rescans
        its hours and no placement allocates.
        """
        a, b, v = item.window.start, item.window.end, item.duration
        if quadratic:
            # Window sum of existing loads for every start s: prefix[s+v]-prefix[s].
            sums = compiled.block_sums(prefix, compiled.index_of[item.household_id])
            return a + int(np.argmin(sums))

        width = b - a
        hourly = problem.pricing.marginal_cost_batch(loads[a:b], item.rating_kw)
        np.cumsum(hourly, out=window_prefix[1:width + 1])
        deltas = window_prefix[v:width + 1] - window_prefix[:width + 1 - v]
        return a + int(np.argmin(deltas))
