"""Enki's greedy allocator (Section IV-C).

Households are handled in order of *increasing* predicted flexibility
(Eq. 4 computed from reports, assuming truthfulness), breaking ties
randomly.  Each household in turn receives the placement inside its window
that minimally increases the neighborhood cost given the blocks placed so
far.  One pass, O(n log n + n * W * v) — the tractability half of the
paper's Figure 6 comparison.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.flexibility import flexibility_score, window_coverage
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap, HouseholdId, Preference
from ..pricing.quadratic import QuadraticPricing
from .base import AllocationProblem, AllocationResult, Allocator


def predicted_flexibility_for_problem(
    problem: AllocationProblem,
) -> Dict[HouseholdId, float]:
    """Predicted flexibility (Eq. 4) of each item from the problem's windows."""
    windows = {item.household_id: item.window for item in problem.items}
    coverage = window_coverage(windows)
    return {
        item.household_id: flexibility_score(
            Preference(item.window, item.duration), coverage
        )
        for item in problem.items
    }


class GreedyFlexibilityAllocator(Allocator):
    """The Enki greedy allocation of Section IV-C.

    Args:
        ascending: Process least-flexible households first (the paper's
            order).  The ordering ablation flips this to show why the
            inflexible-first order matters: rigid households have few
            choices, so fixing them early lets flexible ones fill valleys.
        seed: Tie-break seed used when ``solve`` is not handed an rng.
    """

    name = "enki-greedy"

    def __init__(self, ascending: bool = True, seed: Optional[int] = None) -> None:
        self.ascending = ascending
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        flexibility = predicted_flexibility_for_problem(problem)
        # Random tie-breaking via a per-household random key, then flexibility.
        order = sorted(
            problem.items,
            key=lambda item: (
                flexibility[item.household_id]
                if self.ascending
                else -flexibility[item.household_id],
                rng.random(),
            ),
        )

        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        allocation: AllocationMap = {}
        quadratic = isinstance(problem.pricing, QuadraticPricing)
        for item in order:
            best_start = self._best_start(problem, loads, item, quadratic)
            placed = Interval(best_start, best_start + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw

        return self._finish(problem, allocation, started_at)

    @staticmethod
    def _best_start(
        problem: AllocationProblem,
        loads: np.ndarray,
        item,
        quadratic: bool,
    ) -> int:
        """Begin slot minimizing the marginal cost of this item's block.

        Under quadratic pricing the marginal cost of a block is, up to a
        placement-independent constant, proportional to the sum of existing
        loads under the block, so a sliding-window sum finds the argmin in
        O(W).  Other pricing models fall back to explicit evaluation.
        """
        starts = range(item.window.start, item.window.end - item.duration + 1)
        if quadratic:
            window_loads = loads[item.window.start:item.window.end]
            sums = np.convolve(window_loads, np.ones(item.duration), mode="valid")
            return item.window.start + int(np.argmin(sums))

        best_start, best_delta = item.window.start, float("inf")
        for start in starts:
            delta = sum(
                problem.pricing.marginal_cost(loads[h], item.rating_kw)
                for h in range(start, start + item.duration)
            )
            if delta < best_delta:
                best_start, best_delta = start, delta
        return best_start
