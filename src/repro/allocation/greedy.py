"""Enki's greedy allocator (Section IV-C).

Households are handled in order of *increasing* predicted flexibility
(Eq. 4 computed from reports, assuming truthfulness), breaking ties
randomly.  Each household in turn receives the placement inside its window
that minimally increases the neighborhood cost given the blocks placed so
far.  One pass, O(n log n + n * W * v) — the tractability half of the
paper's Figure 6 comparison.

Two solve paths share the placement logic:

* :meth:`GreedyFlexibilityAllocator.solve` — the object path over
  ``AllocationItem``s, with a fresh prefix-sum rebuild per placement.
* :meth:`GreedyFlexibilityAllocator.solve_columnar` — the large-n kernel:
  one ``flexibility_vector`` call, one ``np.lexsort`` with vectorized
  random tie-break keys, and O(duration) incremental prefix/load updates
  per placement instead of a full ``np.cumsum``.  On the paper's
  exact-binary ratings every partial sum is exact, so the two paths pick
  identical placements (pinned by ``tests/test_columnar_equivalence.py``).
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional

import numpy as np

from ..core.flexibility import flexibility_vector
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap, HouseholdId
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .arrays import CompiledProblem, compile_problem
from .base import (
    AllocationProblem,
    AllocationResult,
    Allocator,
    ColumnarAllocationResult,
)


def predicted_flexibility_for_problem(
    problem: AllocationProblem,
    compiled: Optional[CompiledProblem] = None,
) -> Dict[HouseholdId, float]:
    """Predicted flexibility (Eq. 4) of each item from the problem's windows.

    Reuses the problem's :class:`CompiledProblem` start/end/duration
    arrays (compiled once per problem object and shared with the solvers)
    instead of rebuilding them with per-item ``np.fromiter`` passes.
    """
    if compiled is None:
        compiled = compile_problem(problem)
    if len(compiled) == 0:
        return {}
    scores = flexibility_vector(
        compiled.win_start, compiled.win_end, compiled.duration
    )
    return dict(zip(compiled.ids, scores.tolist()))


#: ``_RAMPS[v][k]`` is how many hours of a duration-``v`` block beginning
#: at ``s`` lie at or before hour ``s + 1 + k`` — i.e. ``min(k + 1, v)``.
#: Adding ``rating * _RAMPS[v][:24 - s]`` to ``prefix[s + 1:]`` applies a
#: placement to a maintained prefix-sum vector in O(24) without the full
#: ``np.cumsum`` rebuild.
_RAMPS = [None] + [
    np.minimum(np.arange(1, HOURS_PER_DAY + 1, dtype=float), float(v))
    for v in range(1, HOURS_PER_DAY + 1)
]


class GreedyFlexibilityAllocator(Allocator):
    """The Enki greedy allocation of Section IV-C.

    Args:
        ascending: Process least-flexible households first (the paper's
            order).  The ordering ablation flips this to show why the
            inflexible-first order matters: rigid households have few
            choices, so fixing them early lets flexible ones fill valleys.
        seed: Tie-break seed used when ``solve`` is not handed an rng.
    """

    name = "enki-greedy"

    def __init__(self, ascending: bool = True, seed: Optional[int] = None) -> None:
        self.ascending = ascending
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        compiled = compile_problem(problem)
        flexibility = predicted_flexibility_for_problem(problem, compiled)
        # Random tie-breaking via a per-household random key, then flexibility.
        order = sorted(
            problem.items,
            key=lambda item: (
                flexibility[item.household_id]
                if self.ascending
                else -flexibility[item.household_id],
                rng.random(),
            ),
        )

        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        allocation: AllocationMap = {}
        quadratic = isinstance(problem.pricing, QuadraticPricing)
        for item in order:
            best_start = self._best_start(
                problem, compiled, loads, prefix, item, quadratic
            )
            placed = Interval(best_start, best_start + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw
            np.cumsum(loads, out=prefix[1:])

        return self._finish(problem, allocation, started_at)

    def solve_columnar(
        self,
        compiled: CompiledProblem,
        pricing: PricingModel,
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """The large-n greedy kernel: no per-household objects.

        Flexibility scores come from one :func:`flexibility_vector` call;
        the processing order is one stable ``np.lexsort`` over
        ``(tie_key, flexibility)`` with tie keys drawn in row order from
        ``rng`` (the same draw sequence the object path's ``sorted`` key
        function consumes); each placement updates the running load and
        its prefix sum incrementally in O(24) instead of recomputing a
        full ``np.cumsum``.
        """
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)
        n = len(compiled)
        starts_out = np.zeros(n, dtype=np.intp)
        if n == 0:
            return ColumnarAllocationResult(
                starts=starts_out,
                cost=pricing.cost(LoadProfile()),
                wall_time_s=time.perf_counter() - started_at,
                allocator_name=self.name,
            )

        flex = flexibility_vector(
            compiled.win_start, compiled.win_end, compiled.duration
        )
        keys = np.fromiter(
            (rng.random() for _ in range(n)), dtype=float, count=n
        )
        order = np.lexsort((keys, flex if self.ascending else -flex))

        quadratic = isinstance(pricing, QuadraticPricing)
        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        win_start = compiled.win_start.tolist()
        win_end = compiled.win_end.tolist()
        duration = compiled.duration.tolist()
        rating = compiled.rating.tolist()
        start_index = compiled.start_index
        end_index = compiled.end_index
        for i in order.tolist():
            a, v, r = win_start[i], duration[i], rating[i]
            if quadratic:
                sums = prefix[end_index[i]] - prefix[start_index[i]]
                s = a + int(np.argmin(sums))
            else:
                b = win_end[i]
                hourly = pricing.marginal_cost_batch(loads[a:b], r)
                window_prefix = np.concatenate(([0.0], np.cumsum(hourly)))
                deltas = window_prefix[v:] - window_prefix[:-v]
                s = a + int(np.argmin(deltas))
            starts_out[i] = s
            loads[s:s + v] += r
            prefix[s + 1:] += r * _RAMPS[v][:HOURS_PER_DAY - s]

        # Cost through the same difference-array builder the object path's
        # ``problem.cost`` uses, rows in compiled order, so the float
        # accumulation sequence matches bit for bit.
        profile = LoadProfile.from_arrays(
            starts_out, starts_out + compiled.duration, compiled.rating
        )
        return ColumnarAllocationResult(
            starts=starts_out,
            cost=pricing.cost(profile),
            wall_time_s=time.perf_counter() - started_at,
            allocator_name=self.name,
        )

    @staticmethod
    def _best_start(
        problem: AllocationProblem,
        compiled: CompiledProblem,
        loads: np.ndarray,
        prefix: np.ndarray,
        item,
        quadratic: bool,
    ) -> int:
        """Begin slot minimizing the marginal cost of this item's block.

        Under quadratic pricing the marginal cost of a block is, up to a
        placement-independent constant, proportional to the sum of existing
        loads under the block; the compiled begin-candidate index vectors
        turn the maintained prefix sum into every candidate window's sum in
        one vectorized subtraction, reused across placements instead of
        re-convolving per item.  Other pricing models get the same
        sliding-window treatment over batched per-hour marginal costs
        (which depend only on that hour's load), so no candidate rescans
        its hours.
        """
        a, b, v = item.window.start, item.window.end, item.duration
        if quadratic:
            # Window sum of existing loads for every start s: prefix[s+v]-prefix[s].
            sums = compiled.block_sums(prefix, compiled.index_of[item.household_id])
            return a + int(np.argmin(sums))

        hourly = problem.pricing.marginal_cost_batch(loads[a:b], item.rating_kw)
        window_prefix = np.concatenate(([0.0], np.cumsum(hourly)))
        deltas = window_prefix[v:] - window_prefix[:-v]
        return a + int(np.argmin(deltas))
