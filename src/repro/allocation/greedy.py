"""Enki's greedy allocator (Section IV-C).

Households are handled in order of *increasing* predicted flexibility
(Eq. 4 computed from reports, assuming truthfulness), breaking ties
randomly.  Each household in turn receives the placement inside its window
that minimally increases the neighborhood cost given the blocks placed so
far.  One pass, O(n log n + n * W * v) — the tractability half of the
paper's Figure 6 comparison.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional

import numpy as np

from ..core.flexibility import flexibility_vector
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap, HouseholdId
from ..pricing.quadratic import QuadraticPricing
from .arrays import CompiledProblem, compile_problem
from .base import AllocationProblem, AllocationResult, Allocator


def predicted_flexibility_for_problem(
    problem: AllocationProblem,
) -> Dict[HouseholdId, float]:
    """Predicted flexibility (Eq. 4) of each item from the problem's windows."""
    n = len(problem.items)
    if n == 0:
        return {}
    starts = np.fromiter((item.window.start for item in problem.items), np.intp, count=n)
    ends = np.fromiter((item.window.end for item in problem.items), np.intp, count=n)
    durations = np.fromiter((item.duration for item in problem.items), np.intp, count=n)
    scores = flexibility_vector(starts, ends, durations)
    return {
        item.household_id: score
        for item, score in zip(problem.items, scores.tolist())
    }


class GreedyFlexibilityAllocator(Allocator):
    """The Enki greedy allocation of Section IV-C.

    Args:
        ascending: Process least-flexible households first (the paper's
            order).  The ordering ablation flips this to show why the
            inflexible-first order matters: rigid households have few
            choices, so fixing them early lets flexible ones fill valleys.
        seed: Tie-break seed used when ``solve`` is not handed an rng.
    """

    name = "enki-greedy"

    def __init__(self, ascending: bool = True, seed: Optional[int] = None) -> None:
        self.ascending = ascending
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        flexibility = predicted_flexibility_for_problem(problem)
        # Random tie-breaking via a per-household random key, then flexibility.
        order = sorted(
            problem.items,
            key=lambda item: (
                flexibility[item.household_id]
                if self.ascending
                else -flexibility[item.household_id],
                rng.random(),
            ),
        )

        compiled = compile_problem(problem)
        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        allocation: AllocationMap = {}
        quadratic = isinstance(problem.pricing, QuadraticPricing)
        for item in order:
            best_start = self._best_start(
                problem, compiled, loads, prefix, item, quadratic
            )
            placed = Interval(best_start, best_start + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw
            np.cumsum(loads, out=prefix[1:])

        return self._finish(problem, allocation, started_at)

    @staticmethod
    def _best_start(
        problem: AllocationProblem,
        compiled: CompiledProblem,
        loads: np.ndarray,
        prefix: np.ndarray,
        item,
        quadratic: bool,
    ) -> int:
        """Begin slot minimizing the marginal cost of this item's block.

        Under quadratic pricing the marginal cost of a block is, up to a
        placement-independent constant, proportional to the sum of existing
        loads under the block; the compiled begin-candidate index vectors
        turn the maintained prefix sum into every candidate window's sum in
        one vectorized subtraction, reused across placements instead of
        re-convolving per item.  Other pricing models get the same
        sliding-window treatment over per-hour marginal costs (which depend
        only on that hour's load), so no candidate rescans its hours.
        """
        a, b, v = item.window.start, item.window.end, item.duration
        if quadratic:
            # Window sum of existing loads for every start s: prefix[s+v]-prefix[s].
            sums = compiled.block_sums(prefix, compiled.index_of[item.household_id])
            return a + int(np.argmin(sums))

        hourly = np.fromiter(
            (
                problem.pricing.marginal_cost(float(load), item.rating_kw)
                for load in loads[a:b]
            ),
            dtype=float,
            count=b - a,
        )
        window_prefix = np.concatenate(([0.0], np.cumsum(hourly)))
        deltas = window_prefix[v:] - window_prefix[:-v]
        return a + int(np.argmin(deltas))
