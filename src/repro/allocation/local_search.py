"""Hill-climbing allocator with restarts.

Repeatedly moves one household's block to its best placement given all
other blocks until no single move improves the cost.  Each sweep strictly
decreases the cost, so the search terminates; restarts from random
allocations escape poor basins.  Used both as a standalone baseline and as
the warm start that gives branch-and-bound a strong initial incumbent.
"""

from __future__ import annotations

import random
import time
from typing import Optional

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap
from ..pricing.quadratic import QuadraticPricing
from .arrays import compile_problem
from .base import AllocationProblem, AllocationResult, Allocator
from .greedy import GreedyFlexibilityAllocator


def improve_allocation(
    problem: AllocationProblem,
    allocation: AllocationMap,
    rng: random.Random,
    max_sweeps: int = 100,
) -> AllocationMap:
    """Run single-household best-move sweeps until a local optimum.

    Returns a new allocation; the input mapping is not modified.
    """
    current = dict(allocation)
    compiled = compile_problem(problem)
    win_start = compiled.win_start.tolist()
    win_end = compiled.win_end.tolist()
    durations = compiled.duration.tolist()
    ratings = compiled.rating.tolist()
    index_of = compiled.index_of
    loads = np.zeros(HOURS_PER_DAY, dtype=float)
    for item in problem.items:
        placed = current[item.household_id]
        loads[placed.start:placed.end] += item.rating_kw

    pricing = problem.pricing
    quadratic = isinstance(pricing, QuadraticPricing)
    items = list(problem.items)
    for _ in range(max_sweeps):
        improved = False
        rng.shuffle(items)
        for item in items:
            j = index_of[item.household_id]
            rating = ratings[j]
            placed = current[item.household_id]
            loads[placed.start:placed.end] -= rating

            if quadratic:
                window_loads = loads[win_start[j]:win_end[j]]
                sums = np.convolve(window_loads, np.ones(durations[j]), mode="valid")
                best_idx = int(np.argmin(sums))
                best_start = win_start[j] + best_idx
                current_idx = placed.start - win_start[j]
                if sums[best_idx] < sums[current_idx] - 1e-12:
                    improved = True
                else:
                    best_start = placed.start
            else:
                best_start, best_delta = placed.start, _block_delta(
                    pricing, loads, placed.start, item
                )
                for start in range(
                    item.window.start, item.window.end - item.duration + 1
                ):
                    delta = _block_delta(pricing, loads, start, item)
                    if delta < best_delta - 1e-12:
                        best_start, best_delta = start, delta
                        improved = True

            new_block = Interval(best_start, best_start + durations[j])
            current[item.household_id] = new_block
            loads[new_block.start:new_block.end] += rating
        if not improved:
            break
    return current


def _block_delta(pricing, loads: np.ndarray, start: int, item) -> float:
    """Marginal cost of placing ``item`` starting at ``start``."""
    return sum(
        pricing.marginal_cost(float(loads[h]), item.rating_kw)
        for h in range(start, start + item.duration)
    )


class LocalSearchAllocator(Allocator):
    """Greedy-seeded hill climbing with random restarts."""

    name = "local-search"

    def __init__(self, restarts: int = 3, seed: Optional[int] = None) -> None:
        if restarts < 1:
            raise ValueError(f"need at least one start, got {restarts}")
        self.restarts = restarts
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)

        # First start: refine the greedy solution, usually already strong.
        greedy = GreedyFlexibilityAllocator()
        best = improve_allocation(problem, greedy.solve(problem, rng).allocation, rng)
        best_cost = problem.cost(best)

        for _ in range(self.restarts - 1):
            start_alloc: AllocationMap = {}
            for item in problem.items:
                begin = rng.randrange(
                    item.window.start, item.window.end - item.duration + 1
                )
                start_alloc[item.household_id] = Interval(begin, begin + item.duration)
            candidate = improve_allocation(problem, start_alloc, rng)
            cost = problem.cost(candidate)
            if cost < best_cost:
                best, best_cost = candidate, cost

        return self._finish(problem, best, started_at)
