"""Exact optimal allocator: depth-first branch and bound over deferments.

This stands in for the paper's IBM ILOG CPLEX V12.4 MIQP solver (Section
VI-A).  It solves exactly the same discrete program (Eq. 2) to proven
optimality:

* **Branching**: households sorted fewest-placements-first (rigid
  households prune earliest); children visited best-marginal-cost-first,
  with sibling cutoff once a child's partial cost already exceeds the
  incumbent (valid because prices are increasing in load).
* **Bounding**: writing the cost of any completion as
  ``sigma * sum((l_h + X_h)**2)`` with ``X`` the remaining load, the
  expansion ``sum(l**2) + 2*sum(l*X) + sum(X**2)`` is bounded below by
  combining (a) the exact minimum of the linear term — fill the cheapest
  hours of the remaining windows' support first — with (b) two integral
  lower bounds on ``sum(X**2)``: the Cauchy-Schwarz floor ``R**2/support``
  and the per-household self term ``sum_j r_j**2 * v_j`` (valid because
  cross terms of integral blocks are non-negative).  If that does not prune,
  an exact capacitated water-filling bound (the fractional minimizer of the
  whole quadratic) gets a second chance, and near the root the exact
  transportation relaxation (windows kept, contiguity dropped) gets a third.
* **Symmetry breaking**: households with identical (window, duration,
  rating) are interchangeable, so their begin slots are forced to be
  nondecreasing; a transposition table additionally cuts revisits of
  (depth, load-profile) states already reached at equal or lower cost.
* **Warm start**: the greedy allocation refined by hill climbing provides
  the initial incumbent.
* **Anytime**: optional time and node limits return the best incumbent with
  ``proven_optimal=False`` instead of running forever, preserving the
  Figure 6 story (the exact solver's cost explodes with n) without hanging
  the harness.

The search runs on the structure-of-arrays layer of
:mod:`repro.allocation.arrays`: the problem is lowered once into a
:class:`~repro.allocation.arrays.CompiledProblem` (begin-candidate
prefix-sum index vectors) plus :class:`~repro.allocation.arrays.
SuffixArrays` (per-depth bound tables), node state is a load vector
maintained by delta on push/pop, every begin slot of the branching
household is evaluated in one vectorized prefix-sum pass (stable-argsorted
for best-first visitation), the transposition table keys on a byte digest
of the load profile over the remaining support, and transportation bounds
come from the all-integer successive-shortest-path kernel
(:func:`~repro.allocation.relaxation.fast_transportation_bound`) behind a
bounded LRU memo.  All of this is numerically identical to the scalar
reference search on the paper's instances (one common power rating, loads
exact binary floats), so incumbents, costs and node counts are preserved
bit for bit — only the clock changes.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap
from ..kernels import active_backend
from ..kernels.bnb import child_expander
from ..pricing.quadratic import QuadraticPricing
from .arrays import CompiledProblem, SuffixArrays
from .base import AllocationItem, AllocationProblem, AllocationResult, Allocator
from .greedy import GreedyFlexibilityAllocator
from .local_search import improve_allocation
from .relaxation import fast_transportation_bound, transportation_solution

#: How many nodes between time-limit checks.
_TIME_CHECK_STRIDE = 512

#: How many nodes between reads of the shared incumbent board (parallel).
_BOARD_PROBE_STRIDE = 256

#: Frontier size target per worker when sharding the tree (parallel).
_SUBTREES_PER_WORKER = 4

#: Depths at which the search may consult the transportation relaxation.
_TRANSPORT_DEPTH = 2

#: Slack subtracted from bounds before pruning, guarding float drift.
_EPS = 1e-9

#: Entries kept in the memoized transportation-bound LRU.
_TRANSPORT_CACHE_SIZE = 4096


class SearchBudgetExceeded(Exception):
    """Internal signal: stop the search and keep the incumbent."""


class IncumbentMatchesBound(Exception):
    """Internal signal: the incumbent met the root bound; search is over."""


class BranchAndBoundAllocator(Allocator):
    """Exact MIQP solver for Eq. 2 (see module docstring).

    Args:
        time_limit_s: Wall-clock budget; ``None`` means unlimited.
        node_limit: Maximum nodes to expand; ``None`` means unlimited.
        warm_start: Seed the incumbent with greedy + hill climbing.
        gap: Relative MIP gap: the search may discard subtrees that cannot
            improve the incumbent by more than this fraction, so a
            completed search proves the answer within ``gap`` of optimal
            (0.0 proves exact optimality).  The same knob CPLEX exposes.
        seed: Randomness for the warm start only; the search itself is
            deterministic.
        workers: Processes for parallel subtree exploration.  ``1``/
            ``None`` searches serially; ``0`` uses every visible core.
            The tree is expanded breadth-first into disjoint subtrees,
            workers run the serial DFS below each against a prefix-safe
            shared incumbent board, and the per-subtree results merge in
            serial DFS order — allocations, costs and verdicts are
            bit-identical to the serial search on the paper's
            uniform-rating instances (see ``_solve_parallel``).  Requires
            ``warm_start`` (without an incumbent the parallel path falls
            back to serial); ``time_limit_s``/``node_limit`` budgets
            apply per worker, so anytime (budget-cut) runs can prove
            *more* days than serial at the same wall budget, never
            different answers on runs that complete.
    """

    name = "optimal-bnb"

    def __init__(
        self,
        time_limit_s: Optional[float] = 60.0,
        node_limit: Optional[int] = None,
        warm_start: bool = True,
        gap: float = 0.0,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
    ) -> None:
        if time_limit_s is not None and time_limit_s <= 0:
            raise ValueError(f"time limit must be positive, got {time_limit_s}")
        if node_limit is not None and node_limit <= 0:
            raise ValueError(f"node limit must be positive, got {node_limit}")
        if not 0.0 <= gap < 1.0:
            raise ValueError(f"gap must be in [0, 1), got {gap}")
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.warm_start = warm_start
        self.gap = gap
        self._seed = seed
        self.workers = workers

    def cache_token(self) -> str:
        """Exact solves are memoizable — for the results this admits.

        The token pins every constructor knob that can steer a stored
        answer (search budgets, warm start, gap, seed fallback, worker
        split); :meth:`result_cacheable` then narrows storage to
        proven-optimal results, because a deadline-truncated incumbent is
        a function of the wall clock, not of the instance.
        """
        return (
            f"optimal-bnb:tl={self.time_limit_s}:nl={self.node_limit}"
            f":ws={self.warm_start}:gap={self.gap}:seed={self._seed}"
            f":w={self.workers}"
        )

    def result_cacheable(self, result) -> bool:
        """Only proven-optimal answers enter the memoization store."""
        return bool(result.proven_optimal)

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)
        if not isinstance(problem.pricing, QuadraticPricing):
            raise TypeError(
                "the exact solver bounds require quadratic pricing; got "
                f"{type(problem.pricing).__name__}"
            )
        sigma = problem.pricing.sigma

        if not problem.items:
            return self._finish(
                problem,
                {},
                started_at,
                proven_optimal=True,
                kernel_backend=active_backend(),
            )

        # Branch order: fewest placements first; identical specs adjacent so
        # the symmetry constraint below applies.
        items: List[AllocationItem] = sorted(
            problem.items,
            key=lambda it: (
                it.n_placements,
                it.window.start,
                it.window.end,
                it.duration,
                it.rating_kw,
                it.household_id,
            ),
        )
        n = len(items)

        # Lower the branch order into flat arrays once; every bound table
        # and begin-candidate index vector below is derived from this.
        compiled = CompiledProblem.from_items(items, problem.pricing)
        suffix = SuffixArrays.from_compiled(compiled)
        uniform_rating = compiled.uniform_rating()

        # Warm-start incumbent.
        incumbent: Optional[List[int]] = None
        incumbent_cost = float("inf")
        if self.warm_start:
            seed_alloc = GreedyFlexibilityAllocator().solve(problem, rng).allocation
            seed_alloc = improve_allocation(problem, seed_alloc, rng)
            incumbent = [seed_alloc[item.household_id].start for item in items]
            incumbent_cost = problem.cost(seed_alloc)

        state = _SearchState(
            compiled=compiled,
            suffix=suffix,
            sigma=sigma,
            uniform_rating=uniform_rating,
            incumbent=incumbent,
            incumbent_cost=incumbent_cost,
            gap=self.gap,
            deadline=(
                started_at + self.time_limit_s if self.time_limit_s is not None else None
            ),
            node_limit=self.node_limit,
        )
        # Root certificate: the exact transportation relaxation (windows
        # kept, contiguity dropped) often matches the warm-start incumbent
        # to within one cost quantum, proving optimality with zero search.
        root_lower_bound: Optional[float] = None
        root_bound_matched = False
        if uniform_rating is not None and incumbent is not None:
            root_lower_bound = fast_transportation_bound(
                loads=[0.0] * HOURS_PER_DAY,
                windows=state.tail_windows(0),
                durations=state.tail_durations(0),
                rating=uniform_rating,
                sigma=sigma,
                counts=state.tail_counts(0),
            )
            quantum = sigma * uniform_rating * uniform_rating
            if root_lower_bound < incumbent_cost - quantum + 1e-6:
                # The certificate missed: extract one particular optimal
                # brick assignment (the flow value is unique, the flow is
                # not) and round it into a second warm start: give each
                # household the contiguous block covering the most of its
                # relaxed brick hours, then hill-climb.
                _, bricks = transportation_solution(
                    loads=[0.0] * HOURS_PER_DAY,
                    windows=state.tail_windows(0),
                    durations=state.tail_durations(0),
                    rating=uniform_rating,
                    sigma=sigma,
                )
                rounded: AllocationMap = {}
                for item, hours in zip(items, bricks):
                    best_start, best_overlap = item.window.start, -1
                    for start in range(
                        item.window.start, item.window.end - item.duration + 1
                    ):
                        overlap = sum(
                            1 for h in hours if start <= h < start + item.duration
                        )
                        if overlap > best_overlap:
                            best_start, best_overlap = start, overlap
                    rounded[item.household_id] = Interval(
                        best_start, best_start + item.duration
                    )
                rounded = improve_allocation(problem, rounded, rng)
                rounded_cost = problem.cost(rounded)
                if rounded_cost < incumbent_cost:
                    incumbent = [rounded[item.household_id].start for item in items]
                    incumbent_cost = rounded_cost
                    state.incumbent = list(incumbent)
                    state.incumbent_cost = incumbent_cost
            if root_lower_bound >= incumbent_cost - quantum + 1e-6:
                allocation = {
                    item.household_id: Interval(start, start + item.duration)
                    for item, start in zip(items, incumbent)
                }
                # The root evaluation is one node's work; report it so the
                # bench row distinguishes "certified at the root" from
                # "never ran".
                return self._finish(
                    problem,
                    allocation,
                    started_at,
                    proven_optimal=True,
                    nodes_explored=1,
                    lower_bound=root_lower_bound,
                    root_bound_matched=True,
                    kernel_backend=state.kernel_backend,
                )

        state.root_lower_bound = root_lower_bound
        if self.workers not in (None, 1):
            parallel = self._solve_parallel(
                problem, items, compiled, state, started_at, root_lower_bound
            )
            if parallel is not None:
                return parallel
        proven = True
        try:
            state.search([0.0] * HOURS_PER_DAY, 0.0, 0, [0] * n)
        except SearchBudgetExceeded:
            proven = False
        except IncumbentMatchesBound:
            root_bound_matched = True

        if state.incumbent is None:
            raise RuntimeError("branch and bound ended without any feasible incumbent")
        allocation: AllocationMap = {
            item.household_id: Interval(start, start + item.duration)
            for item, start in zip(items, state.incumbent)
        }
        return self._finish(
            problem,
            allocation,
            started_at,
            proven_optimal=proven,
            nodes_explored=state.nodes,
            lower_bound=state.incumbent_cost if proven else root_lower_bound,
            root_bound_matched=root_bound_matched,
            kernel_backend=state.kernel_backend,
        )

    def _solve_parallel(
        self,
        problem: AllocationProblem,
        items: List[AllocationItem],
        compiled: CompiledProblem,
        state: "_SearchState",
        started_at: float,
        root_lower_bound: Optional[float],
    ) -> Optional[AllocationResult]:
        """Deterministic parallel subtree search; ``None`` = run serially.

        The tree is expanded breadth-first (replicating the serial child
        ordering and warm-start pruning) into disjoint subtrees at one
        depth; contiguous groups of subtrees — in serial DFS order — go
        to worker processes, which run the unchanged serial DFS below
        each root.  Two mechanisms keep the answer bit-identical to
        serial on uniform-rating instances:

        * **Prefix-safe shared bound** — a worker on subtree ``j`` may
          prune with incumbents published for subtrees ``< j`` only
          (``board[:j]``).  Any such value is a completion cost from an
          earlier subtree, hence >= the serial incumbent at every moment
          serial spends inside ``j`` (cost quantization makes this
          exact), so every worker visits a superset of serial's nodes in
          serial order.  A bound from a *later* subtree could prune the
          first-in-DFS-order optimum achiever and change the allocation
          — that is why the board read is prefix-restricted.
        * **Deterministic merge** — each worker reports its final
          (cost, starts) per improved subtree; records fold in subtree
          order under the serial strict-improvement rule, which replays
          serial's incumbent trajectory: completions serial pruned are a
          full cost quantum above its incumbent at prune time, so they
          lose every merge comparison to the record serial would have
          produced.

        Non-uniform ratings have no cost quantum, so equal-cost
        allocations may differ from serial there (costs still agree to
        float precision); the paper's instances are uniform-rating.
        """
        from ..sim.parallel import map_tasks, resolve_workers
        from ..sim.shm import SharedArena

        n_workers = resolve_workers(self.workers)
        if n_workers <= 1 or state.incumbent is None:
            return None
        n = len(items)
        frontier, depth, expand_nodes = _expand_frontier(
            state, target=_SUBTREES_PER_WORKER * n_workers
        )

        merged_cost = state.incumbent_cost
        merged = list(state.incumbent)
        total_nodes = expand_nodes
        proven = True
        matched = False
        if not frontier:
            # Every node at the cut depth was pruned against the warm
            # start: the incumbent is optimal (and proven by the bounds).
            pass
        elif depth >= n:
            # The whole tree fit inside the expansion: frontier entries
            # are complete solutions in serial DFS order; fold directly.
            for prefix, cost in frontier:
                if cost < merged_cost - 1e-12:
                    merged_cost = cost
                    merged = list(prefix)
                    if (
                        root_lower_bound is not None
                        and root_lower_bound > cost - state.quantum + 1e-6
                    ):
                        matched = True
                        break
        else:
            remaining_s: Optional[float] = None
            if state.deadline is not None:
                remaining_s = max(state.deadline - time.perf_counter(), 0.01)
            group_count = min(n_workers, len(frontier))
            groups = [
                tuple(
                    (at, prefix, cost)
                    for at, (prefix, cost) in list(enumerate(frontier))[
                        len(frontier) * g // group_count:
                        len(frontier) * (g + 1) // group_count
                    ]
                )
                for g in range(group_count)
            ]
            arena = SharedArena(prefix="enki-bnb")
            try:
                board_name = None
                if len(frontier) > 1:
                    board_name = arena.share_floats(len(frontier), float("inf"))
                payloads = [
                    (
                        compiled,
                        self.gap,
                        depth,
                        group,
                        tuple(state.incumbent),
                        state.incumbent_cost,
                        remaining_s,
                        self.node_limit,
                        root_lower_bound,
                        board_name,
                        len(frontier),
                    )
                    for group in groups
                ]
                outs = map_tasks(
                    _solve_subtree_batch, payloads, workers=group_count
                )
            finally:
                arena.dispose()
            records: List[Tuple[int, float, Tuple[int, ...]]] = []
            for batch_records, batch_nodes, batch_proven, batch_matched in outs:
                total_nodes += batch_nodes
                proven = proven and batch_proven
                matched = matched or batch_matched
                records.extend(batch_records)
            records.sort(key=lambda record: record[0])
            for _, cost, starts in records:
                if cost < merged_cost - 1e-12:
                    merged_cost = cost
                    merged = list(starts)

        allocation: AllocationMap = {
            item.household_id: Interval(start, start + item.duration)
            for item, start in zip(items, merged)
        }
        return self._finish(
            problem,
            allocation,
            started_at,
            proven_optimal=proven,
            nodes_explored=max(total_nodes, 1),
            lower_bound=merged_cost if proven else root_lower_bound,
            root_bound_matched=matched,
            kernel_backend=state.kernel_backend,
        )


def _expand_frontier(
    state: "_SearchState", target: int
) -> Tuple[List[Tuple[Tuple[int, ...], float]], int, int]:
    """Expand the root breadth-first into >= ``target`` disjoint subtrees.

    Level-synchronized replication of the serial search's child
    enumeration (same deltas, same stable argsort, same symmetry floor,
    same warm-start pruning and sibling cutoff), so the returned frontier
    lists the depth-``d`` subtree roots in exactly the order serial DFS
    first visits them — a superset of the nodes serial would visit,
    because expansion prunes only against the warm start, never against
    improvements found deeper in the tree.

    Returns ``(frontier, depth, nodes)`` where frontier entries are
    ``(starts_prefix, partial_cost)``.
    """
    n = state._n
    compiled = state.compiled
    frontier: List[Tuple[Tuple[int, ...], float]] = [((), 0.0)]
    nodes = 0
    depth = 0
    prefix_sums = state._prefix
    threshold = state._prune_threshold()
    while frontier and len(frontier) < target and depth < n:
        next_level: List[Tuple[Tuple[int, ...], float]] = []
        for starts_prefix, cost in frontier:
            nodes += 1
            loads = [0.0] * HOURS_PER_DAY
            for j, start in enumerate(starts_prefix):
                r = state._rating[j]
                for h in range(start, start + state._duration[j]):
                    loads[h] += r
            loads_arr = np.array(loads)
            if state._bound(loads, loads_arr, cost, depth) >= threshold:
                continue
            rating = state._rating[depth]
            duration = state._duration[depth]
            win_start = state._win_start[depth]
            min_start = win_start
            if state.same_as_prev[depth]:
                prev = starts_prefix[depth - 1]
                if prev > min_start:
                    min_start = prev
            starts_idx, ends_idx = compiled.begin_candidates(
                depth, min_start - win_start
            )
            self_term = state.sigma * rating * rating * duration
            two_sigma_r = 2.0 * state.sigma * rating
            deltas, order = state._expand(
                loads_arr,
                starts_idx,
                ends_idx,
                two_sigma_r,
                self_term,
                prefix_sums,
                state._deltas_buf,
                state._order_buf,
            )
            deltas_list = deltas.tolist()
            for child in order.tolist():
                child_cost = cost + deltas_list[child]
                if child_cost >= threshold:
                    break
                next_level.append(
                    (starts_prefix + (min_start + child,), child_cost)
                )
        frontier = next_level
        depth += 1
    return frontier, depth, nodes


def _solve_subtree_batch(payload) -> Tuple[list, int, bool, bool]:
    """Worker: run the serial DFS below each assigned subtree root.

    Module-level (picklable) for :func:`repro.sim.parallel.map_tasks`.
    The payload ships the compact :class:`CompiledProblem` (five arrays
    via its ``__reduce__``), the warm-start incumbent, the remaining
    budgets and the shared bound board's segment name.  Subtrees run in
    serial DFS order; before each, the worker refreshes its prune base
    from ``board[:j]`` (earlier subtrees only — see ``_solve_parallel``)
    and publishes every improvement to its own slot.

    Returns ``(records, nodes, proven, matched)`` where ``records`` holds
    one ``(subtree_index, cost, starts)`` per subtree that improved on
    the warm start.
    """
    (
        compiled,
        gap,
        depth,
        group,
        warm_starts,
        warm_cost,
        remaining_s,
        node_limit,
        root_lower_bound,
        board_name,
        board_len,
    ) = payload
    deadline = (
        time.perf_counter() + remaining_s if remaining_s is not None else None
    )
    suffix = SuffixArrays.from_compiled(compiled)
    state = _SearchState(
        compiled=compiled,
        suffix=suffix,
        sigma=compiled.sigma,
        uniform_rating=compiled.uniform_rating(),
        incumbent=list(warm_starts),
        incumbent_cost=warm_cost,
        gap=gap,
        deadline=deadline,
        node_limit=node_limit,
    )
    state.root_lower_bound = root_lower_bound
    if board_name is not None:
        from ..sim.shm import attach_floats

        state.board = attach_floats(board_name, board_len)
    n = state._n
    records: List[Tuple[int, float, Tuple[int, ...]]] = []
    proven = True
    matched = False
    for subtree_index, starts_prefix, cost in group:
        state.board_slot = subtree_index
        state.board_upto = subtree_index
        before = state.incumbent_cost
        loads = [0.0] * HOURS_PER_DAY
        starts = [0] * n
        for j, start in enumerate(starts_prefix):
            starts[j] = start
            r = state._rating[j]
            for h in range(start, start + state._duration[j]):
                loads[h] += r
        try:
            state.search(loads, cost, depth, starts)
        except SearchBudgetExceeded:
            proven = False
        except IncumbentMatchesBound:
            # Nothing anywhere can improve by a full quantum: record and
            # stop — the remaining subtrees cannot change the answer.
            matched = True
        if state.incumbent_cost < before - 1e-12:
            records.append(
                (subtree_index, state.incumbent_cost, tuple(state.incumbent))
            )
        if matched or not proven:
            break
    return records, state.nodes, proven, matched


class _SearchState:
    """Mutable depth-first search state shared across recursion frames.

    All per-depth tables come pre-lowered from :class:`SuffixArrays`; the
    per-node work is one ``np.array`` of the 24-hour load list plus a
    handful of vectorized kernels over it.
    """

    def __init__(
        self,
        compiled: CompiledProblem,
        suffix: SuffixArrays,
        sigma: float,
        uniform_rating: Optional[float],
        incumbent: Optional[List[int]],
        incumbent_cost: float,
        gap: float,
        deadline: Optional[float],
        node_limit: Optional[int],
    ) -> None:
        n = len(compiled)
        self._n = n
        self.compiled = compiled
        self.sigma = sigma
        self.uniform_rating = uniform_rating
        self.same_as_prev = suffix.same_as_prev
        self.incumbent = list(incumbent) if incumbent is not None else None
        self.incumbent_cost = incumbent_cost
        self.gap = gap
        self.deadline = deadline
        self.node_limit = node_limit
        self.nodes = 0
        self.root_lower_bound: Optional[float] = None
        # Shared-bound plumbing for parallel subtree workers: a float64
        # view of the cross-process board (one slot per subtree), the slot
        # this state publishes to, and how much of the board's *prefix*
        # it may prune with (earlier subtrees only — prefix safety is what
        # keeps parallel answers bit-identical to serial).
        self.board: Optional[np.ndarray] = None
        self.board_slot = 0
        self.board_upto = 0
        self.shared_bound = float("inf")
        # Transposition table: the best completion from a node depends only
        # on (depth, loads over the hours the remaining windows can touch),
        # so arriving at a seen state at equal-or-higher cost is futile.
        # Keys are byte digests of the support load vector.
        self.table: dict = {}
        self.quantum = (
            sigma * uniform_rating * uniform_rating
            if uniform_rating is not None
            else 0.0
        )
        # Item scalars as plain Python lists: scalar indexing in the hot
        # push/pop loop beats numpy item access.
        self._win_start = compiled.win_start.tolist()
        self._win_end = compiled.win_end.tolist()
        self._duration = compiled.duration.tolist()
        self._rating = compiled.rating.tolist()
        # Bound tables (Python floats where the search does scalar math).
        self.suffix_energy = suffix.energy.tolist()
        self.suffix_self = suffix.self_term.tolist()
        self.suffix_cross = suffix.cross.tolist()
        self.suffix_units = suffix.units.tolist()
        self._support = suffix.support_index
        self._sup_caps = tuple(
            suffix.caps[k][suffix.support_index[k]] for k in range(n + 1)
        )
        sup_counts = tuple(
            suffix.counts[k][suffix.support_index[k]] for k in range(n + 1)
        )
        # Integral water-filling grids: per depth, the loads-independent
        # brick-step offsets (k-th extra brick in an hour costs k more
        # doubled-rating² steps) and the validity mask (hour h offers
        # counts[h] bricks).  At bound time only the first column (the
        # current marginals) changes.
        self._brick_steps: Tuple[np.ndarray, ...] = ()
        self._brick_mask: Tuple[np.ndarray, ...] = ()
        if uniform_rating is not None:
            r = uniform_rating
            self._two_r = 2.0 * r
            self._r2 = r * r
            two_r2 = 2.0 * r * r
            steps_list = []
            mask_list = []
            for k in range(n + 1):
                counts = sup_counts[k]
                max_count = int(counts.max()) if counts.size else 0
                steps_list.append(two_r2 * np.arange(max_count, dtype=np.float64))
                mask_list.append(
                    np.arange(max_count, dtype=np.intp)[None, :] < counts[:, None]
                )
            self._brick_steps = tuple(steps_list)
            self._brick_mask = tuple(mask_list)
        # Transportation-relaxation inputs for the depths allowed to
        # consult it, plus the bounded LRU memo over load digests.
        self._tail_windows: Dict[int, List[List[int]]] = {}
        self._tail_durations: Dict[int, List[int]] = {}
        self._tail_counts: Dict[int, List[int]] = {}
        for k in range(min(_TRANSPORT_DEPTH, n) + 1):
            self._tail_windows[k] = [
                list(range(self._win_start[i], self._win_end[i]))
                for i in range(k, n)
            ]
            self._tail_durations[k] = [self._duration[i] for i in range(k, n)]
            self._tail_counts[k] = suffix.counts[k].tolist()
        self._transport_cache: "OrderedDict[tuple, float]" = OrderedDict()
        # Shared node-expansion kernel — prefix-sum rebuild, per-candidate
        # marginal-cost deltas, stable cheapest-first child order — compiled
        # or pure-python per the repro.kernels registry (resolved here, so
        # worker processes building their own states pick up the
        # env-mirrored backend choice), plus its scratch rows.  The
        # returned views are copied (``.tolist()``) before any recursion,
        # so one set of buffers serves the whole search.
        self._expand, self.kernel_backend = child_expander()
        self._prefix = np.zeros(HOURS_PER_DAY + 1, dtype=np.float64)
        self._deltas_buf = np.empty(HOURS_PER_DAY, dtype=np.float64)
        self._order_buf = np.empty(HOURS_PER_DAY, dtype=np.intp)

    def tail_windows(self, depth: int) -> List[List[int]]:
        """Remaining households' window hour lists from ``depth`` on."""
        return self._tail_windows[depth]

    def tail_durations(self, depth: int) -> List[int]:
        """Remaining households' durations from ``depth`` on."""
        return self._tail_durations[depth]

    def tail_counts(self, depth: int) -> List[int]:
        """Per-hour count of remaining households covering each hour."""
        return self._tail_counts[depth]

    def _prune_threshold(self) -> float:
        """Bounds at or above this cannot improve enough to matter.

        With one common rating r every achievable cost is a multiple of
        ``sigma * r**2`` (loads are multiples of r, so ``sum(l**2)`` is an
        integer times r**2).  An improvement therefore means improving by a
        full quantum, which lets the search prune the large plateaus of
        cost-equivalent schedules these instances exhibit.

        Parallel workers additionally prune with the best bound published
        by *earlier* subtrees (``shared_bound``); serial searches never
        set it, so the threshold is unchanged there.
        """
        base = self.incumbent_cost
        if self.shared_bound < base:
            base = self.shared_bound
        slack = max(self.quantum - 1e-6, base * self.gap, _EPS)
        return base - slack

    def _check_budget(self) -> None:
        if self.node_limit is not None and self.nodes >= self.node_limit:
            raise SearchBudgetExceeded
        if (
            self.deadline is not None
            and self.nodes % _TIME_CHECK_STRIDE == 0
            and time.perf_counter() > self.deadline
        ):
            raise SearchBudgetExceeded
        if (
            self.board is not None
            and self.board_upto
            and self.nodes % _BOARD_PROBE_STRIDE == 0
        ):
            # Aligned 8-byte loads are atomic on every supported platform;
            # a stale read only delays pruning, never corrupts it.
            value = float(self.board[: self.board_upto].min())
            if value < self.shared_bound:
                self.shared_bound = value

    def _transport_bound(self, loads: List[float], loads_arr: np.ndarray,
                         depth: int) -> float:
        """Memoized exact transportation relaxation from this node.

        The bound depends only on (depth, load profile); identical states
        reached along different branches (and the plateaus the quantum
        pruning walks) hit the LRU instead of re-solving the flow.
        """
        key = (depth, loads_arr.tobytes())
        cache = self._transport_cache
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
            return value
        value = fast_transportation_bound(
            loads=list(loads),
            windows=self._tail_windows[depth],
            durations=self._tail_durations[depth],
            rating=self.uniform_rating,
            sigma=self.sigma,
            counts=self._tail_counts[depth],
        )
        cache[key] = value
        if len(cache) > _TRANSPORT_CACHE_SIZE:
            cache.popitem(last=False)
        return value

    def _bound(
        self, loads: List[float], loads_arr: np.ndarray, cost: float, depth: int
    ) -> float:
        """Lower bound on the best completion cost from this node.

        First the cheap combined bound (exact linear fill + integral floors
        on ``sum(X**2)``); if that fails to prune, the integral
        water-filling bound (uniform ratings) or the exact capacitated
        water-filling relaxation; near the root, the memoized
        transportation relaxation as a last resort.
        """
        energy = self.suffix_energy[depth]
        if energy <= 0.0:
            return cost
        sigma = self.sigma
        support = self._support[depth]
        sup_loads = loads_arr[support]
        sup_caps = self._sup_caps[depth]

        # Exact minimum of the linear term: fill cheapest hours first.
        # lexsort (loads primary, caps secondary) + prefix cumsum replaces
        # the scalar sorted-tuple accumulation with identical arithmetic.
        order = np.lexsort((sup_caps, sup_loads))
        sorted_loads = sup_loads[order]
        sorted_caps = sup_caps[order]
        cum_caps = np.cumsum(sorted_caps)
        cut = int(np.searchsorted(cum_caps, energy))
        if cut >= sorted_caps.size:
            linear = float(np.dot(sorted_loads, sorted_caps))
        else:
            taken = float(cum_caps[cut - 1]) if cut else 0.0
            linear = float(np.dot(sorted_loads[:cut], sorted_caps[:cut]))
            linear += float(sorted_loads[cut]) * (energy - taken)
        x_square_floor = max(
            energy * energy / support.size,
            self.suffix_self[depth] + 2.0 * self.suffix_cross[depth],
        )
        cheap = cost + sigma * (2.0 * linear + x_square_floor)
        if cheap >= self._prune_threshold():
            return cheap

        if self.uniform_rating is not None:
            # Integral water-filling: with one common rating r, any feasible
            # completion is a multiset of 1-hour height-r bricks, at most one
            # per (remaining household covering h, hour h).  Taking the
            # cheapest marginal bricks is exact for this separable convex
            # relaxation; the cheapest-units selection over the precomputed
            # marginal grid is one partition instead of a units-long scan.
            marginals = self._two_r * sup_loads + self._r2
            grid = marginals[:, None] + self._brick_steps[depth][None, :]
            values = grid[self._brick_mask[depth]]
            units = self.suffix_units[depth]
            if units < values.size:
                values = np.partition(values, units - 1)[:units]
            integral = cost + sigma * float(values.sum())
            best = integral if integral > cheap else cheap
            if best >= self._prune_threshold() or depth > _TRANSPORT_DEPTH:
                return best
            # Last resort near the root: the exact transportation
            # relaxation (windows kept, contiguity dropped); memoized, and
            # orders of magnitude cheaper than the old network simplex.
            transport = self._transport_bound(loads, loads_arr, depth)
            return transport if transport > best else best

        # Exact capacitated water-filling: the fractional minimizer of
        # 2*sum(l*x) + sum(x**2) subject to sum(x) = R, 0 <= x <= c.
        # Sweep the water level through its breakpoints (hour activates at
        # l_h, saturates at l_h + c_h); volume grows linearly in between.
        hours = sorted(zip(sup_loads.tolist(), sup_caps.tolist()))
        events: List[Tuple[float, float]] = []
        for load, cap in hours:
            events.append((load, 1.0))
            events.append((load + cap, -1.0))
        events.sort()
        level = events[0][0]
        volume = 0.0
        slope = 0.0
        index = 0
        target = energy
        while index < len(events):
            next_level = events[index][0]
            if slope > 0.0 and volume + slope * (next_level - level) >= target:
                break
            volume += slope * (next_level - level)
            level = next_level
            while index < len(events) and events[index][0] == next_level:
                slope += events[index][1]
                index += 1
        if slope > 0.0:
            level += (target - volume) / slope
        quad = 0.0
        for load, cap in hours:
            x = level - load
            if x <= 0.0:
                continue
            if x > cap:
                x = cap
            quad += x * (2.0 * load + x)
        waterfill = cost + sigma * quad
        return waterfill if waterfill > cheap else cheap

    def search(
        self, loads: List[float], cost: float, depth: int, starts: List[int]
    ) -> None:
        """Expand the node at ``depth`` with partial ``loads``/``cost``."""
        self.nodes += 1
        self._check_budget()

        if depth == self._n:
            if cost < self.incumbent_cost - 1e-12:
                self.incumbent_cost = cost
                self.incumbent = list(starts)
                if self.board is not None and cost < self.board[self.board_slot]:
                    self.board[self.board_slot] = cost
                if (
                    self.root_lower_bound is not None
                    and self.root_lower_bound > cost - self.quantum + 1e-6
                ):
                    # Nothing can beat the incumbent by a full cost quantum:
                    # the root relaxation certifies it as optimal.
                    raise IncumbentMatchesBound
            return

        loads_arr = np.array(loads)
        if self._bound(loads, loads_arr, cost, depth) >= self._prune_threshold():
            return

        key = (depth, loads_arr[self._support[depth]].tobytes())
        seen = self.table.get(key)
        if seen is not None and seen <= cost + 1e-9:
            return
        if len(self.table) >= 4_000_000:
            self.table.clear()
        self.table[key] = cost

        rating = self._rating[depth]
        duration = self._duration[depth]
        win_start = self._win_start[depth]
        min_start = win_start
        if self.same_as_prev[depth]:
            prev = starts[depth - 1]
            if prev > min_start:
                min_start = prev

        # Marginal cost of every placement in one pass: each candidate
        # block's existing-load sum is a prefix-sum delta via the compiled
        # begin-candidate index vectors; a stable ordering visits children
        # cheapest-first (ties by earlier start, as before).  The kernel is
        # the registry-selected build — compiled when numba serves,
        # bit-identical python otherwise.
        starts_idx, ends_idx = self.compiled.begin_candidates(
            depth, min_start - win_start
        )
        self_term = self.sigma * rating * rating * duration
        two_sigma_r = 2.0 * self.sigma * rating
        deltas, order = self._expand(
            loads_arr,
            starts_idx,
            ends_idx,
            two_sigma_r,
            self_term,
            self._prefix,
            self._deltas_buf,
            self._order_buf,
        )
        deltas_list = deltas.tolist()

        threshold = self._prune_threshold()
        for child in order.tolist():
            child_cost = cost + deltas_list[child]
            if child_cost >= threshold:
                # Children are sorted by delta and any completion only adds
                # cost, so later siblings cannot win either.
                break
            start = min_start + child
            for h in range(start, start + duration):
                loads[h] += rating
            starts[depth] = start
            self.search(loads, child_cost, depth + 1, starts)
            for h in range(start, start + duration):
                loads[h] -= rating
