"""Uniform-random allocator: the no-coordination baseline.

Places each household's block uniformly at random inside its window.  This
is what a neighborhood looks like when everyone schedules independently —
the reference point Enki's peak reduction is measured against in ablations.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from ..core.intervals import Interval
from ..core.types import AllocationMap
from .base import AllocationProblem, AllocationResult, Allocator


class RandomAllocator(Allocator):
    """Independent uniform placement inside each reported window."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)
        allocation: AllocationMap = {}
        for item in problem.items:
            start = rng.randrange(
                item.window.start, item.window.end - item.duration + 1
            )
            allocation[item.household_id] = Interval(start, start + item.duration)
        return self._finish(problem, allocation, started_at)


class EarliestAllocator(Allocator):
    """Everyone starts at the beginning of their window.

    Models the "everyone reacts to the same price signal" herding the paper
    attributes to price-based control (Section II): with correlated window
    starts this concentrates load and maximizes the peak.
    """

    name = "earliest"

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        allocation: AllocationMap = {
            item.household_id: Interval(
                item.window.start, item.window.start + item.duration
            )
            for item in problem.items
        }
        return self._finish(problem, allocation, started_at)
