"""Continuous relaxation lower bounds for the allocation problem.

The exact branch-and-bound solver prunes with a *capacitated water-filling*
bound: drop the contiguity constraint and let the remaining households'
energy spread fractionally over the hours their windows cover.  Minimizing
``sigma * sum((l_h + x_h)**2)`` subject to ``0 <= x_h <= c_h`` and
``sum(x_h) = R`` is a classic water-filling problem whose optimum is
``x_h = clip(level - l_h, 0, c_h)`` for a common water level.

The strongest relaxation here is the *brick transportation* bound
(windows kept, contiguity dropped).  Two implementations coexist:

* :func:`brick_flow_cost` — a self-contained successive-shortest-path
  min-cost-flow kernel over the compact household/hour graph, all-integer
  arithmetic, no imports.  This is what the accelerated solver calls; the
  optimum *value* is unique, so it is bit-for-bit the bound the network
  simplex would produce, at a fraction of the cost.
* :func:`transportation_bound` / :func:`transportation_solution` — the
  original networkx network-simplex formulation.  Kept because
  ``transportation_solution`` also extracts *one particular* optimal
  brick assignment (optimal flows are not unique), which the solver's
  warm-start rounding depends on for bit-identical incumbents.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np


def waterfill_levels(
    loads: np.ndarray, energy: float, capacities: np.ndarray, tol: float = 1e-9
) -> np.ndarray:
    """Optimal fractional additions ``x_h`` for the water-filling problem.

    Args:
        loads: Current hourly loads ``l_h``.
        energy: Total energy ``R >= 0`` to distribute.
        capacities: Per-hour caps ``c_h >= 0`` on added load.
        tol: Relative tolerance on meeting the energy total.

    Returns:
        The additions ``x_h``; their sum is ``min(R, sum(c_h))`` up to
        tolerance (never more than ``R``, which keeps bounds conservative).
    """
    if energy <= 0:
        return np.zeros_like(loads)
    total_capacity = float(capacities.sum())
    if total_capacity <= energy:
        # Relaxation cannot even fit the energy; fill every hour to its cap.
        return capacities.astype(float).copy()

    lo = float(loads.min())
    hi = float((loads + capacities).max())
    # Find the water level by bisection: the filled volume is monotone in it.
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        filled = float(np.minimum(np.maximum(mid - loads, 0.0), capacities).sum())
        if filled < energy:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, hi):
            break
    # Use the low side so the filled volume never exceeds R: placing *less*
    # energy costs less under an increasing price, so the bound stays valid.
    return np.minimum(np.maximum(lo - loads, 0.0), capacities)


def quadratic_waterfill_bound(
    loads: np.ndarray, energy: float, capacities: np.ndarray, sigma: float
) -> float:
    """Lower bound on the *total* quadratic cost after placing ``energy``.

    Any feasible completion adds at least ``energy`` kWh inside the capacity
    envelope, and the fractional water-filling placement minimizes the
    convex cost among all such additions, so the returned value never
    exceeds the cost of the best feasible completion.
    """
    additions = waterfill_levels(loads, energy, capacities)
    filled = loads + additions
    return float(sigma * np.dot(filled, filled))


def brick_flow_cost(
    m: Sequence[int],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    counts: Optional[Sequence[int]] = None,
) -> int:
    """Exact integer optimum of the brick transportation problem.

    Each household ``j`` places ``durations[j]`` one-hour bricks, at most
    one per hour, only in the hours ``windows[j]`` covers; the k-th brick
    landing in hour ``h`` (which already carries ``m[h]`` load units)
    costs ``2*m[h] + 2*k - 1``.  This is the min-cost flow behind
    :func:`transportation_bound`, solved by successive shortest paths
    with Dijkstra and Johnson potentials on the compact bipartite graph
    (households -> hours -> sink) instead of networkx's expanded
    per-brick-slot network simplex.  All arithmetic is integral, so the
    returned optimum is exactly the simplex flow cost.

    Args:
        m: Integer load multiples already in each hour.
        windows: Per household, the hour slots its window covers.
        durations: Per household, the number of bricks to place.
        counts: Optional per-hour brick capacity (households covering the
            hour); derived from ``windows`` when omitted.

    Returns:
        The minimum total brick cost as a Python int.
    """
    n_hours = len(m)
    n_households = len(windows)
    if n_households != len(durations):
        raise ValueError("windows and durations must align")
    total_units = sum(durations)
    if total_units == 0:
        return 0
    if counts is None:
        counts = [0] * n_hours
        for hours in windows:
            for h in hours:
                counts[h] += 1

    # Node ids: households 0..J-1, hour h -> J+h, source S, sink T.
    source = n_households + n_hours
    sink = source + 1
    n_nodes = sink + 1
    potential = [0] * n_nodes
    hour_load = [0] * n_hours                    # bricks routed into hour h
    assigned: List[set] = [set() for _ in range(n_households)]
    by_hour: List[List[int]] = [[] for _ in range(n_hours)]
    remaining = list(durations)
    infinity = float("inf")

    for _ in range(total_units):
        dist: List = [infinity] * n_nodes
        parent = [-1] * n_nodes
        dist[source] = 0
        heap: List[Tuple[int, int]] = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            if u == sink:
                break
            if u == source:
                pi_u = potential[source]
                for j in range(n_households):
                    if remaining[j] > 0:
                        nd = d + pi_u - potential[j]
                        if nd < dist[j]:
                            dist[j] = nd
                            parent[j] = source
                            heapq.heappush(heap, (nd, j))
            elif u < n_households:
                pi_u = potential[u]
                taken = assigned[u]
                for h in windows[u]:
                    if h in taken:
                        continue
                    v = n_households + h
                    nd = d + pi_u - potential[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        heapq.heappush(heap, (nd, v))
            else:
                h = u - n_households
                pi_u = potential[u]
                if hour_load[h] < counts[h]:
                    # Next brick slot of this hour: marginal cost.
                    nd = d + 2 * (m[h] + hour_load[h]) + 1 + pi_u - potential[sink]
                    if nd < dist[sink]:
                        dist[sink] = nd
                        parent[sink] = u
                        heapq.heappush(heap, (nd, sink))
                for j in by_hour[h]:            # residual: reroute j's brick
                    nd = d + pi_u - potential[j]
                    if nd < dist[j]:
                        dist[j] = nd
                        parent[j] = u
                        heapq.heappush(heap, (nd, j))
        d_sink = dist[sink]
        if d_sink == infinity:  # pragma: no cover - feasible by construction
            raise RuntimeError("brick transportation problem is infeasible")
        for v in range(n_nodes):
            potential[v] += d_sink if dist[v] > d_sink else dist[v]
        # Augment one unit along the parent chain, toggling assignments.
        v = sink
        while v != source:
            u = parent[v]
            if v == sink:
                hour_load[u - n_households] += 1
            elif u == source:
                remaining[v] -= 1
            elif u < n_households:
                h = v - n_households
                assigned[u].add(h)
                by_hour[h].append(u)
            else:
                h = u - n_households
                assigned[v].discard(h)
                by_hour[h].remove(v)
            v = u

    # The optimum value depends only on the final hour loads:
    # sum_h sum_{k=1..y_h} (2*m_h + 2k - 1) = sum_h (2*m_h*y_h + y_h^2).
    return sum(2 * mh * yh + yh * yh for mh, yh in zip(m, hour_load))


def fast_transportation_bound(
    loads: Sequence[float],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    rating: float,
    sigma: float,
    counts: Optional[Sequence[int]] = None,
) -> float:
    """:func:`transportation_bound` via :func:`brick_flow_cost`.

    Bit-identical to the networkx version (the flow optimum is a unique
    integer and the float expression is unchanged), minus the graph
    build and the network simplex.
    """
    base_cost = sigma * sum(load * load for load in loads)
    total_units = sum(durations)
    if total_units == 0:
        return base_cost
    m = [int(round(float(load) / rating)) for load in loads]
    flow_cost = brick_flow_cost(m, windows, durations, counts)
    return base_cost + sigma * rating * rating * flow_cost


def transportation_bound(
    loads: Sequence[float],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    rating: float,
    sigma: float,
) -> float:
    """Exact bound keeping per-household windows, dropping only contiguity.

    Each remaining household must place ``duration`` one-hour bricks of
    height ``rating``, at most one per hour, only in hours its window
    covers.  Ignoring contiguity, the cheapest such placement is a
    transportation problem.  With one common rating and loads that are
    multiples of it, the marginal cost of the k-th brick in hour h is
    ``sigma * rating**2 * (2*m_h + 2*k - 1)`` with integer ``m_h`` —
    integer costs, solved exactly with min-cost flow (networkx network
    simplex).

    This is the strongest relaxation in the solver but also the priciest
    (tens of milliseconds), so the branch-and-bound search only consults it
    at the root, as an optimality certificate for the warm-start incumbent.

    Args:
        loads: Current hourly loads (multiples of ``rating``).
        windows: Per remaining household, the hour slots its window covers.
        durations: Per remaining household, its duration in hours.
        rating: The common power rating.
        sigma: Quadratic pricing coefficient.

    Returns:
        A lower bound on the total cost of any feasible completion,
        including the cost of the current loads.
    """
    import networkx as nx

    if len(windows) != len(durations):
        raise ValueError("windows and durations must align")
    base_cost = sigma * sum(load * load for load in loads)
    total_units = sum(durations)
    if total_units == 0:
        return base_cost

    # How many bricks could land in each hour at most (one per household).
    hour_capacity = [0] * len(loads)
    for hours in windows:
        for h in hours:
            hour_capacity[h] += 1

    graph = nx.DiGraph()
    graph.add_node("S", demand=-total_units)
    graph.add_node("T", demand=total_units)
    for j, (hours, duration) in enumerate(zip(windows, durations)):
        household = ("hh", j)
        graph.add_edge("S", household, capacity=duration, weight=0)
        for h in hours:
            graph.add_edge(household, ("hour", h), capacity=1, weight=0)
    for h, capacity in enumerate(hour_capacity):
        if capacity == 0:
            continue
        m = int(round(loads[h] / rating))
        for k in range(1, capacity + 1):
            slot = ("slot", h, k)
            graph.add_edge(("hour", h), slot, capacity=1, weight=2 * m + 2 * k - 1)
            graph.add_edge(slot, "T", capacity=1, weight=0)

    flow = nx.min_cost_flow(graph)
    flow_cost = sum(
        flow[u][v] * data["weight"] for u, v, data in graph.edges(data=True)
    )
    return base_cost + sigma * rating * rating * flow_cost


def transportation_solution(
    loads: Sequence[float],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    rating: float,
    sigma: float,
) -> Tuple[float, List[List[int]]]:
    """The transportation bound plus each household's relaxed brick hours.

    Same relaxation as :func:`transportation_bound`, but also extracts the
    optimal flow's per-household hour assignments, which a solver can round
    into a contiguous warm-start schedule.
    """
    import networkx as nx

    base_cost = sigma * sum(load * load for load in loads)
    total_units = sum(durations)
    if total_units == 0:
        return base_cost, [[] for _ in durations]

    hour_capacity = [0] * len(loads)
    for hours in windows:
        for h in hours:
            hour_capacity[h] += 1

    graph = nx.DiGraph()
    graph.add_node("S", demand=-total_units)
    graph.add_node("T", demand=total_units)
    for j, (hours, duration) in enumerate(zip(windows, durations)):
        graph.add_edge("S", ("hh", j), capacity=duration, weight=0)
        for h in hours:
            graph.add_edge(("hh", j), ("hour", h), capacity=1, weight=0)
    for h, capacity in enumerate(hour_capacity):
        if capacity == 0:
            continue
        m = int(round(loads[h] / rating))
        for k in range(1, capacity + 1):
            slot = ("slot", h, k)
            graph.add_edge(("hour", h), slot, capacity=1, weight=2 * m + 2 * k - 1)
            graph.add_edge(slot, "T", capacity=1, weight=0)

    flow = nx.min_cost_flow(graph)
    flow_cost = sum(
        flow[u][v] * data["weight"] for u, v, data in graph.edges(data=True)
    )
    assignments: List[List[int]] = []
    for j, hours in enumerate(windows):
        node = ("hh", j)
        taken = [h for h in hours if flow[node].get(("hour", h), 0) >= 1]
        assignments.append(sorted(taken))
    return base_cost + sigma * rating * rating * flow_cost, assignments


def uncapacitated_flat_bound(
    loads: np.ndarray, energy: float, sigma: float
) -> float:
    """Weaker bound ignoring window capacities (useful as a sanity check)."""
    capacities = np.full_like(loads, float(energy))
    return quadratic_waterfill_bound(loads, energy, capacities, sigma)
