"""Continuous relaxation lower bounds for the allocation problem.

The exact branch-and-bound solver prunes with a *capacitated water-filling*
bound: drop the contiguity constraint and let the remaining households'
energy spread fractionally over the hours their windows cover.  Minimizing
``sigma * sum((l_h + x_h)**2)`` subject to ``0 <= x_h <= c_h`` and
``sum(x_h) = R`` is a classic water-filling problem whose optimum is
``x_h = clip(level - l_h, 0, c_h)`` for a common water level.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def waterfill_levels(
    loads: np.ndarray, energy: float, capacities: np.ndarray, tol: float = 1e-9
) -> np.ndarray:
    """Optimal fractional additions ``x_h`` for the water-filling problem.

    Args:
        loads: Current hourly loads ``l_h``.
        energy: Total energy ``R >= 0`` to distribute.
        capacities: Per-hour caps ``c_h >= 0`` on added load.
        tol: Relative tolerance on meeting the energy total.

    Returns:
        The additions ``x_h``; their sum is ``min(R, sum(c_h))`` up to
        tolerance (never more than ``R``, which keeps bounds conservative).
    """
    if energy <= 0:
        return np.zeros_like(loads)
    total_capacity = float(capacities.sum())
    if total_capacity <= energy:
        # Relaxation cannot even fit the energy; fill every hour to its cap.
        return capacities.astype(float).copy()

    lo = float(loads.min())
    hi = float((loads + capacities).max())
    # Find the water level by bisection: the filled volume is monotone in it.
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        filled = float(np.minimum(np.maximum(mid - loads, 0.0), capacities).sum())
        if filled < energy:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, hi):
            break
    # Use the low side so the filled volume never exceeds R: placing *less*
    # energy costs less under an increasing price, so the bound stays valid.
    return np.minimum(np.maximum(lo - loads, 0.0), capacities)


def quadratic_waterfill_bound(
    loads: np.ndarray, energy: float, capacities: np.ndarray, sigma: float
) -> float:
    """Lower bound on the *total* quadratic cost after placing ``energy``.

    Any feasible completion adds at least ``energy`` kWh inside the capacity
    envelope, and the fractional water-filling placement minimizes the
    convex cost among all such additions, so the returned value never
    exceeds the cost of the best feasible completion.
    """
    additions = waterfill_levels(loads, energy, capacities)
    filled = loads + additions
    return float(sigma * np.dot(filled, filled))


def transportation_bound(
    loads: Sequence[float],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    rating: float,
    sigma: float,
) -> float:
    """Exact bound keeping per-household windows, dropping only contiguity.

    Each remaining household must place ``duration`` one-hour bricks of
    height ``rating``, at most one per hour, only in hours its window
    covers.  Ignoring contiguity, the cheapest such placement is a
    transportation problem.  With one common rating and loads that are
    multiples of it, the marginal cost of the k-th brick in hour h is
    ``sigma * rating**2 * (2*m_h + 2*k - 1)`` with integer ``m_h`` —
    integer costs, solved exactly with min-cost flow (networkx network
    simplex).

    This is the strongest relaxation in the solver but also the priciest
    (tens of milliseconds), so the branch-and-bound search only consults it
    at the root, as an optimality certificate for the warm-start incumbent.

    Args:
        loads: Current hourly loads (multiples of ``rating``).
        windows: Per remaining household, the hour slots its window covers.
        durations: Per remaining household, its duration in hours.
        rating: The common power rating.
        sigma: Quadratic pricing coefficient.

    Returns:
        A lower bound on the total cost of any feasible completion,
        including the cost of the current loads.
    """
    import networkx as nx

    if len(windows) != len(durations):
        raise ValueError("windows and durations must align")
    base_cost = sigma * sum(load * load for load in loads)
    total_units = sum(durations)
    if total_units == 0:
        return base_cost

    # How many bricks could land in each hour at most (one per household).
    hour_capacity = [0] * len(loads)
    for hours in windows:
        for h in hours:
            hour_capacity[h] += 1

    graph = nx.DiGraph()
    graph.add_node("S", demand=-total_units)
    graph.add_node("T", demand=total_units)
    for j, (hours, duration) in enumerate(zip(windows, durations)):
        household = ("hh", j)
        graph.add_edge("S", household, capacity=duration, weight=0)
        for h in hours:
            graph.add_edge(household, ("hour", h), capacity=1, weight=0)
    for h, capacity in enumerate(hour_capacity):
        if capacity == 0:
            continue
        m = int(round(loads[h] / rating))
        for k in range(1, capacity + 1):
            slot = ("slot", h, k)
            graph.add_edge(("hour", h), slot, capacity=1, weight=2 * m + 2 * k - 1)
            graph.add_edge(slot, "T", capacity=1, weight=0)

    flow = nx.min_cost_flow(graph)
    flow_cost = sum(
        flow[u][v] * data["weight"] for u, v, data in graph.edges(data=True)
    )
    return base_cost + sigma * rating * rating * flow_cost


def transportation_solution(
    loads: Sequence[float],
    windows: Sequence[Sequence[int]],
    durations: Sequence[int],
    rating: float,
    sigma: float,
) -> Tuple[float, List[List[int]]]:
    """The transportation bound plus each household's relaxed brick hours.

    Same relaxation as :func:`transportation_bound`, but also extracts the
    optimal flow's per-household hour assignments, which a solver can round
    into a contiguous warm-start schedule.
    """
    import networkx as nx

    base_cost = sigma * sum(load * load for load in loads)
    total_units = sum(durations)
    if total_units == 0:
        return base_cost, [[] for _ in durations]

    hour_capacity = [0] * len(loads)
    for hours in windows:
        for h in hours:
            hour_capacity[h] += 1

    graph = nx.DiGraph()
    graph.add_node("S", demand=-total_units)
    graph.add_node("T", demand=total_units)
    for j, (hours, duration) in enumerate(zip(windows, durations)):
        graph.add_edge("S", ("hh", j), capacity=duration, weight=0)
        for h in hours:
            graph.add_edge(("hh", j), ("hour", h), capacity=1, weight=0)
    for h, capacity in enumerate(hour_capacity):
        if capacity == 0:
            continue
        m = int(round(loads[h] / rating))
        for k in range(1, capacity + 1):
            slot = ("slot", h, k)
            graph.add_edge(("hour", h), slot, capacity=1, weight=2 * m + 2 * k - 1)
            graph.add_edge(slot, "T", capacity=1, weight=0)

    flow = nx.min_cost_flow(graph)
    flow_cost = sum(
        flow[u][v] * data["weight"] for u, v, data in graph.edges(data=True)
    )
    assignments: List[List[int]] = []
    for j, hours in enumerate(windows):
        node = ("hh", j)
        taken = [h for h in hours if flow[node].get(("hour", h), 0) >= 1]
        assignments.append(sorted(taken))
    return base_cost + sigma * rating * rating * flow_cost, assignments


def uncapacitated_flat_bound(
    loads: np.ndarray, energy: float, sigma: float
) -> float:
    """Weaker bound ignoring window capacities (useful as a sanity check)."""
    capacities = np.full_like(loads, float(energy))
    return quadratic_waterfill_bound(loads, energy, capacities, sigma)
