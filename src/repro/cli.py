"""Command-line interface: ``enki-repro <experiment> [options]``.

Examples::

    enki-repro list
    enki-repro fig4 --days 3 --populations 10,20
    enki-repro tab2 --seed 99
    enki-repro all --days 2 --populations 10
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.runner import EXPERIMENTS, run_experiment
from .robustness.errors import ReproError

#: Experiments that accept the social-welfare sweep options.
_SWEEP_EXPERIMENTS = {"fig4", "fig5", "fig6"}

#: Experiments driven by the user-study seed only.
_STUDY_EXPERIMENTS = {"tab2", "tab3", "tab4", "fig8", "fig9"}


def _workers_arg(value: str) -> int:
    """Argparse type for ``--workers``: reject nonsense below ``-1`` early."""
    workers = int(value)
    if workers < -1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= -1 (0 or -1 = all cores), got {workers}"
        )
    return workers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="enki-repro",
        description=(
            "Regenerate the tables and figures of 'A Mechanism for "
            "Cooperative Demand-Side Management' (Enki, ICDCS 2017)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', 'list', 'simulate', 'city'",
    )
    parser.add_argument(
        "--n", type=int, default=20, help="households (simulate/city)"
    )
    parser.add_argument(
        "--audit",
        type=str,
        default=None,
        help="JSONL audit log path (simulate/city)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=8,
        help="shards the city is split into (city)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="ingestion queue high watermark before backpressure (city)",
    )
    parser.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-shard wall-clock deadline on the primary pool (city)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "ingest the city as an interleaved out-of-order report stream "
            "(columnar micro-batching) instead of whole-shard arrays; "
            "settlements are digest-identical either way (city)"
        ),
    )
    parser.add_argument(
        "--stream-chunk",
        type=int,
        default=4096,
        help="rows per streamed report chunk with --stream (city)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed override")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        help=(
            "worker processes for the day/session fan-out (1 = serial, "
            "0 = all cores); results are identical for any value"
        ),
    )
    parser.add_argument(
        "--bnb-workers",
        type=_workers_arg,
        default=None,
        help=(
            "worker processes for the exact solver's subtree fan-out "
            "(fig4/fig5/fig6; 1 = serial, 0 = all cores); completed runs "
            "are bit-identical to serial"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help=(
            "JSONL checkpoint file: each simulated day is persisted as it "
            "completes (fig4/fig5/fig6/simulate)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --checkpoint, replay the days already in the store "
            "instead of recomputing them; without it an existing store "
            "is discarded"
        ),
    )
    parser.add_argument(
        "--quarantine",
        choices=("reject", "clamp", "exclude"),
        default=None,
        help="screen reports through a quarantine policy (simulate)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="print full tracebacks instead of one-line error summaries",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the subcommand under cProfile: print the top-25 "
            "cumulative-time entries and write a .pstats dump next to the "
            "--save output (or into the working directory)"
        ),
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "run days on the columnar (structure-of-arrays) fast path "
            "(fig4/fig5/fig6/simulate); required for very large --n, uses "
            "its own sampling substream"
        ),
    )
    parser.add_argument(
        "--batch-days",
        type=int,
        default=None,
        help=(
            "columnar-only: fuse up to this many consecutive days per "
            "worker task into batched array passes "
            "(fig4/fig5/fig6/simulate); results are bit-identical to the "
            "per-day path"
        ),
    )
    parser.add_argument(
        "--alloc-cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "memoize allocations under a digest of the compiled problem "
            "(fig4/fig5/fig6 with --columnar, fig7); with no value the "
            "cache lives in memory, with DIR results also persist on disk "
            "for cross-run reuse; replays are byte-identical"
        ),
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "numba", "python"),
        default=None,
        help=(
            "hot-loop kernel backend: 'numba' forces the JIT build, "
            "'python' forces the pure-python fallback, 'auto' (default) "
            "uses numba when importable; both are bit-identical — only "
            "speed changes"
        ),
    )
    parser.add_argument(
        "--days", type=int, default=None, help="simulated days per setting"
    )
    parser.add_argument(
        "--populations",
        type=str,
        default=None,
        help="comma-separated population sizes (fig4/fig5/fig6)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="repeats per candidate (fig7)"
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="exact-solver time limit in seconds (fig4/fig5/fig6)",
    )
    parser.add_argument(
        "--save",
        type=str,
        default=None,
        help="also write the rendered table(s) to this text file",
    )
    parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also write the table as CSV to this file (single experiment only)",
    )
    return parser


def _alloc_cache_for(args: argparse.Namespace):
    """Build the ``--alloc-cache`` store (``""`` = memory-only)."""
    if args.alloc_cache is None:
        return None
    from .allocation.cache import AllocationCache

    return AllocationCache(directory=args.alloc_cache or None)


def _overrides_for(experiment_id: str, args: argparse.Namespace) -> dict:
    overrides: dict = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workers is not None and experiment_id in (
        _SWEEP_EXPERIMENTS | _STUDY_EXPERIMENTS
    ):
        overrides["workers"] = args.workers
    if experiment_id in _SWEEP_EXPERIMENTS:
        if args.days is not None:
            overrides["days"] = args.days
        if args.populations is not None:
            overrides["populations"] = tuple(
                int(part) for part in args.populations.split(",") if part
            )
        if args.time_limit is not None:
            overrides["optimal_time_limit_s"] = args.time_limit
        if args.checkpoint is not None:
            overrides["checkpoint_path"] = args.checkpoint
            overrides["resume"] = args.resume
        if args.columnar:
            overrides["columnar"] = True
        if args.bnb_workers is not None:
            overrides["bnb_workers"] = args.bnb_workers
        if args.batch_days is not None and args.columnar:
            overrides["batch_days"] = args.batch_days
        cache = _alloc_cache_for(args)
        if cache is not None and args.columnar:
            overrides["alloc_cache"] = cache
    if experiment_id == "fig7":
        if args.repeats is not None:
            overrides["repeats"] = args.repeats
        cache = _alloc_cache_for(args)
        if cache is not None:
            overrides["alloc_cache"] = cache
    if experiment_id in {"abl-order", "abl-pricing"} and args.days is not None:
        overrides["days"] = args.days
    return overrides


def _simulate(args: argparse.Namespace) -> int:
    """Run a multi-day §VI neighborhood and print the daily ledger."""
    import numpy as np

    from .core.mechanism import EnkiMechanism
    from .io.audit import AuditLog
    from .robustness.checkpoint import CheckpointStore
    from .robustness.quarantine import Quarantine
    from .sim.engine import NeighborhoodSimulation
    from .sim.profiles import ProfileGenerator, neighborhood_from_profiles
    from .sim.results import format_table

    seed = args.seed if args.seed is not None else 2017
    days = args.days if args.days is not None else 7
    generator = ProfileGenerator()
    quarantine = Quarantine(args.quarantine) if args.quarantine else None
    if args.columnar and args.checkpoint:
        print("--columnar does not support --checkpoint", file=sys.stderr)
        return 2
    if args.columnar and args.audit:
        print("--columnar does not support --audit", file=sys.stderr)
        return 2
    if args.columnar:
        cols = generator.sample_population_columnar(
            np.random.default_rng(seed), args.n
        )
        neighborhood = cols.to_neighborhood("wide")
        checkpoint = None
    else:
        profiles = generator.sample_population(np.random.default_rng(seed), args.n)
        neighborhood = neighborhood_from_profiles(profiles, "wide")
        checkpoint = (
            CheckpointStore(args.checkpoint, fresh=not args.resume)
            if args.checkpoint
            else None
        )
    simulation = NeighborhoodSimulation(
        EnkiMechanism(seed=seed, quarantine=quarantine),
        columnar=args.columnar,
    )
    outcomes = simulation.run(
        neighborhood,
        days=days,
        seed=seed,
        workers=args.workers if args.workers is not None else 1,
        checkpoint=checkpoint,
        batch_days=args.batch_days if args.batch_days is not None else 1,
    )

    audit = AuditLog(args.audit) if args.audit else None
    rows = []
    for day, outcome in enumerate(outcomes):
        settlement = outcome.settlement
        if args.columnar:
            defectors = int(
                (outcome.consumption_starts != outcome.allocation_starts).sum()
            )
        else:
            defectors = sum(
                1 for hid in outcome.allocation if outcome.defected(hid)
            )
        rows.append(
            (
                day,
                f"{settlement.total_cost:.1f}",
                f"{settlement.neighborhood_utility:.2f}",
                f"{settlement.load_profile.peak_kw:.1f}",
                f"{settlement.load_profile.peak_to_average_ratio():.2f}",
                defectors,
            )
        )
        if audit is not None:
            audit.log_day(day, outcome)
    print(
        format_table(
            ["day", "cost ($)", "surplus ($)", "peak (kW)", "PAR", "defectors"],
            rows,
        )
    )
    if audit is not None:
        print(f"audit log written to {args.audit}")
    return 0


def _city(args: argparse.Namespace) -> int:
    """Settle a sharded city through the supervised shard service."""
    from collections import Counter

    from .io.audit import AuditLog
    from .mechanisms.enki import serving_mechanism
    from .robustness.checkpoint import CheckpointStore
    from .service import serve_city
    from .sim.results import format_table

    seed = args.seed if args.seed is not None else 2017
    journal = (
        CheckpointStore(args.checkpoint, fresh=not args.resume)
        if args.checkpoint
        else None
    )
    audit = AuditLog(args.audit) if args.audit else None
    mechanism = serving_mechanism(
        seed=seed,
        quarantine_policy=args.quarantine if args.quarantine else "clamp",
    )
    result = serve_city(
        n=args.n,
        shards=args.shards,
        workers=args.workers if args.workers is not None else 1,
        seed=seed,
        mechanism=mechanism,
        queue_capacity=args.queue_capacity,
        deadline_s=args.deadline_s,
        journal=journal,
        audit=audit,
        stream=args.stream,
        stream_chunk=args.stream_chunk,
    )
    tiers = Counter(record.served_tier for record in result.records.values())
    rows = [
        ("shards settled", result.settled),
        ("households", result.n_households),
        ("degraded shards", len(result.degraded)),
        ("replayed from journal", len(result.replayed)),
        ("overload rejections", result.overload_rejections),
        ("pool replacements", result.pool_replacements),
        ("tiers served", ", ".join(f"{t}:{c}" for t, c in sorted(tiers.items()))),
        ("budget balanced (Thm 1)", "yes" if result.all_budget_balanced() else "NO"),
        ("wall time (s)", f"{result.wall_time_s:.2f}"),
    ]
    print(format_table(["metric", "value"], rows))
    if audit is not None:
        print(f"audit log written to {args.audit}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Robustness failures (:class:`~repro.robustness.errors.ReproError`)
    exit with their class's distinct code and a one-line message;
    ``--debug`` surfaces the full traceback instead.
    """
    args = _build_parser().parse_args(argv)
    if args.kernels is not None:
        from .kernels import set_backend

        set_backend(args.kernels)
    try:
        if args.profile:
            return _profiled_dispatch(args)
        return _dispatch(args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return exc.exit_code


def _profile_dump_path(args: argparse.Namespace) -> str:
    """Where the ``.pstats`` dump goes: next to the output, else the cwd."""
    import os

    anchor = args.save or args.csv
    if anchor:
        return os.path.splitext(anchor)[0] + ".pstats"
    return f"{args.experiment}.pstats"


def _profiled_dispatch(args: argparse.Namespace) -> int:
    """Run ``_dispatch`` under cProfile (the ``--profile`` flag).

    Prints the 25 heaviest entries by cumulative time — the hot-path view
    that pointed at the allocator in the first place — and writes the raw
    stats next to the output for later ``pstats``/``snakeviz`` digging.

    With ``--workers`` above 1, each worker process dumps its own
    ``worker-<pid>.pstats`` into a sibling directory; those are merged
    into the printed report and the final dump, so time spent inside the
    fan-out is attributed rather than vanishing into ``map_tasks``.
    """
    import cProfile
    import glob
    import os
    import pstats

    from .sim.parallel import WORKER_PROFILE_DIR_ENV as _WORKER_PROFILE_DIR_ENV

    dump_path = _profile_dump_path(args)
    worker_dir = os.path.splitext(dump_path)[0] + "-workers"
    os.environ[_WORKER_PROFILE_DIR_ENV] = worker_dir
    profiler = cProfile.Profile()
    try:
        exit_code = profiler.runcall(_dispatch, args)
    finally:
        os.environ.pop(_WORKER_PROFILE_DIR_ENV, None)
        profiler.create_stats()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        worker_dumps = sorted(glob.glob(os.path.join(worker_dir, "worker-*.pstats")))
        for worker_dump in worker_dumps:
            stats.add(worker_dump)
        stats.sort_stats("cumulative").print_stats(25)
        stats.dump_stats(dump_path)
        print(f"profile written to {dump_path}")
        if worker_dumps:
            print(
                f"merged {len(worker_dumps)} worker profile(s) from {worker_dir}"
            )
    return exit_code


def _dispatch(args: argparse.Namespace) -> int:
    """Route a parsed command line to its experiment or subcommand."""
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.batch_days is not None and args.batch_days < 1:
        print("--batch-days must be >= 1", file=sys.stderr)
        return 2
    if args.batch_days is not None and args.batch_days > 1 and not args.columnar:
        print("--batch-days requires --columnar", file=sys.stderr)
        return 2
    if (
        args.alloc_cache is not None
        and args.experiment in _SWEEP_EXPERIMENTS
        and not args.columnar
    ):
        print(
            "--alloc-cache with fig4/fig5/fig6 requires --columnar",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    if args.experiment == "simulate":
        return _simulate(args)

    if args.experiment == "city":
        return _city(args)

    if args.experiment == "all":
        chunks = []
        for experiment_id in EXPERIMENTS:
            report = run_experiment(
                experiment_id, **_overrides_for(experiment_id, args)
            )
            chunk = f"== {report.experiment_id} ==\n{report.rendered}\n"
            print(chunk)
            chunks.append(chunk)
        if args.save:
            with open(args.save, "w", encoding="utf-8") as handle:
                handle.write("\n".join(chunks))
        return 0

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr
        )
        return 2

    report = run_experiment(args.experiment, **_overrides_for(args.experiment, args))
    print(report.rendered)
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(report.rendered + "\n")
    if args.csv:
        from .io.csvout import table_text_to_csv

        # Convert only the leading table block (some renders add footers).
        lines = report.rendered.splitlines()
        table_lines = []
        for index, line in enumerate(lines):
            if index >= 2 and not line.strip():
                break
            table_lines.append(line)
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(table_text_to_csv("\n".join(table_lines)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
