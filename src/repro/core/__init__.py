"""Enki's core: types, scores, payments and the mechanism itself."""

from .defection import defection_score, defection_scores, overlap_fraction
from .flexibility import (
    flexibility_score,
    predicted_flexibility,
    realized_flexibility,
    window_coverage,
)
from .intervals import HOURS, HOURS_PER_DAY, Interval, IntervalError, block, feasible_starts
from .payments import (
    DEFAULT_XI,
    neighborhood_utility,
    payments,
    proportional_payments,
)
from .social_cost import DEFAULT_K, normalized_shares, social_cost_scores
from .types import (
    DEFAULT_RATING_KW,
    AllocationMap,
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
    validate_allocation,
    validate_consumption,
)
from .utility import household_utilities, household_utility
from .valuation import (
    household_valuation,
    max_valuation,
    satisfied_hours,
    valuation,
)

# The mechanism module depends on repro.allocation, which itself imports the
# sibling modules above; exposing it lazily (PEP 562) breaks that cycle.
_MECHANISM_EXPORTS = (
    "DayOutcome",
    "EnkiMechanism",
    "Settlement",
    "closest_feasible_consumption",
    "default_consumption",
    "truthful_reports",
)


def __getattr__(name):
    if name in _MECHANISM_EXPORTS:
        from . import mechanism

        return getattr(mechanism, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "HOURS",
    "HOURS_PER_DAY",
    "Interval",
    "IntervalError",
    "block",
    "feasible_starts",
    "DEFAULT_RATING_KW",
    "AllocationMap",
    "ConsumptionMap",
    "HouseholdId",
    "HouseholdType",
    "Neighborhood",
    "Preference",
    "Report",
    "validate_allocation",
    "validate_consumption",
    "valuation",
    "max_valuation",
    "satisfied_hours",
    "household_valuation",
    "flexibility_score",
    "predicted_flexibility",
    "realized_flexibility",
    "window_coverage",
    "defection_score",
    "defection_scores",
    "overlap_fraction",
    "DEFAULT_K",
    "normalized_shares",
    "social_cost_scores",
    "DEFAULT_XI",
    "payments",
    "proportional_payments",
    "neighborhood_utility",
    "household_utility",
    "household_utilities",
    "EnkiMechanism",
    "Settlement",
    "DayOutcome",
    "truthful_reports",
    "default_consumption",
    "closest_feasible_consumption",
]
