"""Columnar (structure-of-arrays) views of a neighborhood and its reports.

The object model (:class:`~repro.core.types.HouseholdType`,
:class:`~repro.core.types.Report`) is one Python object per household —
fine at the paper's n <= 50, but at 100k households a simulated day spends
its time churning objects rather than doing arithmetic.  This module keeps
a whole neighborhood as a handful of parallel numpy arrays plus an id
vector, and lowers reports straight into the allocators'
:class:`~repro.allocation.arrays.CompiledProblem` without materializing a
single ``HouseholdType`` or ``Report``.

Both representations describe the same mechanism; ``to_objects()`` /
``from_objects()`` bridge between them, and
``tests/test_columnar_equivalence.py`` pins that a day computed on either
path is bit-identical on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..allocation.arrays import CompiledProblem
from ..pricing.base import PricingModel
from .intervals import HOURS_PER_DAY, Interval
from .types import (
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
)


def _as_index_array(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.intp)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def _check_windows(
    start: np.ndarray, end: np.ndarray, duration: np.ndarray, what: str
) -> None:
    """Vectorized counterpart of ``Preference``'s validation."""
    n = start.shape[0]
    if not (end.shape[0] == duration.shape[0] == n):
        raise ValueError(f"{what} arrays disagree on length")
    if n == 0:
        return
    if int(duration.min()) < 1:
        raise ValueError(f"{what} durations must be >= 1")
    if int(start.min()) < 0 or int(end.max()) > HOURS_PER_DAY:
        raise ValueError(f"{what} windows must lie within [0, {HOURS_PER_DAY}]")
    if bool(np.any(end - start < duration)):
        raise ValueError(f"{what} window shorter than duration")


@dataclass(frozen=True)
class ColumnarNeighborhood:
    """A neighborhood as parallel arrays: one row per household.

    ``true_start``/``true_end``/``duration`` hold the true preference
    windows (``chi_i``), ``rating`` the power ratings ``r`` and
    ``valuation`` the willingness-to-pay factors ``rho_i``.  Row order is
    the neighborhood's insertion order; ``ids[i]`` names row ``i``.
    """

    ids: Tuple[HouseholdId, ...]
    true_start: np.ndarray
    true_end: np.ndarray
    duration: np.ndarray
    rating: np.ndarray
    valuation: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "true_start", _as_index_array(self.true_start, "true_start"))
        object.__setattr__(self, "true_end", _as_index_array(self.true_end, "true_end"))
        object.__setattr__(self, "duration", _as_index_array(self.duration, "duration"))
        object.__setattr__(
            self, "rating", np.ascontiguousarray(self.rating, dtype=np.float64)
        )
        object.__setattr__(
            self, "valuation", np.ascontiguousarray(self.valuation, dtype=np.float64)
        )
        n = len(self.ids)
        for name in ("true_start", "true_end", "duration", "rating", "valuation"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} has {getattr(self, name).shape[0]} rows for {n} ids")
        if len(set(self.ids)) != n:
            raise ValueError("duplicate household ids in columnar neighborhood")
        _check_windows(self.true_start, self.true_end, self.duration, "true preference")
        if n and (float(self.rating.min()) <= 0 or float(self.valuation.min()) <= 0):
            raise ValueError("ratings and valuation factors must be positive")

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_objects(cls, neighborhood: Neighborhood) -> "ColumnarNeighborhood":
        """Lower an object :class:`Neighborhood` (insertion order kept)."""
        n = len(neighborhood)
        households = list(neighborhood)
        return cls(
            ids=tuple(hh.household_id for hh in households),
            true_start=np.fromiter(
                (hh.true_preference.window.start for hh in households), np.intp, count=n
            ),
            true_end=np.fromiter(
                (hh.true_preference.window.end for hh in households), np.intp, count=n
            ),
            duration=np.fromiter(
                (hh.true_preference.duration for hh in households), np.intp, count=n
            ),
            rating=np.fromiter((hh.rating_kw for hh in households), np.float64, count=n),
            valuation=np.fromiter(
                (hh.valuation_factor for hh in households), np.float64, count=n
            ),
        )

    @classmethod
    def from_trusted(
        cls,
        ids: Tuple[HouseholdId, ...],
        true_start: np.ndarray,
        true_end: np.ndarray,
        duration: np.ndarray,
        rating: np.ndarray,
        valuation: np.ndarray,
    ) -> "ColumnarNeighborhood":
        """Adopt pre-validated arrays as-is, skipping ``__post_init__``.

        For zero-copy reconstruction of views over shared memory
        (:mod:`repro.sim.shm`): the arrays were validated when the source
        neighborhood was built, and re-validating (or the implicit
        ``ascontiguousarray``) would defeat the no-copy transport.  The
        caller guarantees dtype, contiguity and invariants.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "true_start", true_start)
        object.__setattr__(self, "true_end", true_end)
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "rating", rating)
        object.__setattr__(self, "valuation", valuation)
        return self

    def truthful_wire(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The truthful reports in wire form: three fresh float64 arrays.

        What every household would put on the wire if it reported its true
        window — the raw-array analogue of
        :meth:`ColumnarReports.truthful`, used by the service drivers and
        the streaming report generator.
        """
        return (
            self.true_start.astype(np.float64),
            self.true_end.astype(np.float64),
            self.duration.astype(np.float64),
        )

    def take(self, keep: np.ndarray) -> "ColumnarNeighborhood":
        """The subset of rows selected by boolean mask ``keep``."""
        idx = np.flatnonzero(keep)
        return ColumnarNeighborhood(
            ids=tuple(self.ids[i] for i in idx.tolist()),
            true_start=self.true_start[idx],
            true_end=self.true_end[idx],
            duration=self.duration[idx],
            rating=self.rating[idx],
            valuation=self.valuation[idx],
        )

    def to_objects(self) -> Neighborhood:
        """Materialize the object :class:`Neighborhood`, same row order."""
        return Neighborhood.of(
            *(
                HouseholdType(
                    household_id=hid,
                    true_preference=Preference(Interval(a, b), v),
                    valuation_factor=rho,
                    rating_kw=r,
                )
                for hid, a, b, v, r, rho in zip(
                    self.ids,
                    self.true_start.tolist(),
                    self.true_end.tolist(),
                    self.duration.tolist(),
                    self.rating.tolist(),
                    self.valuation.tolist(),
                )
            )
        )


@dataclass(frozen=True)
class ColumnarReports:
    """Declared preference windows as parallel arrays, one row per report.

    Durations are reported truthfully in the paper's model, so a report
    row is just a window; rows are parallel to the neighborhood they were
    built against (``ids`` repeats the household ids for self-description
    and the bridges).
    """

    ids: Tuple[HouseholdId, ...]
    start: np.ndarray
    end: np.ndarray
    duration: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", _as_index_array(self.start, "start"))
        object.__setattr__(self, "end", _as_index_array(self.end, "end"))
        object.__setattr__(self, "duration", _as_index_array(self.duration, "duration"))
        n = len(self.ids)
        for name in ("start", "end", "duration"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} has {getattr(self, name).shape[0]} rows for {n} ids")
        _check_windows(self.start, self.end, self.duration, "report")

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def truthful(cls, neighborhood: ColumnarNeighborhood) -> "ColumnarReports":
        """Every household reports its true window (the Figures 4-6 setting)."""
        return cls(
            ids=neighborhood.ids,
            start=neighborhood.true_start.copy(),
            end=neighborhood.true_end.copy(),
            duration=neighborhood.duration.copy(),
        )

    @classmethod
    def from_trusted(
        cls,
        ids: Tuple[HouseholdId, ...],
        start: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
    ) -> "ColumnarReports":
        """Adopt pre-validated arrays as-is, skipping ``__post_init__``.

        Same contract as :meth:`ColumnarNeighborhood.from_trusted`: used
        for zero-copy shared-memory views of already-validated rows.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        object.__setattr__(self, "duration", duration)
        return self

    @classmethod
    def from_objects(
        cls, reports: Mapping[HouseholdId, Report]
    ) -> "ColumnarReports":
        """Lower an object report map (iteration order kept)."""
        n = len(reports)
        return cls(
            ids=tuple(reports.keys()),
            start=np.fromiter(
                (r.preference.window.start for r in reports.values()), np.intp, count=n
            ),
            end=np.fromiter(
                (r.preference.window.end for r in reports.values()), np.intp, count=n
            ),
            duration=np.fromiter(
                (r.preference.duration for r in reports.values()), np.intp, count=n
            ),
        )

    def to_objects(self) -> Dict[HouseholdId, Report]:
        """Materialize object :class:`Report`s, same row order."""
        return {
            hid: Report(hid, Preference(Interval(a, b), v))
            for hid, a, b, v in zip(
                self.ids, self.start.tolist(), self.end.tolist(), self.duration.tolist()
            )
        }

    def compile(
        self, neighborhood: ColumnarNeighborhood, pricing: PricingModel
    ) -> CompiledProblem:
        """Lower these reports straight into a :class:`CompiledProblem`.

        The columnar analogue of ``AllocationProblem.from_reports`` +
        ``compile_problem``, with no intermediate objects: the reports
        supply the windows and durations, the neighborhood the ratings.
        """
        if self.ids != neighborhood.ids:
            raise ValueError("reports and neighborhood rows are not aligned")
        return CompiledProblem.from_arrays(
            ids=self.ids,
            win_start=self.start,
            win_end=self.end,
            duration=self.duration,
            rating=neighborhood.rating,
            pricing=pricing,
        )

    def take(self, keep: np.ndarray) -> "ColumnarReports":
        """The subset of rows selected by boolean mask ``keep``."""
        idx = np.flatnonzero(keep)
        return ColumnarReports(
            ids=tuple(self.ids[i] for i in idx.tolist()),
            start=self.start[idx],
            end=self.end[idx],
            duration=self.duration[idx],
        )


@dataclass(frozen=True)
class ColumnarDayBatch:
    """D days' neighborhoods stacked day-major into one ragged SoA.

    The batched engine's transport form: ``offsets`` is a ``D + 1``
    boundary vector and rows ``offsets[k]:offsets[k + 1]`` of every
    stacked column belong to day ``k`` (in that day's row order), so a
    whole study chunk flows through the fused kernels as a handful of
    array passes.  ``ids`` stays per-day (fixed-n batches share one
    tuple, so stacking it would only burn memory).

    Built from already-validated :class:`ColumnarNeighborhood` days;
    :meth:`neighborhood` reconstructs day ``k`` as a zero-copy
    ``from_trusted`` view over the stacked columns.
    """

    ids: Tuple[Tuple[HouseholdId, ...], ...]
    offsets: np.ndarray
    true_start: np.ndarray
    true_end: np.ndarray
    duration: np.ndarray
    rating: np.ndarray
    valuation: np.ndarray

    @classmethod
    def from_neighborhoods(
        cls, days: Sequence[ColumnarNeighborhood]
    ) -> "ColumnarDayBatch":
        """Stack validated per-day neighborhoods (day order kept)."""
        offsets = np.zeros(len(days) + 1, dtype=np.intp)
        np.cumsum([len(day) for day in days], out=offsets[1:])
        return cls(
            ids=tuple(day.ids for day in days),
            offsets=offsets,
            true_start=np.concatenate([day.true_start for day in days]),
            true_end=np.concatenate([day.true_end for day in days]),
            duration=np.concatenate([day.duration for day in days]),
            rating=np.concatenate([day.rating for day in days]),
            valuation=np.concatenate([day.valuation for day in days]),
        )

    @property
    def n_days(self) -> int:
        return len(self.ids)

    @property
    def total(self) -> int:
        """Total stacked rows, Σ nᵢ over the D days."""
        return int(self.offsets[-1])

    def day_slice(self, k: int) -> slice:
        """The stacked-row slice of day ``k``."""
        return slice(int(self.offsets[k]), int(self.offsets[k + 1]))

    def neighborhood(self, k: int) -> ColumnarNeighborhood:
        """Day ``k`` as a zero-copy :class:`ColumnarNeighborhood` view."""
        rows = self.day_slice(k)
        return ColumnarNeighborhood.from_trusted(
            ids=self.ids[k],
            true_start=self.true_start[rows],
            true_end=self.true_end[rows],
            duration=self.duration[rows],
            rating=self.rating[rows],
            valuation=self.valuation[rows],
        )
