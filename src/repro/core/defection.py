"""Defection scores (Eq. 5 and Example 4).

``delta_i = (kappa(s_{-i} ∪ omega_i) - kappa(s)) / e^{o_i}``

where ``kappa(s_{-i} ∪ omega_i)`` is the neighborhood's cost if everyone
except *i* followed their allocation while *i* consumed as it actually did,
``kappa(s)`` is the all-cooperate cost, and ``o_i`` is the overlap fraction
between *i*'s consumption and its allocation.  A household that follows its
allocation has ``delta_i = 0``; a defector pays more the further (and the
more harmfully) it strays.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from .intervals import Interval
from .types import AllocationMap, ConsumptionMap, HouseholdId, HouseholdType


def overlap_fraction(allocation: Interval, consumption: Interval) -> float:
    """The paper's ``o_i = |s_i ∩ omega_i| / v_i`` in ``[0, 1]``.

    Both intervals have the household's duration, so a full match gives 1
    and disjoint intervals give 0 (e.g. ``s=(14,18)``, ``omega=(15,19)``
    gives ``o = 3/4``).
    """
    if allocation.length != consumption.length:
        raise ValueError(
            f"allocation {allocation} and consumption {consumption} have different durations"
        )
    if allocation.length == 0:
        raise ValueError("cannot take the overlap fraction of empty intervals")
    return allocation.overlap(consumption) / allocation.length


def defection_score(
    household_id: HouseholdId,
    allocation: AllocationMap,
    consumption: ConsumptionMap,
    types: Mapping[HouseholdId, HouseholdType],
    pricing: PricingModel,
    clamp_negative: bool = True,
) -> float:
    """Eq. 5 for one household.

    Args:
        household_id: The household being scored.
        allocation: The full allocation ``s``.
        consumption: The realized consumption ``omega``.
        types: Household types (for per-household power ratings).
        pricing: Neighborhood pricing model for ``kappa``.
        clamp_negative: When True (default, matching the paper's reading
            that ``delta_i > 0`` iff the household misreports and defects),
            a deviation that happens to *lower* cost still scores 0 rather
            than a negative value.

    Returns:
        The (non-negative, unless unclamped) defection score ``delta_i``.
    """
    own_allocation = allocation[household_id]
    own_consumption = consumption[household_id]
    if own_consumption == own_allocation:
        return 0.0

    cooperative_cost = pricing.schedule_cost(allocation, types)
    deviated = dict(allocation)
    deviated[household_id] = own_consumption
    deviated_cost = pricing.schedule_cost(deviated, types)

    overlap = overlap_fraction(own_allocation, own_consumption)
    score = (deviated_cost - cooperative_cost) / math.exp(overlap)
    if clamp_negative:
        score = max(score, 0.0)
    return score


def defection_scores(
    allocation: AllocationMap,
    consumption: ConsumptionMap,
    types: Mapping[HouseholdId, HouseholdType],
    pricing: PricingModel,
    clamp_negative: bool = True,
) -> Dict[HouseholdId, float]:
    """Eq. 5 for every household, sharing the cooperative-cost baseline.

    Computes ``kappa(s)`` once and evaluates each household's unilateral
    deviation incrementally, so settlement stays O(n) full-cost evaluations
    rather than O(n) schedule rebuilds.
    """
    base_profile = LoadProfile.from_schedule(allocation, types)
    cooperative_cost = pricing.cost(base_profile)

    scores: Dict[HouseholdId, float] = {}
    for hid in allocation:
        own_allocation = allocation[hid]
        own_consumption = consumption[hid]
        if own_consumption == own_allocation:
            scores[hid] = 0.0
            continue
        rating = types[hid].rating_kw
        profile = base_profile.copy()
        profile.remove(own_allocation, rating)
        profile.add(own_consumption, rating)
        deviated_cost = pricing.cost(profile)
        overlap = overlap_fraction(own_allocation, own_consumption)
        score = (deviated_cost - cooperative_cost) / math.exp(overlap)
        scores[hid] = max(score, 0.0) if clamp_negative else score
    return scores
