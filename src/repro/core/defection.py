"""Defection scores (Eq. 5 and Example 4).

``delta_i = (kappa(s_{-i} ∪ omega_i) - kappa(s)) / e^{o_i}``

where ``kappa(s_{-i} ∪ omega_i)`` is the neighborhood's cost if everyone
except *i* followed their allocation while *i* consumed as it actually did,
``kappa(s)`` is the all-cooperate cost, and ``o_i`` is the overlap fraction
between *i*'s consumption and its allocation.  A household that follows its
allocation has ``delta_i = 0``; a defector pays more the further (and the
more harmfully) it strays.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np

from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from .intervals import HOURS_PER_DAY, Interval
from .types import AllocationMap, ConsumptionMap, HouseholdId, HouseholdType


def overlap_fraction(allocation: Interval, consumption: Interval) -> float:
    """The paper's ``o_i = |s_i ∩ omega_i| / v_i`` in ``[0, 1]``.

    Both intervals have the household's duration, so a full match gives 1
    and disjoint intervals give 0 (e.g. ``s=(14,18)``, ``omega=(15,19)``
    gives ``o = 3/4``).
    """
    if allocation.length != consumption.length:
        raise ValueError(
            f"allocation {allocation} and consumption {consumption} have different durations"
        )
    if allocation.length == 0:
        raise ValueError("cannot take the overlap fraction of empty intervals")
    return allocation.overlap(consumption) / allocation.length


def defection_score(
    household_id: HouseholdId,
    allocation: AllocationMap,
    consumption: ConsumptionMap,
    types: Mapping[HouseholdId, HouseholdType],
    pricing: PricingModel,
    clamp_negative: bool = True,
) -> float:
    """Eq. 5 for one household.

    Args:
        household_id: The household being scored.
        allocation: The full allocation ``s``.
        consumption: The realized consumption ``omega``.
        types: Household types (for per-household power ratings).
        pricing: Neighborhood pricing model for ``kappa``.
        clamp_negative: When True (default, matching the paper's reading
            that ``delta_i > 0`` iff the household misreports and defects),
            a deviation that happens to *lower* cost still scores 0 rather
            than a negative value.

    Returns:
        The (non-negative, unless unclamped) defection score ``delta_i``.
    """
    own_allocation = allocation[household_id]
    own_consumption = consumption[household_id]
    if own_consumption == own_allocation:
        return 0.0

    cooperative_cost = pricing.schedule_cost(allocation, types)
    deviated = dict(allocation)
    deviated[household_id] = own_consumption
    deviated_cost = pricing.schedule_cost(deviated, types)

    overlap = overlap_fraction(own_allocation, own_consumption)
    score = (deviated_cost - cooperative_cost) / math.exp(overlap)
    if clamp_negative:
        score = max(score, 0.0)
    return score


def defection_vector(
    alloc_starts: np.ndarray,
    alloc_ends: np.ndarray,
    cons_starts: np.ndarray,
    cons_ends: np.ndarray,
    ratings: np.ndarray,
    pricing: PricingModel,
    clamp_negative: bool = True,
) -> np.ndarray:
    """Eq. 5 for every household at once from parallel interval arrays.

    Builds the cooperative profile with one difference-array pass, then
    evaluates every defector's unilateral-deviation profile as one batched
    cost call (:meth:`~repro.pricing.base.PricingModel.cost_batch`), so
    settlement does O(1) pricing evaluations instead of one per defector.
    """
    n = len(alloc_starts)
    scores = np.zeros(n, dtype=float)
    if n == 0:
        return scores

    alloc_lengths = alloc_ends - alloc_starts
    cons_lengths = cons_ends - cons_starts
    mismatched = np.flatnonzero(alloc_lengths != cons_lengths)
    if mismatched.size:
        bad = int(mismatched[0])
        raise ValueError(
            f"allocation [{int(alloc_starts[bad])}, {int(alloc_ends[bad])}) and "
            f"consumption [{int(cons_starts[bad])}, {int(cons_ends[bad])}) have "
            "different durations"
        )
    if np.any(alloc_lengths == 0):
        raise ValueError("cannot take the overlap fraction of empty intervals")

    base_profile = LoadProfile.from_arrays(alloc_starts, alloc_ends, ratings)
    cooperative_cost = pricing.cost(base_profile)

    defected = (alloc_starts != cons_starts) | (alloc_ends != cons_ends)
    defectors = np.flatnonzero(defected)
    if defectors.size == 0:
        return scores

    # One difference-array row per defector: move its block from the
    # allocation to the consumption on top of the cooperative baseline.
    rows = np.arange(defectors.size)
    deltas = np.zeros((defectors.size, HOURS_PER_DAY + 1), dtype=float)
    defector_ratings = ratings[defectors]
    np.add.at(deltas, (rows, alloc_starts[defectors]), -defector_ratings)
    np.add.at(deltas, (rows, alloc_ends[defectors]), defector_ratings)
    np.add.at(deltas, (rows, cons_starts[defectors]), defector_ratings)
    np.add.at(deltas, (rows, cons_ends[defectors]), -defector_ratings)
    deviated_loads = base_profile.as_array()[None, :] + np.cumsum(
        deltas[:, :HOURS_PER_DAY], axis=1
    )
    deviated_costs = pricing.cost_batch(deviated_loads)

    overlaps = np.clip(
        np.minimum(alloc_ends[defectors], cons_ends[defectors])
        - np.maximum(alloc_starts[defectors], cons_starts[defectors]),
        0,
        None,
    ) / alloc_lengths[defectors]
    raw = (deviated_costs - cooperative_cost) / np.exp(overlaps)
    scores[defectors] = np.maximum(raw, 0.0) if clamp_negative else raw
    return scores


def defection_scores(
    allocation: AllocationMap,
    consumption: ConsumptionMap,
    types: Mapping[HouseholdId, HouseholdType],
    pricing: PricingModel,
    clamp_negative: bool = True,
) -> Dict[HouseholdId, float]:
    """Eq. 5 for every household, sharing the cooperative-cost baseline.

    Mapping-friendly wrapper around :func:`defection_vector`: unpacks the
    intervals into parallel arrays once and scores all households in a
    single batched pass.
    """
    n = len(allocation)
    if n == 0:
        return {}
    ids = list(allocation)
    alloc_starts = np.fromiter((allocation[h].start for h in ids), np.intp, count=n)
    alloc_ends = np.fromiter((allocation[h].end for h in ids), np.intp, count=n)
    cons_starts = np.fromiter((consumption[h].start for h in ids), np.intp, count=n)
    cons_ends = np.fromiter((consumption[h].end for h in ids), np.intp, count=n)
    ratings = np.fromiter((types[h].rating_kw for h in ids), float, count=n)
    scores = defection_vector(
        alloc_starts,
        alloc_ends,
        cons_starts,
        cons_ends,
        ratings,
        pricing,
        clamp_negative,
    )
    return dict(zip(ids, scores.tolist()))
