"""Flexibility scores (Eq. 4 and Section IV-B3).

``f_i = ((beta_i - alpha_i) / v_i) * (1 / N_i)`` where ``N_i`` is the mean,
over the hours of household *i*'s window, of ``n_h`` — the number of
households whose window covers hour ``h``.  Wider windows and off-peak
windows both raise ``f_i`` (Properties 1 and 2; Examples 2 and 3).

Two variants appear in the paper:

* **Predicted** flexibility assumes every household reported truthfully and
  is computed from the reported windows; the greedy allocator orders
  households by it (Section IV-C).
* **Realized** flexibility feeds the payment: it equals the predicted score
  when the household follows its allocation and is 0 when it defects
  ("f_i = 0 ... when the household misreports and defects").

The batched entry points (:func:`coverage_from_arrays`,
:func:`flexibility_vector`) score a whole neighborhood in a handful of
numpy operations; the mapping-based helpers wrap them so scalar and
batched callers share one implementation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .intervals import HOURS_PER_DAY, Interval
from .types import AllocationMap, ConsumptionMap, HouseholdId, Preference


def coverage_from_arrays(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """``n_h`` for each hour from parallel window-bound arrays.

    Difference-array construction: +1 at each window start, -1 at each end,
    then one cumulative sum — O(n + 24) with no per-household Python work.
    """
    delta = np.zeros(HOURS_PER_DAY + 1, dtype=float)
    np.add.at(delta, starts, 1.0)
    np.add.at(delta, ends, -1.0)
    return np.cumsum(delta[:HOURS_PER_DAY])


def window_coverage(windows: Mapping[HouseholdId, Interval]) -> np.ndarray:
    """``n_h`` for each hour: how many windows cover hour ``h``."""
    n = len(windows)
    if n == 0:
        return np.zeros(HOURS_PER_DAY, dtype=float)
    starts = np.fromiter(
        (window.start for window in windows.values()), dtype=np.intp, count=n
    )
    ends = np.fromiter(
        (window.end for window in windows.values()), dtype=np.intp, count=n
    )
    return coverage_from_arrays(starts, ends)


def flexibility_vector(
    starts: np.ndarray,
    ends: np.ndarray,
    durations: np.ndarray,
    coverage: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Eq. 4 for every household at once.

    Args:
        starts: Reported window starts, shape ``(n,)``.
        ends: Reported window ends, shape ``(n,)``.
        durations: Reported durations ``v_i``, shape ``(n,)``.
        coverage: Hourly ``n_h`` counts; derived from the windows
            themselves when omitted (the usual case — every household is
            scored against the population it belongs to).

    Returns:
        ``f_i`` per household: ``(window_length / v_i) / N_i`` with ``N_i``
        the mean coverage over the window, evaluated via a prefix sum of
        ``coverage`` so all windows share one O(24) pass.
    """
    if coverage is None:
        coverage = coverage_from_arrays(starts, ends)
    prefix = np.concatenate(([0.0], np.cumsum(coverage)))
    lengths = (ends - starts).astype(float)
    n_mean = (prefix[ends] - prefix[starts]) / lengths
    if np.any(n_mean <= 0):
        bad = int(np.flatnonzero(n_mean <= 0)[0])
        raise ValueError(
            f"coverage over [{int(starts[bad])}, {int(ends[bad])}) must count "
            f"the household itself (got mean {float(n_mean[bad])})"
        )
    return (lengths / np.asarray(durations, dtype=float)) / n_mean


def flexibility_score(
    preference: Preference, coverage: np.ndarray
) -> float:
    """Eq. 4 for one household given the hourly coverage counts ``n_h``.

    Args:
        preference: The household's (reported) preference.
        coverage: Per-hour counts ``n_h`` including this household itself.

    Returns:
        ``f_i = (window_length / duration) / N_i`` where ``N_i`` is the mean
        of ``coverage`` over the window's hours.
    """
    window = preference.window
    n_mean = float(coverage[window.start:window.end].mean())
    if n_mean <= 0:
        raise ValueError(
            f"coverage over {window} must count the household itself (got mean {n_mean})"
        )
    return (window.length / preference.duration) / n_mean


def _preference_arrays(
    reports: Mapping[HouseholdId, Preference],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parallel (starts, ends, durations) arrays in ``reports`` order."""
    n = len(reports)
    starts = np.fromiter(
        (pref.window.start for pref in reports.values()), dtype=np.intp, count=n
    )
    ends = np.fromiter(
        (pref.window.end for pref in reports.values()), dtype=np.intp, count=n
    )
    durations = np.fromiter(
        (pref.duration for pref in reports.values()), dtype=np.intp, count=n
    )
    return starts, ends, durations


def predicted_flexibility(
    reports: Mapping[HouseholdId, Preference],
) -> Dict[HouseholdId, float]:
    """Predicted flexibility of every household from reported windows.

    This is the score the greedy allocator sorts by; defectors still get a
    positive predicted score because the center cannot yet know they will
    defect (Section IV-C).
    """
    if not reports:
        return {}
    starts, ends, durations = _preference_arrays(reports)
    scores = flexibility_vector(starts, ends, durations)
    return dict(zip(reports, scores.tolist()))


def realized_flexibility(
    reports: Mapping[HouseholdId, Preference],
    allocation: AllocationMap,
    consumption: ConsumptionMap,
) -> Dict[HouseholdId, float]:
    """Flexibility actually credited at settlement.

    Households that deviate from their allocation forfeit their flexibility
    score entirely; cooperative households keep the Eq. 4 value computed
    from the reported windows.
    """
    if not reports:
        return {}
    starts, ends, durations = _preference_arrays(reports)
    predicted = flexibility_vector(starts, ends, durations)
    followed = np.fromiter(
        (consumption[hid] == allocation[hid] for hid in reports),
        dtype=bool,
        count=len(reports),
    )
    scores = np.where(followed, predicted, 0.0)
    return dict(zip(reports, scores.tolist()))
