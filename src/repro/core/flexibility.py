"""Flexibility scores (Eq. 4 and Section IV-B3).

``f_i = ((beta_i - alpha_i) / v_i) * (1 / N_i)`` where ``N_i`` is the mean,
over the hours of household *i*'s window, of ``n_h`` — the number of
households whose window covers hour ``h``.  Wider windows and off-peak
windows both raise ``f_i`` (Properties 1 and 2; Examples 2 and 3).

Two variants appear in the paper:

* **Predicted** flexibility assumes every household reported truthfully and
  is computed from the reported windows; the greedy allocator orders
  households by it (Section IV-C).
* **Realized** flexibility feeds the payment: it equals the predicted score
  when the household follows its allocation and is 0 when it defects
  ("f_i = 0 ... when the household misreports and defects").
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from .intervals import HOURS_PER_DAY, Interval
from .types import AllocationMap, ConsumptionMap, HouseholdId, Preference


def window_coverage(windows: Mapping[HouseholdId, Interval]) -> np.ndarray:
    """``n_h`` for each hour: how many windows cover hour ``h``."""
    coverage = np.zeros(HOURS_PER_DAY, dtype=float)
    for window in windows.values():
        coverage[window.start:window.end] += 1.0
    return coverage


def flexibility_score(
    preference: Preference, coverage: np.ndarray
) -> float:
    """Eq. 4 for one household given the hourly coverage counts ``n_h``.

    Args:
        preference: The household's (reported) preference.
        coverage: Per-hour counts ``n_h`` including this household itself.

    Returns:
        ``f_i = (window_length / duration) / N_i`` where ``N_i`` is the mean
        of ``coverage`` over the window's hours.
    """
    window = preference.window
    n_mean = float(coverage[window.start:window.end].mean())
    if n_mean <= 0:
        raise ValueError(
            f"coverage over {window} must count the household itself (got mean {n_mean})"
        )
    return (window.length / preference.duration) / n_mean


def predicted_flexibility(
    reports: Mapping[HouseholdId, Preference],
) -> Dict[HouseholdId, float]:
    """Predicted flexibility of every household from reported windows.

    This is the score the greedy allocator sorts by; defectors still get a
    positive predicted score because the center cannot yet know they will
    defect (Section IV-C).
    """
    windows = {hid: pref.window for hid, pref in reports.items()}
    coverage = window_coverage(windows)
    return {
        hid: flexibility_score(pref, coverage) for hid, pref in reports.items()
    }


def realized_flexibility(
    reports: Mapping[HouseholdId, Preference],
    allocation: AllocationMap,
    consumption: ConsumptionMap,
) -> Dict[HouseholdId, float]:
    """Flexibility actually credited at settlement.

    Households that deviate from their allocation forfeit their flexibility
    score entirely; cooperative households keep the Eq. 4 value computed
    from the reported windows.
    """
    predicted = predicted_flexibility(reports)
    scores: Dict[HouseholdId, float] = {}
    for hid, score in predicted.items():
        followed = consumption[hid] == allocation[hid]
        scores[hid] = score if followed else 0.0
    return scores
