"""Time-grid and interval arithmetic for the Enki day-ahead model.

The paper works on an hourly grid ``H = {0, ..., 23}``.  We represent a
contiguous block of hours as a half-open integer interval ``[start, end)``
whose endpoints are slot *boundaries* in ``0..24``.  An interval therefore
covers the hour slots ``start, start + 1, ..., end - 1``.  This convention
makes the paper's constructs exact:

* a preference ``(alpha, beta, v)`` requires ``beta - alpha >= v``;
* the Section VI workload generator draws wide-interval ending times up to
  24, which is a valid boundary but not a valid slot;
* overlap lengths (``tau_i`` in Eq. 3, ``|s_i ∩ w_i|`` in Eq. 5) are plain
  integer intersections of half-open intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Number of hour slots in a scheduling day.
HOURS_PER_DAY = 24

#: The hour slots of a day, ``H = {0, ..., 23}`` in the paper's notation.
HOURS: Tuple[int, ...] = tuple(range(HOURS_PER_DAY))


class IntervalError(ValueError):
    """Raised when an interval or preference is malformed."""


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open block of hours ``[start, end)`` on the daily grid.

    Attributes:
        start: First covered hour slot (boundary in ``0..24``).
        end: One past the last covered hour slot (boundary in ``0..24``).
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.end, int):
            raise IntervalError(
                f"interval endpoints must be integers, got ({self.start!r}, {self.end!r})"
            )
        if not 0 <= self.start <= HOURS_PER_DAY:
            raise IntervalError(f"interval start {self.start} outside [0, {HOURS_PER_DAY}]")
        if not 0 <= self.end <= HOURS_PER_DAY:
            raise IntervalError(f"interval end {self.end} outside [0, {HOURS_PER_DAY}]")
        if self.end < self.start:
            raise IntervalError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> int:
        """Number of hour slots covered."""
        return self.end - self.start

    @property
    def is_empty(self) -> bool:
        """True when the interval covers no slots."""
        return self.end == self.start

    def slots(self) -> Iterator[int]:
        """Iterate the hour slots covered by this interval."""
        return iter(range(self.start, self.end))

    def contains_slot(self, hour: int) -> bool:
        """True when hour slot ``hour`` lies inside the interval."""
        return self.start <= hour < self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` lies fully inside this interval."""
        if other.is_empty:
            return self.start <= other.start <= self.end
        return self.start <= other.start and other.end <= self.end

    def overlap(self, other: "Interval") -> int:
        """Length of the intersection with ``other`` in hours.

        This is the paper's ``|s_i ∩ w_i|`` used for the overlap fraction
        ``o_i`` (Eq. 5) and, against the true window, the valuation overlap
        ``tau_i`` (Eq. 3).
        """
        return max(0, min(self.end, other.end) - max(self.start, other.start))

    def intersection(self, other: "Interval") -> "Interval":
        """The intersecting interval (empty interval at ``start`` if disjoint)."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi <= lo:
            return Interval(lo if lo <= HOURS_PER_DAY else HOURS_PER_DAY, lo)
        return Interval(lo, hi)

    def shift(self, hours: int) -> "Interval":
        """A copy shifted right by ``hours`` (negative shifts left)."""
        return Interval(self.start + hours, self.end + hours)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


def block(start: int, length: int) -> Interval:
    """An interval of ``length`` slots beginning at slot ``start``."""
    return Interval(start, start + length)


def feasible_starts(window: Interval, duration: int) -> range:
    """All begin slots that fit a ``duration``-hour block inside ``window``.

    Returns an empty range when the duration does not fit.  The deferment
    variable ``d_i`` of Eq. 2 is ``start - window.start`` for each entry.
    """
    if duration <= 0:
        raise IntervalError(f"duration must be positive, got {duration}")
    last = window.end - duration
    if last < window.start:
        return range(window.start, window.start)
    return range(window.start, last + 1)


def placements(window: Interval, duration: int) -> Iterator[Interval]:
    """All duration-length blocks that fit inside ``window``."""
    for start in feasible_starts(window, duration):
        yield Interval(start, start + duration)
