"""The Enki mechanism: one day of report → allocate → consume → settle.

This module wires the pieces of Section IV together.  Given a neighborhood
and its reports, :class:`EnkiMechanism` produces an allocation with a
pluggable allocator (the paper's greedy by default), accepts realized
consumption, and settles the day: flexibility scores (Eq. 4), defection
scores (Eq. 5), social-cost scores (Eq. 6), payments (Eq. 7), valuations
(Eq. 3) and quasilinear utilities (Eq. 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..allocation.base import AllocationProblem, AllocationResult, Allocator
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .defection import defection_scores, overlap_fraction
from .flexibility import realized_flexibility
from .intervals import Interval
from .payments import DEFAULT_XI, neighborhood_utility, payments
from .social_cost import DEFAULT_K, social_cost_scores
from .types import (
    AllocationMap,
    ConsumptionMap,
    HouseholdId,
    Neighborhood,
    Report,
    validate_allocation,
    validate_consumption,
)
from .valuation import household_valuation


def truthful_reports(neighborhood: Neighborhood) -> Dict[HouseholdId, Report]:
    """Every household reports its true preference."""
    return {
        hh.household_id: Report(hh.household_id, hh.true_preference)
        for hh in neighborhood
    }


def closest_feasible_consumption(
    true_window: Interval, duration: int, allocation: Interval
) -> Interval:
    """Consumption inside the true window, as close to the allocation as possible.

    This automates the user study's consumption step ("selecting real
    consumption to be within the subject's true interval and close to his
    allocation").  If the allocation already fits the true window it is
    followed exactly; otherwise the household defects to the in-window
    placement that maximizes overlap with the allocation (earliest on ties).
    """
    best_start = true_window.start
    best_overlap = -1
    for start in range(true_window.start, true_window.end - duration + 1):
        candidate = Interval(start, start + duration)
        overlap = candidate.overlap(allocation)
        if overlap > best_overlap:
            best_start, best_overlap = start, overlap
    return Interval(best_start, best_start + duration)


def default_consumption(
    neighborhood: Neighborhood,
    allocation: AllocationMap,
) -> ConsumptionMap:
    """Closest-feasible consumption for every household."""
    consumption: ConsumptionMap = {}
    for hh in neighborhood:
        true = hh.true_preference
        consumption[hh.household_id] = closest_feasible_consumption(
            true.window, true.duration, allocation[hh.household_id]
        )
    return consumption


@dataclass
class Settlement:
    """Everything the center computes when it bills a day."""

    total_cost: float
    flexibility: Dict[HouseholdId, float]
    defection: Dict[HouseholdId, float]
    social_cost: Dict[HouseholdId, float]
    payments: Dict[HouseholdId, float]
    valuations: Dict[HouseholdId, float]
    utilities: Dict[HouseholdId, float]
    overlap_fractions: Dict[HouseholdId, float]
    neighborhood_utility: float
    load_profile: LoadProfile


@dataclass
class DayOutcome:
    """A full day under Enki: inputs, allocation and settlement."""

    reports: Dict[HouseholdId, Report]
    allocation_result: AllocationResult
    consumption: ConsumptionMap
    settlement: Settlement

    @property
    def allocation(self) -> AllocationMap:
        return self.allocation_result.allocation

    def defected(self, household_id: HouseholdId) -> bool:
        """True when the household deviated from its allocation."""
        return self.consumption[household_id] != self.allocation[household_id]


class EnkiMechanism:
    """The tractable, budget-balanced DSM mechanism of the paper.

    Args:
        pricing: Neighborhood pricing model (quadratic, Eq. 1, by default).
        allocator: Allocation strategy (the Section IV-C greedy by default).
        k: Social-cost scaling factor (Eq. 6).
        xi: Payment scaling factor (Eq. 7); ``xi >= 1`` gives Theorem 1.
        seed: Seed for allocation tie-breaking when no rng is provided.
    """

    def __init__(
        self,
        pricing: Optional[PricingModel] = None,
        allocator: Optional[Allocator] = None,
        k: float = DEFAULT_K,
        xi: float = DEFAULT_XI,
        seed: Optional[int] = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if xi < 1.0:
            raise ValueError(f"xi must be >= 1, got {xi}")
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.allocator = allocator if allocator is not None else GreedyFlexibilityAllocator()
        self.k = k
        self.xi = xi
        self._seed = seed

    def allocate(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
        rng: Optional[random.Random] = None,
    ) -> AllocationResult:
        """Solve the day's allocation problem for the given reports."""
        rng = rng if rng is not None else random.Random(self._seed)
        problem = AllocationProblem.from_reports(reports, neighborhood.households, self.pricing)
        result = self.allocator.solve(problem, rng)
        validate_allocation(dict(reports), result.allocation)
        return result

    def settle(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
        allocation: AllocationMap,
        consumption: ConsumptionMap,
    ) -> Settlement:
        """Bill a completed day (Eqs. 3-8)."""
        validate_allocation(dict(reports), allocation)
        validate_consumption(neighborhood.households, consumption)

        types = neighborhood.households
        profile = LoadProfile.from_schedule(consumption, types)
        total_cost = self.pricing.cost(profile)

        preferences = {hid: report.preference for hid, report in reports.items()}
        flexibility = realized_flexibility(preferences, allocation, consumption)
        defection = defection_scores(allocation, consumption, types, self.pricing)
        social = social_cost_scores(flexibility, defection, self.k)
        pay = payments(social, total_cost, self.xi)
        valuations = {
            hid: household_valuation(types[hid], allocation[hid]) for hid in types
        }
        utilities = {hid: valuations[hid] - pay[hid] for hid in types}
        overlaps = {
            hid: overlap_fraction(allocation[hid], consumption[hid]) for hid in types
        }
        return Settlement(
            total_cost=total_cost,
            flexibility=flexibility,
            defection=defection,
            social_cost=social,
            payments=pay,
            valuations=valuations,
            utilities=utilities,
            overlap_fractions=overlaps,
            neighborhood_utility=neighborhood_utility(pay, total_cost),
            load_profile=profile,
        )

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        consumption: Optional[ConsumptionMap] = None,
        rng: Optional[random.Random] = None,
    ) -> DayOutcome:
        """Run one full day: allocate the reports, realize consumption, settle.

        Args:
            neighborhood: The households and their true types.
            reports: Declared preferences; truthful reports when omitted.
            consumption: Realized consumption; closest-feasible behaviour
                (follow the allocation when it fits the true window) when
                omitted.
            rng: Randomness for allocation tie-breaking.
        """
        reports = dict(reports) if reports is not None else truthful_reports(neighborhood)
        allocation_result = self.allocate(neighborhood, reports, rng)
        if consumption is None:
            consumption = default_consumption(neighborhood, allocation_result.allocation)
        settlement = self.settle(
            neighborhood, reports, allocation_result.allocation, consumption
        )
        return DayOutcome(
            reports=reports,
            allocation_result=allocation_result,
            consumption=dict(consumption),
            settlement=settlement,
        )
