"""The Enki mechanism: one day of report → allocate → consume → settle.

This module wires the pieces of Section IV together.  Given a neighborhood
and its reports, :class:`EnkiMechanism` produces an allocation with a
pluggable allocator (the paper's greedy by default), accepts realized
consumption, and settles the day: flexibility scores (Eq. 4), defection
scores (Eq. 5), social-cost scores (Eq. 6), payments (Eq. 7), valuations
(Eq. 3) and quasilinear utilities (Eq. 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..allocation.cache import AllocationCache
    from ..robustness.quarantine import Quarantine

import numpy as np

from ..allocation.base import (
    AllocationProblem,
    AllocationResult,
    Allocator,
    ColumnarAllocationResult,
)
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .columnar import ColumnarNeighborhood, ColumnarReports
from .defection import defection_vector
from .flexibility import flexibility_vector
from .intervals import Interval, IntervalError
from .payments import DEFAULT_XI, payments_vector
from .social_cost import DEFAULT_K, social_cost_vector
from .types import (
    AllocationMap,
    ConsumptionMap,
    HouseholdId,
    Neighborhood,
    Report,
    validate_allocation,
    validate_consumption,
)
from .valuation import valuation_vector


def truthful_reports(neighborhood: Neighborhood) -> Dict[HouseholdId, Report]:
    """Every household reports its true preference."""
    return {
        hh.household_id: Report(hh.household_id, hh.true_preference)
        for hh in neighborhood
    }


def closest_feasible_consumption(
    true_window: Interval, duration: int, allocation: Interval
) -> Interval:
    """Consumption inside the true window, as close to the allocation as possible.

    This automates the user study's consumption step ("selecting real
    consumption to be within the subject's true interval and close to his
    allocation").  If the allocation already fits the true window it is
    followed exactly; otherwise the household defects to the in-window
    placement that maximizes overlap with the allocation (earliest on ties).
    """
    best_start = true_window.start
    best_overlap = -1
    for start in range(true_window.start, true_window.end - duration + 1):
        candidate = Interval(start, start + duration)
        overlap = candidate.overlap(allocation)
        if overlap > best_overlap:
            best_start, best_overlap = start, overlap
    return Interval(best_start, best_start + duration)


def default_consumption(
    neighborhood: Neighborhood,
    allocation: AllocationMap,
) -> ConsumptionMap:
    """Closest-feasible consumption for every *allocated* household.

    Households absent from the allocation (quarantined under the
    ``exclude`` policy) consume nothing through the mechanism that day.
    """
    consumption: ConsumptionMap = {}
    for hh in neighborhood:
        if hh.household_id not in allocation:
            continue
        true = hh.true_preference
        consumption[hh.household_id] = closest_feasible_consumption(
            true.window, true.duration, allocation[hh.household_id]
        )
    return consumption


@dataclass
class Settlement:
    """Everything the center computes when it bills a day."""

    total_cost: float
    flexibility: Dict[HouseholdId, float]
    defection: Dict[HouseholdId, float]
    social_cost: Dict[HouseholdId, float]
    payments: Dict[HouseholdId, float]
    valuations: Dict[HouseholdId, float]
    utilities: Dict[HouseholdId, float]
    overlap_fractions: Dict[HouseholdId, float]
    neighborhood_utility: float
    load_profile: LoadProfile


@dataclass
class ColumnarSettlement:
    """A day's settlement as parallel arrays, one row per billed household.

    The array twin of :class:`Settlement`, produced by
    :meth:`EnkiMechanism.settle_arrays`; :meth:`to_settlement` bridges to
    the dict form (the bridge is how the object path's
    :meth:`EnkiMechanism.settle` is implemented, so the two are the same
    computation by construction).
    """

    ids: Tuple[HouseholdId, ...]
    total_cost: float
    flexibility: np.ndarray
    defection: np.ndarray
    social_cost: np.ndarray
    payments: np.ndarray
    valuations: np.ndarray
    utilities: np.ndarray
    overlap_fractions: np.ndarray
    neighborhood_utility: float
    load_profile: LoadProfile

    def to_settlement(self) -> Settlement:
        """Materialize the per-household dict :class:`Settlement`."""
        ids = list(self.ids)
        return Settlement(
            total_cost=self.total_cost,
            flexibility=dict(zip(ids, self.flexibility.tolist())),
            defection=dict(zip(ids, self.defection.tolist())),
            social_cost=dict(zip(ids, self.social_cost.tolist())),
            payments=dict(zip(ids, self.payments.tolist())),
            valuations=dict(zip(ids, self.valuations.tolist())),
            utilities=dict(zip(ids, self.utilities.tolist())),
            overlap_fractions=dict(zip(ids, self.overlap_fractions.tolist())),
            neighborhood_utility=self.neighborhood_utility,
            load_profile=self.load_profile,
        )


@dataclass
class ColumnarDayOutcome:
    """A full columnar day: surviving rows, allocation and settlement.

    ``kept`` is the boolean mask over the *input* neighborhood rows that
    survived quarantine (all-true without a quarantine); every other
    field is aligned with the kept rows.
    """

    neighborhood: ColumnarNeighborhood
    reports: ColumnarReports
    allocation_result: ColumnarAllocationResult
    consumption_starts: np.ndarray
    settlement: ColumnarSettlement
    kept: np.ndarray
    quarantine_decisions: Tuple = ()

    @property
    def allocation_starts(self) -> np.ndarray:
        return self.allocation_result.starts


@dataclass
class DayOutcome:
    """A full day under Enki: inputs, allocation and settlement.

    ``quarantine_decisions`` records every report the quarantine repaired
    or dropped (empty when no quarantine is configured or the day was
    clean); ``reports`` holds the post-screening reports the mechanism
    actually scheduled.
    """

    reports: Dict[HouseholdId, Report]
    allocation_result: AllocationResult
    consumption: ConsumptionMap
    settlement: Settlement
    quarantine_decisions: Tuple = ()

    @property
    def allocation(self) -> AllocationMap:
        return self.allocation_result.allocation

    def defected(self, household_id: HouseholdId) -> bool:
        """True when the household deviated from its allocation."""
        return self.consumption[household_id] != self.allocation[household_id]


class EnkiMechanism:
    """The tractable, budget-balanced DSM mechanism of the paper.

    Args:
        pricing: Neighborhood pricing model (quadratic, Eq. 1, by default).
        allocator: Allocation strategy (the Section IV-C greedy by default).
        k: Social-cost scaling factor (Eq. 6).
        xi: Payment scaling factor (Eq. 7); ``xi >= 1`` gives Theorem 1.
        seed: Seed for allocation tie-breaking when no rng is provided.
        quarantine: Optional report screen applied in front of every
            allocation (:class:`repro.robustness.quarantine.Quarantine`).
            Without one, reports are trusted as typed values — the
            pre-robustness behaviour.
        alloc_cache: Optional
            :class:`repro.allocation.cache.AllocationCache` every solve
            routes through.  Hits replay byte-identical results with
            ``cache_hit`` provenance; allocators without a
            ``cache_token`` pass straight through, so enabling the cache
            never changes an outcome.
    """

    def __init__(
        self,
        pricing: Optional[PricingModel] = None,
        allocator: Optional[Allocator] = None,
        k: float = DEFAULT_K,
        xi: float = DEFAULT_XI,
        seed: Optional[int] = None,
        quarantine: Optional["Quarantine"] = None,
        alloc_cache: Optional["AllocationCache"] = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if xi < 1.0:
            raise ValueError(f"xi must be >= 1, got {xi}")
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.allocator = allocator if allocator is not None else GreedyFlexibilityAllocator()
        self.k = k
        self.xi = xi
        self._seed = seed
        self.quarantine = quarantine
        self.alloc_cache = alloc_cache

    def screen_reports(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
    ):
        """Run the configured quarantine over ``reports``.

        Returns the :class:`~repro.robustness.quarantine.QuarantineResult`,
        or ``None`` when no quarantine is configured.  The screen is
        idempotent, so callers may screen explicitly (to capture the
        decisions) and still pass the accepted reports to
        :meth:`allocate`, which screens again as a no-op.
        """
        if self.quarantine is None:
            return None
        return self.quarantine.screen(neighborhood, reports)

    def allocate(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
        rng: Optional[random.Random] = None,
        pre_screened: bool = False,
    ) -> AllocationResult:
        """Solve the day's allocation problem for the given reports.

        With a quarantine configured, reports pass through it first — so
        malformed submissions (raw wire values included) are rejected,
        repaired, or dropped per policy instead of raising out of the
        solve.  Callers that already screened (to capture the decisions)
        pass ``pre_screened=True`` to skip the redundant second pass.
        """
        rng = rng if rng is not None else random.Random(self._seed)
        if not pre_screened:
            screened = self.screen_reports(neighborhood, reports)
            if screened is not None:
                reports = screened.accepted
        problem = AllocationProblem.from_reports(reports, neighborhood.households, self.pricing)
        if self.alloc_cache is not None:
            result = self.alloc_cache.solve(self.allocator, problem, rng)
        else:
            result = self.allocator.solve(problem, rng)
        validate_allocation(dict(reports), result.allocation)
        return result

    def settle(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
        allocation: AllocationMap,
        consumption: ConsumptionMap,
    ) -> Settlement:
        """Bill a completed day (Eqs. 3-8).

        The whole scoring chain (flexibility, defection, social cost,
        payments, valuations, utilities, overlaps) runs batched over
        parallel numpy arrays — one pass to unpack the intervals, then
        pure array arithmetic — so settlement cost is dominated by O(n)
        array construction rather than per-household Python loops.
        """
        validate_allocation(dict(reports), allocation)
        validate_consumption(neighborhood.households, consumption)

        types = neighborhood.households
        # Settle the allocated households only: under the quarantine's
        # `exclude` policy a dropped household has no s_i and no omega_i,
        # and Theorem 1 holds over any subset because Eq. 7 splits the
        # realized cost of exactly the households being billed.
        ids = [h for h in types if h in allocation]
        n = len(ids)
        alloc_starts = np.fromiter((allocation[h].start for h in ids), np.intp, count=n)
        alloc_ends = np.fromiter((allocation[h].end for h in ids), np.intp, count=n)
        cons_starts = np.fromiter((consumption[h].start for h in ids), np.intp, count=n)
        cons_ends = np.fromiter((consumption[h].end for h in ids), np.intp, count=n)
        ratings = np.fromiter((types[h].rating_kw for h in ids), float, count=n)
        rep_starts = np.fromiter(
            (reports[h].preference.window.start for h in ids), np.intp, count=n
        )
        rep_ends = np.fromiter(
            (reports[h].preference.window.end for h in ids), np.intp, count=n
        )
        rep_durations = np.fromiter(
            (reports[h].preference.duration for h in ids), np.intp, count=n
        )

        true_starts = np.fromiter(
            (types[h].true_preference.window.start for h in ids), np.intp, count=n
        )
        true_ends = np.fromiter(
            (types[h].true_preference.window.end for h in ids), np.intp, count=n
        )
        true_durations = np.fromiter(
            (types[h].true_preference.duration for h in ids), np.intp, count=n
        )
        factors = np.fromiter(
            (types[h].valuation_factor for h in ids), float, count=n
        )

        return self.settle_arrays(
            ids=tuple(ids),
            alloc_starts=alloc_starts,
            alloc_ends=alloc_ends,
            cons_starts=cons_starts,
            cons_ends=cons_ends,
            ratings=ratings,
            rep_starts=rep_starts,
            rep_ends=rep_ends,
            rep_durations=rep_durations,
            true_starts=true_starts,
            true_ends=true_ends,
            true_durations=true_durations,
            factors=factors,
        ).to_settlement()

    def settle_arrays(
        self,
        ids: Tuple[HouseholdId, ...],
        alloc_starts: np.ndarray,
        alloc_ends: np.ndarray,
        cons_starts: np.ndarray,
        cons_ends: np.ndarray,
        ratings: np.ndarray,
        rep_starts: np.ndarray,
        rep_ends: np.ndarray,
        rep_durations: np.ndarray,
        true_starts: np.ndarray,
        true_ends: np.ndarray,
        true_durations: np.ndarray,
        factors: np.ndarray,
    ) -> ColumnarSettlement:
        """The Eq. 3-8 scoring chain over parallel arrays.

        The array core shared by :meth:`settle` (which unpacks objects
        into these arrays) and the columnar day (which already has them);
        all inputs are row-aligned over the households being billed.
        """
        profile = LoadProfile.from_arrays(cons_starts, cons_ends, ratings)
        total_cost = self.pricing.cost(profile)

        # Eq. 4: realized flexibility — predicted score gated on compliance.
        followed = (alloc_starts == cons_starts) & (alloc_ends == cons_ends)
        flexibility_arr = np.where(
            followed, flexibility_vector(rep_starts, rep_ends, rep_durations), 0.0
        )
        # Eq. 5 / Eq. 6 / Eq. 7, all batched.
        defection_arr = defection_vector(
            alloc_starts, alloc_ends, cons_starts, cons_ends, ratings, self.pricing
        )
        social_arr = social_cost_vector(flexibility_arr, defection_arr, self.k)
        payments_arr = payments_vector(social_arr, total_cost, self.xi)

        # Eq. 3 against the *true* windows, and Eq. 8 utilities.
        tau = np.clip(
            np.minimum(alloc_ends, true_ends) - np.maximum(alloc_starts, true_starts),
            0,
            None,
        )
        valuations_arr = valuation_vector(tau, true_durations, factors)
        utilities_arr = valuations_arr - payments_arr
        overlaps_arr = np.clip(
            np.minimum(alloc_ends, cons_ends) - np.maximum(alloc_starts, cons_starts),
            0,
            None,
        ) / (alloc_ends - alloc_starts)

        return ColumnarSettlement(
            ids=tuple(ids),
            total_cost=total_cost,
            flexibility=flexibility_arr,
            defection=defection_arr,
            social_cost=social_arr,
            payments=payments_arr,
            valuations=valuations_arr,
            utilities=utilities_arr,
            overlap_fractions=overlaps_arr,
            neighborhood_utility=float(payments_arr.sum()) - total_cost,
            load_profile=profile,
        )

    def settle_arrays_batch(
        self,
        ids: Sequence[Tuple[HouseholdId, ...]],
        offsets: np.ndarray,
        alloc_starts: np.ndarray,
        alloc_ends: np.ndarray,
        cons_starts: np.ndarray,
        cons_ends: np.ndarray,
        ratings: np.ndarray,
        rep_starts: np.ndarray,
        rep_ends: np.ndarray,
        rep_durations: np.ndarray,
        true_starts: np.ndarray,
        true_ends: np.ndarray,
        true_durations: np.ndarray,
        factors: np.ndarray,
    ) -> List[ColumnarSettlement]:
        """Settle D stacked days: Eqs. 3-8 in a handful of array passes.

        Inputs are day-major stacked rows with ``offsets`` boundaries
        (``ids[k]`` names day ``k``'s rows).  The purely elementwise
        pieces — the followed mask, ``tau``, valuations and overlap
        fractions — run once over all rows; every *day-local* reduction
        (the realized load profile and its cost, flexibility coverage,
        the defection baseline, the Eq. 6/7 normalizations) loops over
        per-day slices, preserving each day's float accumulation
        sequence, so every returned :class:`ColumnarSettlement` is
        bit-identical to a per-day :meth:`settle_arrays` call.
        """
        followed = (alloc_starts == cons_starts) & (alloc_ends == cons_ends)
        tau = np.clip(
            np.minimum(alloc_ends, true_ends) - np.maximum(alloc_starts, true_starts),
            0,
            None,
        )
        valuations_all = valuation_vector(tau, true_durations, factors)
        overlaps_all = np.clip(
            np.minimum(alloc_ends, cons_ends) - np.maximum(alloc_starts, cons_starts),
            0,
            None,
        ) / (alloc_ends - alloc_starts)

        settlements: List[ColumnarSettlement] = []
        for k, day_ids in enumerate(ids):
            rows = slice(int(offsets[k]), int(offsets[k + 1]))
            profile = LoadProfile.from_arrays(
                cons_starts[rows], cons_ends[rows], ratings[rows]
            )
            total_cost = self.pricing.cost(profile)
            flexibility_arr = np.where(
                followed[rows],
                flexibility_vector(
                    rep_starts[rows], rep_ends[rows], rep_durations[rows]
                ),
                0.0,
            )
            defection_arr = defection_vector(
                alloc_starts[rows],
                alloc_ends[rows],
                cons_starts[rows],
                cons_ends[rows],
                ratings[rows],
                self.pricing,
            )
            social_arr = social_cost_vector(flexibility_arr, defection_arr, self.k)
            payments_arr = payments_vector(social_arr, total_cost, self.xi)
            settlements.append(
                ColumnarSettlement(
                    ids=tuple(day_ids),
                    total_cost=total_cost,
                    flexibility=flexibility_arr,
                    defection=defection_arr,
                    social_cost=social_arr,
                    payments=payments_arr,
                    valuations=valuations_all[rows],
                    utilities=valuations_all[rows] - payments_arr,
                    overlap_fractions=overlaps_all[rows],
                    neighborhood_utility=float(payments_arr.sum()) - total_cost,
                    load_profile=profile,
                )
            )
        return settlements

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        consumption: Optional[ConsumptionMap] = None,
        rng: Optional[random.Random] = None,
    ) -> DayOutcome:
        """Run one full day: allocate the reports, realize consumption, settle.

        Args:
            neighborhood: The households and their true types.
            reports: Declared preferences; truthful reports when omitted.
            consumption: Realized consumption; closest-feasible behaviour
                (follow the allocation when it fits the true window) when
                omitted.
            rng: Randomness for allocation tie-breaking.
        """
        reports = dict(reports) if reports is not None else truthful_reports(neighborhood)
        decisions: Tuple = ()
        screened = self.screen_reports(neighborhood, reports)
        if screened is not None:
            reports = screened.accepted
            decisions = tuple(screened.decisions)
        allocation_result = self.allocate(neighborhood, reports, rng, pre_screened=True)
        if consumption is None:
            consumption = default_consumption(neighborhood, allocation_result.allocation)
        settlement = self.settle(
            neighborhood, reports, allocation_result.allocation, consumption
        )
        return DayOutcome(
            reports=reports,
            allocation_result=allocation_result,
            consumption=dict(consumption),
            settlement=settlement,
            quarantine_decisions=decisions,
        )

    def allocate_columnar(
        self,
        neighborhood: ColumnarNeighborhood,
        reports: ColumnarReports,
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """Solve a columnar day's allocation problem.

        Reports are lowered straight into a
        :class:`~repro.allocation.arrays.CompiledProblem` and handed to
        the allocator's columnar kernel (the greedy one is native; others
        bridge through the object path).  The returned begin slots are
        validated against the reported windows — the array counterpart of
        :func:`~repro.core.types.validate_allocation`.
        """
        rng = rng if rng is not None else random.Random(self._seed)
        compiled = reports.compile(neighborhood, self.pricing)
        if self.alloc_cache is not None:
            result = self.alloc_cache.solve_columnar(
                self.allocator, compiled, self.pricing, rng
            )
        else:
            result = self.allocator.solve_columnar(compiled, self.pricing, rng)
        starts = result.starts
        bad = (starts < reports.start) | (starts + reports.duration > reports.end)
        if bool(np.any(bad)):
            i = int(np.argmax(bad))
            raise IntervalError(
                f"allocation [{int(starts[i])}, "
                f"{int(starts[i] + reports.duration[i])}) for "
                f"{reports.ids[i]!r} violates report window "
                f"[{int(reports.start[i])}, {int(reports.end[i])})"
            )
        return result

    def run_day_columnar(
        self,
        neighborhood: ColumnarNeighborhood,
        reports: Optional[ColumnarReports] = None,
        rng: Optional[random.Random] = None,
    ) -> ColumnarDayOutcome:
        """Run one full day on the columnar path: allocate, consume, settle.

        The array counterpart of :meth:`run_day` with closest-feasible
        consumption: truthful reports when ``reports`` is omitted, the
        configured quarantine applied first (typed rows are re-validated,
        so the screen is an accept-all no-op on clean days), and the whole
        Eq. 3-8 settlement batched.  No per-household objects exist at any
        point.
        """
        if reports is None:
            reports = ColumnarReports.truthful(neighborhood)
        if reports.ids != neighborhood.ids:
            raise ValueError("reports and neighborhood rows are not aligned")
        decisions: Tuple = ()
        kept = np.ones(len(neighborhood), dtype=bool)
        if self.quarantine is not None:
            screened = self.quarantine.screen_columnar(
                neighborhood,
                reports.start.astype(float),
                reports.end.astype(float),
                reports.duration.astype(float),
            )
            reports = screened.accepted
            kept = screened.kept
            decisions = tuple(screened.decisions)
            neighborhood = neighborhood.take(kept)
        result = self.allocate_columnar(neighborhood, reports, rng)
        return self.finish_day_columnar(
            neighborhood, reports, result, kept=kept, decisions=decisions
        )

    def run_days_columnar(
        self,
        neighborhood: ColumnarNeighborhood,
        rngs: Sequence[Optional[random.Random]],
        reports: Optional[ColumnarReports] = None,
    ) -> List[ColumnarDayOutcome]:
        """Run D days over one fixed neighborhood as a fused batch.

        The batched twin of D :meth:`run_day_columnar` calls where only
        the tie-break rng differs per day (the
        :class:`repro.sim.engine.NeighborhoodSimulation` shape): the
        screen and the problem compilation happen once, the greedy
        placement sweep runs as one
        :meth:`~repro.allocation.greedy.GreedyFlexibilityAllocator.
        solve_columnar_batch` kernel call over all D days (per-day solves
        through the configured ``alloc_cache``, or for allocators without
        a batch kernel, replace the fused path), and settlement is one
        :meth:`settle_arrays_batch`.  Outcomes are bit-identical to the
        per-day loop, day by day.
        """
        if reports is None:
            reports = ColumnarReports.truthful(neighborhood)
        if reports.ids != neighborhood.ids:
            raise ValueError("reports and neighborhood rows are not aligned")
        decisions: Tuple = ()
        kept = np.ones(len(neighborhood), dtype=bool)
        if self.quarantine is not None:
            # One screen serves all D days: every day sees the same rows,
            # so the per-day loop would reproduce these exact decisions
            # each day.
            screened = self.quarantine.screen_columnar(
                neighborhood,
                reports.start.astype(float),
                reports.end.astype(float),
                reports.duration.astype(float),
            )
            reports = screened.accepted
            kept = screened.kept
            decisions = tuple(screened.decisions)
            neighborhood = neighborhood.take(kept)
        n_days = len(rngs)
        compiled = reports.compile(neighborhood, self.pricing)
        rngs = [
            rng if rng is not None else random.Random(self._seed) for rng in rngs
        ]
        if self.alloc_cache is not None:
            results = [
                self.alloc_cache.solve_columnar(
                    self.allocator, compiled, self.pricing, rng
                )
                for rng in rngs
            ]
        elif hasattr(self.allocator, "solve_columnar_batch"):
            results = self.allocator.solve_columnar_batch(
                [compiled] * n_days, self.pricing, rngs
            )
        else:
            results = [
                self.allocator.solve_columnar(compiled, self.pricing, rng)
                for rng in rngs
            ]

        # Fused back half: validation, closest-feasible consumption and
        # the elementwise settlement passes run once over the stacked
        # D x n rows; day-local reductions stay per-day inside
        # settle_arrays_batch.  Same formulas as finish_day_columnar, row
        # for row.
        n = len(neighborhood)
        offsets = np.arange(n_days + 1, dtype=np.intp) * n
        alloc_starts = (
            np.concatenate([result.starts for result in results])
            if results
            else np.zeros(0, dtype=np.intp)
        )
        rep_start = np.tile(reports.start, n_days)
        rep_end = np.tile(reports.end, n_days)
        v = np.tile(neighborhood.duration, n_days)
        bad = (alloc_starts < rep_start) | (alloc_starts + v > rep_end)
        if bool(np.any(bad)):
            i = int(np.argmax(bad))
            raise IntervalError(
                f"allocation [{int(alloc_starts[i])}, "
                f"{int(alloc_starts[i] + v[i])}) for "
                f"{reports.ids[i % n]!r} violates report window "
                f"[{int(rep_start[i])}, {int(rep_end[i])})"
            )
        true_start = np.tile(neighborhood.true_start, n_days)
        true_end = np.tile(neighborhood.true_end, n_days)
        cons_starts = np.clip(alloc_starts, true_start, true_end - v)
        overlap = v - np.abs(cons_starts - alloc_starts)
        cons_starts = np.where(overlap > 0, cons_starts, true_start)

        settlements = self.settle_arrays_batch(
            ids=[neighborhood.ids] * n_days,
            offsets=offsets,
            alloc_starts=alloc_starts,
            alloc_ends=alloc_starts + v,
            cons_starts=cons_starts,
            cons_ends=cons_starts + v,
            ratings=np.tile(neighborhood.rating, n_days),
            rep_starts=rep_start,
            rep_ends=rep_end,
            rep_durations=np.tile(reports.duration, n_days),
            true_starts=true_start,
            true_ends=true_end,
            true_durations=v,
            factors=np.tile(neighborhood.valuation, n_days),
        )
        return [
            ColumnarDayOutcome(
                neighborhood=neighborhood,
                reports=reports,
                allocation_result=result,
                consumption_starts=cons_starts[offsets[k]:offsets[k + 1]],
                settlement=settlement,
                kept=kept,
                quarantine_decisions=decisions,
            )
            for k, (result, settlement) in enumerate(zip(results, settlements))
        ]

    def run_day_columnar_raw(
        self,
        neighborhood: ColumnarNeighborhood,
        begin: np.ndarray,
        end: np.ndarray,
        duration: Optional[np.ndarray] = None,
        rng: Optional[random.Random] = None,
    ) -> ColumnarDayOutcome:
        """Run a columnar day from *raw wire arrays* (possibly malformed).

        The service-layer ingestion entry point: ``begin``/``end`` (and
        optionally ``duration``) are float arrays straight off the wire,
        aligned with ``neighborhood``'s rows — NaN, inverted, off-grid or
        non-integral values included.  With a quarantine configured they
        are screened first (repaired or dropped per policy, decisions
        recorded); without one the arrays must already be clean, and the
        first malformed row raises
        :class:`~repro.robustness.errors.InvalidReportError` — the strict
        counterpart of the ``reject`` policy.
        """
        begin = np.asarray(begin, dtype=float)
        end = np.asarray(end, dtype=float)
        if duration is None:
            duration = neighborhood.duration.astype(float)
        else:
            duration = np.asarray(duration, dtype=float)
        if self.quarantine is not None:
            screened = self.quarantine.screen_columnar(
                neighborhood, begin, end, duration
            )
            reports = screened.accepted
            kept = screened.kept
            decisions = tuple(screened.decisions)
            neighborhood = neighborhood.take(kept)
        else:
            with np.errstate(invalid="ignore"):
                integral = (
                    np.isfinite(begin)
                    & np.isfinite(end)
                    & np.isfinite(duration)
                    & (begin == np.trunc(begin))
                    & (end == np.trunc(end))
                    & (duration == np.trunc(duration))
                )
            if not bool(np.all(integral)):
                i = int(np.argmin(integral))
                from ..robustness.errors import InvalidReportError

                raise InvalidReportError(
                    str(neighborhood.ids[i]),
                    "non-integer-bound",
                    f"bounds ({begin[i]!r}, {end[i]!r})",
                )
            reports = ColumnarReports(
                ids=neighborhood.ids,
                start=begin.astype(np.intp),
                end=end.astype(np.intp),
                duration=duration.astype(np.intp),
            )
            kept = np.ones(len(neighborhood), dtype=bool)
            decisions = ()
        result = self.allocate_columnar(neighborhood, reports, rng)
        return self.finish_day_columnar(
            neighborhood, reports, result, kept=kept, decisions=decisions
        )

    def finish_day_columnar(
        self,
        neighborhood: ColumnarNeighborhood,
        reports: ColumnarReports,
        result: "ColumnarAllocationResult",
        kept: Optional[np.ndarray] = None,
        decisions: Tuple = (),
    ) -> ColumnarDayOutcome:
        """Settle an already-allocated columnar day.

        The back half of :meth:`run_day_columnar`, split out so drivers
        that produce the allocation elsewhere (the row-sharded large-n
        path in :mod:`repro.sim.engine`) reuse the exact consumption and
        Eq. 3-8 settlement chain.  The begin slots are (re)validated
        against the reported windows before anything is settled.
        """
        starts = result.starts
        bad = (starts < reports.start) | (starts + reports.duration > reports.end)
        if bool(np.any(bad)):
            i = int(np.argmax(bad))
            raise IntervalError(
                f"allocation [{int(starts[i])}, "
                f"{int(starts[i] + reports.duration[i])}) for "
                f"{reports.ids[i]!r} violates report window "
                f"[{int(reports.start[i])}, {int(reports.end[i])})"
            )
        if kept is None:
            kept = np.ones(len(neighborhood), dtype=bool)

        # Closest-feasible consumption, vectorized: consumption shares the
        # (metered) duration, so overlap with the allocation is
        # ``v - |s - alloc_start|`` and the in-window start closest to the
        # allocation maximizes it; when even that overlaps nothing, every
        # in-window start ties at zero and the scalar rule picks the
        # earliest.
        v = neighborhood.duration
        alloc_starts = result.starts
        cons_starts = np.clip(
            alloc_starts, neighborhood.true_start, neighborhood.true_end - v
        )
        overlap = v - np.abs(cons_starts - alloc_starts)
        cons_starts = np.where(overlap > 0, cons_starts, neighborhood.true_start)

        settlement = self.settle_arrays(
            ids=neighborhood.ids,
            alloc_starts=alloc_starts,
            alloc_ends=alloc_starts + v,
            cons_starts=cons_starts,
            cons_ends=cons_starts + v,
            ratings=neighborhood.rating,
            rep_starts=reports.start,
            rep_ends=reports.end,
            rep_durations=reports.duration,
            true_starts=neighborhood.true_start,
            true_ends=neighborhood.true_end,
            true_durations=neighborhood.duration,
            factors=neighborhood.valuation,
        )
        return ColumnarDayOutcome(
            neighborhood=neighborhood,
            reports=reports,
            allocation_result=result,
            consumption_starts=cons_starts,
            settlement=settlement,
            kept=kept,
            quarantine_decisions=decisions,
        )
