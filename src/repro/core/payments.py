"""Payment mechanism (Eq. 7) and the budget-balance identity (Theorem 1).

``p_i = Psi_i / sum(Psi) * xi * kappa(omega)``, with ``xi >= 1``.

Summing over households gives ``sum(p) = xi * kappa(omega)``, so the
neighborhood's net utility is ``(xi - 1) * kappa(omega) >= 0`` — the ex ante
budget balance of Theorem 1 is an arithmetic identity of this mechanism.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from .types import HouseholdId

#: Payment scaling factor ``xi`` from Section VI.
DEFAULT_XI = 1.2


def payments(
    social_cost: Mapping[HouseholdId, float],
    total_cost: float,
    xi: float = DEFAULT_XI,
) -> Dict[HouseholdId, float]:
    """Eq. 7: split ``xi * kappa(omega)`` in proportion to ``Psi_i``.

    Args:
        social_cost: Social-cost scores ``Psi_i`` (all positive).
        total_cost: The neighborhood's realized cost ``kappa(omega)``.
        xi: Scaling factor; ``xi >= 1`` guarantees budget balance.

    Returns:
        Payment per household.
    """
    if xi < 1.0:
        raise ValueError(f"xi must be >= 1 for budget balance, got {xi}")
    if total_cost < 0:
        raise ValueError(f"total cost cannot be negative, got {total_cost}")
    if not social_cost:
        return {}
    total_score = sum(social_cost.values())
    if total_score <= 0:
        raise ValueError("social-cost scores must sum to a positive value")
    return {
        hid: score / total_score * xi * total_cost
        for hid, score in social_cost.items()
    }


def payments_vector(
    social_cost: np.ndarray,
    total_cost: float,
    xi: float = DEFAULT_XI,
) -> np.ndarray:
    """Vectorized Eq. 7 over a social-cost-score array.

    Mirrors :func:`payments` (same validation, same output) for the
    batched settlement path.
    """
    if xi < 1.0:
        raise ValueError(f"xi must be >= 1 for budget balance, got {xi}")
    if total_cost < 0:
        raise ValueError(f"total cost cannot be negative, got {total_cost}")
    if social_cost.size == 0:
        return np.zeros(0, dtype=float)
    total_score = float(social_cost.sum())
    if total_score <= 0:
        raise ValueError("social-cost scores must sum to a positive value")
    return social_cost / total_score * (xi * total_cost)


def neighborhood_utility(
    household_payments: Mapping[HouseholdId, float], total_cost: float
) -> float:
    """``U_c = sum(p_i) - kappa(omega)``, equal to ``(xi-1) * kappa`` (Thm 1)."""
    return sum(household_payments.values()) - total_cost


def proportional_payments(
    energy_kwh: Mapping[HouseholdId, float],
    total_cost: float,
    xi: float = DEFAULT_XI,
) -> Dict[HouseholdId, float]:
    """The price-taking split used *without* Enki (Section V-D).

    Each household pays in proportion to its energy use:
    ``p^z_i = b_i / sum(b) * xi * kappa(omega^z)`` (Kelly's proportional
    allocation).  Used by Theorems 5-6 as the participation counterfactual.
    """
    if xi < 1.0:
        raise ValueError(f"xi must be >= 1 for budget balance, got {xi}")
    if not energy_kwh:
        return {}
    total_energy = sum(energy_kwh.values())
    if total_energy <= 0:
        raise ValueError("total energy must be positive")
    return {
        hid: usage / total_energy * xi * total_cost
        for hid, usage in energy_kwh.items()
    }
