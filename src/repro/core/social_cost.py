"""Social-cost scores (Eq. 6) combining flexibility and defection.

The raw scores are normalized to shares and shifted into ``[0.5, 1.5]``:

``Psi_i = k * (delta_i / sum(delta) + 1/2) / (f_i / sum(f) + 1/2)``

A truthful, cooperative household has ``f_i > 0`` and ``delta_i = 0``; a
misreporting defector has ``f_i = 0`` and ``delta_i > 0``, so ``Psi`` moves
payments from the flexible to the disruptive.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from .types import HouseholdId

#: Scaling factor ``k`` from Section VI.
DEFAULT_K = 1.0

#: Lower end of the normalized score range, the neutral share offset.
NORMALIZATION_OFFSET = 0.5


def normalized_shares(scores: Mapping[HouseholdId, float]) -> Dict[HouseholdId, float]:
    """Shift raw scores into the paper's ``[0.5, 1.5]`` normalized range.

    Each value becomes ``score / sum(scores) + 0.5``.  When every raw score
    is zero (e.g. no household defected) the share term is undefined, so all
    households get the neutral midpoint 0.5 — this keeps Eq. 6 well-defined
    and payment shares equal, matching the all-cooperate intuition.
    """
    total = sum(scores.values())
    if total <= 0:
        return {hid: NORMALIZATION_OFFSET for hid in scores}
    return {hid: value / total + NORMALIZATION_OFFSET for hid, value in scores.items()}


def normalized_shares_vector(scores: np.ndarray) -> np.ndarray:
    """Vectorized :func:`normalized_shares` over a raw-score array."""
    total = float(scores.sum())
    if total <= 0:
        return np.full(scores.shape, NORMALIZATION_OFFSET)
    return scores / total + NORMALIZATION_OFFSET


def social_cost_vector(
    flexibility: np.ndarray,
    defection: np.ndarray,
    k: float = DEFAULT_K,
) -> np.ndarray:
    """Eq. 6 for every household at once from raw-score arrays.

    Mirrors :func:`social_cost_scores` (same validation, same output) for
    the batched settlement path.
    """
    if k <= 0:
        raise ValueError(f"scaling factor k must be positive, got {k}")
    if flexibility.shape != defection.shape:
        raise ValueError("flexibility and defection scores cover different households")
    for name, scores in (("flexibility", flexibility), ("defection", defection)):
        if np.any(scores < 0):
            raise ValueError(
                f"negative {name} scores at indices "
                f"{np.flatnonzero(scores < 0).tolist()}"
            )
    return (
        k
        * normalized_shares_vector(defection)
        / normalized_shares_vector(flexibility)
    )


def social_cost_scores(
    flexibility: Mapping[HouseholdId, float],
    defection: Mapping[HouseholdId, float],
    k: float = DEFAULT_K,
) -> Dict[HouseholdId, float]:
    """Eq. 6 for every household.

    Args:
        flexibility: Realized flexibility scores ``f_i`` (>= 0).
        defection: Defection scores ``delta_i`` (>= 0).
        k: Positive scaling factor ``k``.

    Returns:
        ``Psi_i`` per household; always positive because both normalized
        terms lie in ``[0.5, 1.5]``.
    """
    if k <= 0:
        raise ValueError(f"scaling factor k must be positive, got {k}")
    if set(flexibility) != set(defection):
        raise ValueError("flexibility and defection scores cover different households")
    for name, scores in (("flexibility", flexibility), ("defection", defection)):
        negative = [hid for hid, value in scores.items() if value < 0]
        if negative:
            raise ValueError(f"negative {name} scores for {sorted(negative)}")

    flexible_shares = normalized_shares(flexibility)
    defection_shares = normalized_shares(defection)
    return {
        hid: k * defection_shares[hid] / flexible_shares[hid] for hid in flexibility
    }
