"""Domain types for the Enki neighborhood model (Table I of the paper).

The paper's symbols map onto these types as follows:

==============================  =============================================
Paper symbol                    Type / attribute
==============================  =============================================
``chi_i = (alpha, beta, v)``    :class:`Preference` (window + duration)
``theta_i = (chi_i, rho_i)``    :class:`HouseholdType`
``s_i = (alpha_s, beta_s)``     :class:`core.intervals.Interval` (length v)
``omega_i``                     :class:`core.intervals.Interval` (length v)
``r``                           ``HouseholdType.rating_kw``
==============================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from .intervals import Interval, IntervalError, feasible_starts

#: Identifier for a household within a neighborhood.
HouseholdId = str

#: Default appliance power rating in kW (Section VI uses 2 kWh per hour).
DEFAULT_RATING_KW = 2.0


@dataclass(frozen=True)
class Preference:
    """A household's (true or reported) preference ``chi = (alpha, beta, v)``.

    The household wants ``duration`` contiguous hours of power anywhere
    inside ``window``; the paper requires ``beta - alpha >= v``.

    Attributes:
        window: Admissible interval ``[alpha, beta)``.
        duration: Preferred duration ``v`` in hours (``v >= 1``).
    """

    window: Interval
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise IntervalError(f"duration must be >= 1 hour, got {self.duration}")
        if self.window.length < self.duration:
            raise IntervalError(
                f"window {self.window} shorter than duration {self.duration}"
            )

    @property
    def begin(self) -> int:
        """The preferred beginning time ``alpha``."""
        return self.window.start

    @property
    def end(self) -> int:
        """The preferred ending time ``beta``."""
        return self.window.end

    @property
    def slack(self) -> int:
        """Maximum deferment ``beta - alpha - v`` (0 means no choice)."""
        return self.window.length - self.duration

    def admits(self, interval: Interval) -> bool:
        """True when ``interval`` is a valid allocation for this preference.

        A valid allocation has exactly the preferred duration and lies fully
        inside the preference window.
        """
        return interval.length == self.duration and self.window.contains(interval)

    def placements(self):
        """All duration-length intervals admissible under this preference."""
        for start in feasible_starts(self.window, self.duration):
            yield Interval(start, start + self.duration)

    @staticmethod
    def of(begin: int, end: int, duration: int) -> "Preference":
        """Build a preference from the paper's ``(alpha, beta, v)`` triple."""
        return Preference(Interval(begin, end), duration)


@dataclass(frozen=True)
class HouseholdType:
    """Private type ``theta_i = (chi_i, rho_i)`` of a household.

    Attributes:
        household_id: Stable identifier within the neighborhood.
        true_preference: The household's true preference ``chi_i``.
        valuation_factor: Willingness-to-pay factor ``rho_i > 0``.
        rating_kw: Appliance power rating ``r`` in kW.
    """

    household_id: HouseholdId
    true_preference: Preference
    valuation_factor: float
    rating_kw: float = DEFAULT_RATING_KW

    def __post_init__(self) -> None:
        if self.valuation_factor <= 0:
            raise ValueError(
                f"valuation factor must be positive, got {self.valuation_factor}"
            )
        if self.rating_kw <= 0:
            raise ValueError(f"power rating must be positive, got {self.rating_kw}")

    @property
    def duration(self) -> int:
        """The preferred duration ``v_i`` (assumed truthfully reported)."""
        return self.true_preference.duration

    def with_preference(self, preference: Preference) -> "HouseholdType":
        """A copy of this type with a different true preference."""
        return replace(self, true_preference=preference)


@dataclass(frozen=True)
class Report:
    """A household's declared preference ``chi_hat_i`` for the next day.

    The paper assumes durations are reported truthfully, so a report only
    chooses the window; Enki never alters the duration.
    """

    household_id: HouseholdId
    preference: Preference

    def is_truthful(self, true_preference: Preference) -> bool:
        """True when the reported window equals the true window."""
        return self.preference == true_preference


#: An allocation ``s``: one suggested interval per household.
AllocationMap = Dict[HouseholdId, Interval]

#: A consumption profile ``omega``: one realized interval per household.
ConsumptionMap = Dict[HouseholdId, Interval]


@dataclass(frozen=True)
class Neighborhood:
    """A fixed set of households served by one center.

    Attributes:
        households: Mapping of id to :class:`HouseholdType`, insertion ordered.
    """

    households: Mapping[HouseholdId, HouseholdType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for hid, hh in self.households.items():
            if hid != hh.household_id:
                raise ValueError(
                    f"household key {hid!r} disagrees with id {hh.household_id!r}"
                )

    def __len__(self) -> int:
        return len(self.households)

    def __iter__(self):
        return iter(self.households.values())

    def __contains__(self, household_id: HouseholdId) -> bool:
        return household_id in self.households

    def __getitem__(self, household_id: HouseholdId) -> HouseholdType:
        return self.households[household_id]

    def ids(self):
        """The household ids in insertion order."""
        return list(self.households.keys())

    @staticmethod
    def of(*households: HouseholdType) -> "Neighborhood":
        """Build a neighborhood from household types."""
        return Neighborhood({hh.household_id: hh for hh in households})


def validate_allocation(
    reports: Mapping[HouseholdId, Report], allocation: AllocationMap
) -> None:
    """Check an allocation against reports (Section III constraints).

    Every reported household must receive exactly one interval of its
    reported duration inside its reported window.

    Raises:
        IntervalError: When any constraint is violated.
    """
    missing = set(reports) - set(allocation)
    if missing:
        raise IntervalError(f"allocation missing households: {sorted(missing)}")
    extra = set(allocation) - set(reports)
    if extra:
        raise IntervalError(f"allocation covers unknown households: {sorted(extra)}")
    for hid, report in reports.items():
        if not report.preference.admits(allocation[hid]):
            raise IntervalError(
                f"allocation {allocation[hid]} for {hid!r} violates report "
                f"window {report.preference.window} / duration {report.preference.duration}"
            )


def validate_consumption(
    types: Mapping[HouseholdId, HouseholdType], consumption: ConsumptionMap
) -> None:
    """Check consumption against true preferences (Section III).

    A household may defect from its allocation but always consumes its
    duration within its *true* window.

    Raises:
        IntervalError: When any constraint is violated.
    """
    for hid, interval in consumption.items():
        if hid not in types:
            raise IntervalError(f"consumption for unknown household {hid!r}")
        true = types[hid].true_preference
        if interval.length != true.duration:
            raise IntervalError(
                f"{hid!r} consumed {interval.length}h, preferred duration is "
                f"{true.duration}h"
            )
        if not true.window.contains(interval):
            raise IntervalError(
                f"{hid!r} consumption {interval} outside true window {true.window}"
            )
