"""Quasilinear household utility (Eq. 8): valuation minus payment."""

from __future__ import annotations

from typing import Dict, Mapping

from .intervals import Interval
from .types import HouseholdId, HouseholdType
from .valuation import household_valuation


def household_utility(
    household: HouseholdType, allocation: Interval, payment: float
) -> float:
    """Eq. 8 for one household: ``U_i = V_i(tau_i, v_i, rho_i) - p_i``."""
    return household_valuation(household, allocation) - payment


def household_utilities(
    types: Mapping[HouseholdId, HouseholdType],
    allocation: Mapping[HouseholdId, Interval],
    payments: Mapping[HouseholdId, float],
) -> Dict[HouseholdId, float]:
    """Eq. 8 for every household in a settled day."""
    return {
        hid: household_utility(types[hid], allocation[hid], payments[hid])
        for hid in types
    }
