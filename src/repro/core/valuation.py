"""Household valuation function (Eq. 3 and Section IV-B1 criteria).

``V_i(tau, v, rho) = -rho/(2v) * tau**2 + rho * tau`` for ``tau in [0, v]``.

The paper's four criteria, all satisfied by this concave quadratic:

* increasing in ``tau`` up to ``tau = v``, constant thereafter;
* increasing in ``v`` (the maximum ``rho*v/2`` grows with ``v``);
* increasing in ``rho``;
* nonincreasing marginal benefit of ``tau``.
"""

from __future__ import annotations

import numpy as np

from .intervals import Interval
from .types import HouseholdType


def valuation(tau: float, duration: int, valuation_factor: float) -> float:
    """Evaluate Eq. 3.

    Args:
        tau: Hours of the allocation that fall inside the true window,
            ``tau_i in [0, v_i]``.  Values above ``v`` are clamped (the
            valuation is constant beyond the preferred duration).
        duration: Preferred duration ``v_i >= 1``.
        valuation_factor: Willingness-to-pay factor ``rho_i > 0``.

    Returns:
        The household's value (willingness to pay) for the allocation.
    """
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    if valuation_factor <= 0:
        raise ValueError(f"valuation factor must be positive, got {valuation_factor}")
    if tau < 0:
        raise ValueError(f"tau cannot be negative, got {tau}")
    tau = min(tau, float(duration))
    return -valuation_factor / (2.0 * duration) * tau * tau + valuation_factor * tau


def valuation_vector(
    tau: np.ndarray,
    durations: np.ndarray,
    valuation_factors: np.ndarray,
) -> np.ndarray:
    """Vectorized Eq. 3 over parallel household arrays.

    ``tau`` is clamped to ``durations`` elementwise, matching the scalar
    :func:`valuation`; inputs are assumed pre-validated (durations >= 1,
    factors > 0, tau >= 0) as they come from checked domain types.
    """
    durations = np.asarray(durations, dtype=float)
    factors = np.asarray(valuation_factors, dtype=float)
    clamped = np.minimum(np.asarray(tau, dtype=float), durations)
    return -factors / (2.0 * durations) * clamped * clamped + factors * clamped


def max_valuation(duration: int, valuation_factor: float) -> float:
    """The maximum of Eq. 3, ``rho*v/2``, reached at ``tau = v``."""
    return valuation(float(duration), duration, valuation_factor)


def satisfied_hours(allocation: Interval, true_window: Interval) -> int:
    """The paper's ``tau_i``: allocated hours inside the *true* window.

    Per the Theorem 2 proof, ``tau`` is measured on the allocation, not the
    realized consumption — a misreporter whose allocation misses its true
    window gets no value from it even if it then defects back.
    """
    return allocation.overlap(true_window)


def household_valuation(household: HouseholdType, allocation: Interval) -> float:
    """Eq. 3 evaluated for a household's true type and an allocation."""
    tau = satisfied_hours(allocation, household.true_preference.window)
    return valuation(float(tau), household.duration, household.valuation_factor)
