"""Scale sweep: Enki's tractability claim stretched to large communities.

The paper's case against VCG/optimal is that they "would preclude
large-scale systems" while Enki's greedy pass is polynomial.  This
experiment runs the greedy (and the decentralized best-response protocol)
on neighborhoods far beyond the paper's 50 households and reports wall
time and schedule quality.

Expected shape: greedy time grows near-linearly into the thousands of
households with PAR staying in the familiar band — the mechanism really
does scale to the "large community" Samadi et al.'s VCG cannot.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..allocation.base import AllocationProblem
from ..allocation.decentralized import BestResponseDynamicsAllocator
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..core.mechanism import EnkiMechanism, truthful_reports
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class ScalePoint:
    """One population size's measurements."""

    n_households: int
    greedy_ms: float
    settlement_ms: float
    dynamics_ms: float
    dynamics_rounds: float
    par: float


@dataclass
class ScaleResult:
    points: List[ScalePoint]

    def render(self) -> str:
        return format_table(
            ["n", "greedy (ms)", "settle (ms)", "best-response (ms)",
             "rounds", "PAR"],
            [
                (
                    p.n_households,
                    f"{p.greedy_ms:.1f}",
                    f"{p.settlement_ms:.1f}",
                    f"{p.dynamics_ms:.1f}",
                    f"{p.dynamics_rounds:.1f}",
                    f"{p.par:.2f}",
                )
                for p in self.points
            ],
        )


def run(
    populations: Sequence[int] = (100, 250, 500, 1000, 2000),
    seed: Optional[int] = 2017,
) -> ScaleResult:
    """Measure one day per size (generation excluded from timings)."""
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    points: List[ScalePoint] = []
    for n in populations:
        profiles = generator.sample_population(np_rng, n)
        neighborhood = neighborhood_from_profiles(profiles, "wide")
        reports = truthful_reports(neighborhood)
        problem = AllocationProblem.from_reports(
            reports, neighborhood.households, QuadraticPricing()
        )

        started = time.perf_counter()
        greedy_result = GreedyFlexibilityAllocator().solve(
            problem, random.Random(0)
        )
        greedy_ms = (time.perf_counter() - started) * 1000.0

        mechanism = EnkiMechanism()
        started = time.perf_counter()
        mechanism.settle(
            neighborhood,
            reports,
            greedy_result.allocation,
            dict(greedy_result.allocation),
        )
        settlement_ms = (time.perf_counter() - started) * 1000.0

        dynamics = BestResponseDynamicsAllocator(seed=0)
        started = time.perf_counter()
        dynamics.solve(problem)
        dynamics_ms = (time.perf_counter() - started) * 1000.0

        profile = LoadProfile.from_schedule(
            greedy_result.allocation, neighborhood.households
        )
        points.append(
            ScalePoint(
                n_households=n,
                greedy_ms=greedy_ms,
                settlement_ms=settlement_ms,
                dynamics_ms=dynamics_ms,
                dynamics_rounds=float(dynamics.last_stats.rounds),
                par=profile.peak_to_average_ratio(),
            )
        )
    return ScaleResult(points=points)
