"""Extension experiment: decentralized best-response vs Enki's greedy.

The paper's future work names a decentralized mechanism; this experiment
quantifies what the Mohsenian-Rad-style best-response protocol costs
relative to the centralized greedy and the exact optimum on identical §VI
workloads, and how many rounds it needs to converge.

Expected shape: best-response lands within a few percent of greedy (both
near optimal), converging in a handful of rounds — decentralization is
cheap on these workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..allocation.base import AllocationProblem
from ..allocation.decentralized import BestResponseDynamicsAllocator
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..core.mechanism import truthful_reports
from ..pricing.quadratic import QuadraticPricing
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class DecentralizedPoint:
    """One population size's aggregate comparison."""

    n_households: int
    greedy_cost: float
    dynamics_cost: float
    mean_rounds: float
    converged_fraction: float

    @property
    def relative_excess(self) -> float:
        if self.greedy_cost <= 0:
            return 0.0
        return (self.dynamics_cost - self.greedy_cost) / self.greedy_cost


@dataclass
class DecentralizedResult:
    points: List[DecentralizedPoint]

    def render(self) -> str:
        return format_table(
            ["n", "greedy cost", "best-response cost", "excess", "rounds", "converged"],
            [
                (
                    p.n_households,
                    f"{p.greedy_cost:.1f}",
                    f"{p.dynamics_cost:.1f}",
                    f"{p.relative_excess:+.1%}",
                    f"{p.mean_rounds:.1f}",
                    f"{p.converged_fraction:.0%}",
                )
                for p in self.points
            ],
        )


def run(
    populations: Sequence[int] = (10, 20, 30, 40, 50),
    days: int = 5,
    seed: Optional[int] = 2017,
) -> DecentralizedResult:
    """Compare the two schedulers over fresh workloads."""
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    points: List[DecentralizedPoint] = []
    for n in populations:
        greedy_costs: List[float] = []
        dynamics_costs: List[float] = []
        rounds: List[int] = []
        converged = 0
        for day in range(days):
            profiles = generator.sample_population(np_rng, n)
            neighborhood = neighborhood_from_profiles(profiles, "wide")
            problem = AllocationProblem.from_reports(
                truthful_reports(neighborhood),
                neighborhood.households,
                QuadraticPricing(),
            )
            greedy_costs.append(
                GreedyFlexibilityAllocator().solve(problem, random.Random(day)).cost
            )
            allocator = BestResponseDynamicsAllocator(seed=day)
            dynamics_costs.append(allocator.solve(problem).cost)
            stats = allocator.last_stats
            rounds.append(stats.rounds)
            converged += int(stats.converged)
        points.append(
            DecentralizedPoint(
                n_households=n,
                greedy_cost=sum(greedy_costs) / days,
                dynamics_cost=sum(dynamics_costs) / days,
                mean_rounds=sum(rounds) / days,
                converged_fraction=converged / days,
            )
        )
    return DecentralizedResult(points=points)
