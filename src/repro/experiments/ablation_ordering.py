"""Ablation: why does Enki's greedy order by *increasing* flexibility?

DESIGN.md calls out the greedy's ordering as a design choice.  This
ablation compares household orderings under identical workloads:

* ``enki-greedy`` — the paper's order (rigid households first);
* ``flexibility-desc`` — flexible households first;
* ``order-random`` — greedy placement in arrival (random) order;
* ``random`` — uniform random placement, for scale.

Expected shape: ascending flexibility wins because rigid households have
no choices anyway, so placing them first lets flexible households fill the
remaining valleys; descending wastes the flexible households' slack early.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..allocation.arrays import compile_problem
from ..allocation.base import AllocationProblem, AllocationResult, Allocator
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..allocation.random_alloc import RandomAllocator
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import AllocationMap
from ..pricing.quadratic import QuadraticPricing
from ..sim.engine import SocialWelfareStudy
from ..sim.metrics import SeriesPoint, summarize_records
from ..sim.results import format_table


class ArrivalOrderGreedy(GreedyFlexibilityAllocator):
    """Greedy marginal-cost placement in shuffled (arrival) order.

    Isolates the ordering from the placement rule: placements are still
    cost-minimizing, only the flexibility-based ordering is removed.
    """

    name = "order-random"

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random()
        order = list(problem.items)
        rng.shuffle(order)

        loads = np.zeros(HOURS_PER_DAY, dtype=float)
        prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        window_prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        allocation: AllocationMap = {}
        quadratic = isinstance(problem.pricing, QuadraticPricing)
        compiled = compile_problem(problem)
        for item in order:
            best_start = self._best_start(
                problem, compiled, loads, prefix, item, quadratic, window_prefix
            )
            placed = Interval(best_start, best_start + item.duration)
            allocation[item.household_id] = placed
            loads[placed.start:placed.end] += item.rating_kw
            np.cumsum(loads, out=prefix[1:])
        return self._finish(problem, allocation, started_at)


class DescendingFlexibilityGreedy(GreedyFlexibilityAllocator):
    """The paper's greedy with the flexibility ordering reversed."""

    name = "flexibility-desc"

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__(ascending=False, seed=seed)


@dataclass
class OrderingAblationResult:
    points: List[SeriesPoint]

    def mean_cost(self, allocator: str) -> float:
        """Mean daily cost of one ordering, averaged over populations."""
        cells = [p for p in self.points if p.allocator == allocator]
        if not cells:
            raise KeyError(f"no records for allocator {allocator!r}")
        return sum(p.cost.mean for p in cells) / len(cells)

    def render(self) -> str:
        by_key: Dict[tuple, SeriesPoint] = {
            (p.n_households, p.allocator): p for p in self.points
        }
        populations = sorted({p.n_households for p in self.points})
        allocators = sorted({p.allocator for p in self.points})
        rows = [
            (n, *(f"{by_key[(n, name)].cost.mean:.1f}" for name in allocators))
            for n in populations
        ]
        return format_table(["n"] + list(allocators), rows)


def run(
    populations: Sequence[int] = (10, 20, 30),
    days: int = 5,
    seed: Optional[int] = 2017,
) -> OrderingAblationResult:
    """Run the ordering ablation."""
    allocators: List[Allocator] = [
        GreedyFlexibilityAllocator(ascending=True),
        DescendingFlexibilityGreedy(),
        ArrivalOrderGreedy(),
        RandomAllocator(),
    ]
    study = SocialWelfareStudy(allocators)
    records = study.sweep(populations, days, seed)
    return OrderingAblationResult(points=summarize_records(records))
