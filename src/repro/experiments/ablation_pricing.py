"""Ablation: quadratic vs two-step piecewise pricing.

Section III argues any increasing, strictly convex hourly price supports
the model and names a two-step piecewise function as the alternative.
This ablation runs the greedy allocator under both pricing models on
identical workloads and reports peak and PAR — the two-step price is
convex but not *strictly* convex, so the greedy faces cost-neutral
placements and flattens the profile less reliably.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..allocation.base import AllocationProblem
from ..allocation.greedy import GreedyFlexibilityAllocator
from ..core.mechanism import truthful_reports
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.piecewise import TwoStepPricing
from ..pricing.quadratic import QuadraticPricing
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class PricingPoint:
    """One (pricing model, population) cell."""

    pricing: str
    n_households: int
    mean_par: float
    mean_peak_kw: float


@dataclass
class PricingAblationResult:
    points: List[PricingPoint]

    def mean_par(self, pricing: str) -> float:
        cells = [p for p in self.points if p.pricing == pricing]
        if not cells:
            raise KeyError(f"no records for pricing {pricing!r}")
        return sum(p.mean_par for p in cells) / len(cells)

    def render(self) -> str:
        populations = sorted({p.n_households for p in self.points})
        names = sorted({p.pricing for p in self.points})
        indexed = {(p.pricing, p.n_households): p for p in self.points}
        rows = []
        for n in populations:
            rows.append(
                (
                    n,
                    *(
                        f"{indexed[(name, n)].mean_par:.2f}/"
                        f"{indexed[(name, n)].mean_peak_kw:.0f}kW"
                        for name in names
                    ),
                )
            )
        return format_table(["n"] + [f"{name} (PAR/peak)" for name in names], rows)


def run(
    populations: Sequence[int] = (10, 20, 30),
    days: int = 5,
    seed: Optional[int] = 2017,
) -> PricingAblationResult:
    """Run the pricing ablation."""
    pricings: List[PricingModel] = [
        QuadraticPricing(),
        TwoStepPricing(threshold_kw=10.0, low_rate=1.0, high_rate=6.0),
    ]
    generator = ProfileGenerator()
    points: List[PricingPoint] = []
    for pricing in pricings:
        name = type(pricing).__name__
        np_rng = np.random.default_rng(seed)
        for n in populations:
            pars: List[float] = []
            peaks: List[float] = []
            for day in range(days):
                profiles = generator.sample_population(np_rng, n)
                neighborhood = neighborhood_from_profiles(profiles, "wide")
                reports = truthful_reports(neighborhood)
                problem = AllocationProblem.from_reports(
                    reports, neighborhood.households, pricing
                )
                result = GreedyFlexibilityAllocator().solve(
                    problem, random.Random(day)
                )
                profile = LoadProfile.from_schedule(
                    result.allocation, neighborhood.households
                )
                pars.append(profile.peak_to_average_ratio())
                peaks.append(profile.peak_kw)
            points.append(
                PricingPoint(
                    pricing=name,
                    n_households=n,
                    mean_par=sum(pars) / len(pars),
                    mean_peak_kw=sum(peaks) / len(peaks),
                )
            )
    return PricingAblationResult(points=points)
