"""Ablation: the payment scale factor xi (Eq. 7).

Theorem 1's budget balance is ``(xi - 1) * kappa >= 0``; raising xi makes
the center's surplus grow linearly while every household's utility falls
by the same total.  This ablation sweeps xi and reports the surplus, mean
household utility, and the fraction of households with negative utility —
quantifying the individual-rationality erosion Theorem 4 predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class XiPoint:
    """Aggregates for one xi value."""

    xi: float
    center_surplus: float
    mean_utility: float
    negative_utility_fraction: float


@dataclass
class XiAblationResult:
    points: List[XiPoint]

    def render(self) -> str:
        return format_table(
            ["xi", "center surplus ($)", "mean utility", "negative-utility share"],
            [
                (
                    f"{p.xi:.2f}",
                    f"{p.center_surplus:.1f}",
                    f"{p.mean_utility:.2f}",
                    f"{p.negative_utility_fraction:.0%}",
                )
                for p in self.points
            ],
        )


def run(
    xis: Sequence[float] = (1.0, 1.1, 1.2, 1.5, 2.0),
    n_households: int = 30,
    days: int = 5,
    seed: Optional[int] = 2017,
) -> XiAblationResult:
    """Sweep xi over identical workloads."""
    generator = ProfileGenerator()
    points: List[XiPoint] = []
    for xi in xis:
        np_rng = np.random.default_rng(seed)
        mechanism = EnkiMechanism(xi=xi)
        surplus = 0.0
        utilities: List[float] = []
        for day in range(days):
            profiles = generator.sample_population(np_rng, n_households)
            neighborhood = neighborhood_from_profiles(profiles, "wide")
            outcome = mechanism.run_day(neighborhood, rng=random.Random(day))
            surplus += outcome.settlement.neighborhood_utility
            utilities.extend(outcome.settlement.utilities.values())
        points.append(
            XiPoint(
                xi=xi,
                center_surplus=surplus / days,
                mean_utility=sum(utilities) / len(utilities),
                negative_utility_fraction=(
                    sum(1 for u in utilities if u < 0) / len(utilities)
                ),
            )
        )
    return XiAblationResult(points=points)
