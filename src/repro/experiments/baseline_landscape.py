"""The Section II DSM landscape, measured: DLC vs PBC vs no-control vs Enki.

The paper motivates Enki against the two incumbent DSM families:

* **DLC** flattens the peak by fiat but leaves needs unmet ("consumers
  often find ceding such control ... risky") — we report the unserved
  fraction of requested appliance-hours.
* **PBC/RTP** lets price signals steer behaviour, but "they all tend to
  shift to the lowest price period without a controller" — we track the
  migrating peak hour and the persistent PAR across a price-response
  episode.
* **No control** (usage-proportional billing, everyone at its preferred
  slot) anchors the scale.
* **Enki** achieves DLC-like peaks with zero unserved demand, which is the
  paper's pitch in one table.

Expected shape: DLC has the lowest peak but positive unserved demand; RTP
keeps a high PAR while its peak hour wanders across the episode; Enki's
PAR approaches DLC's with unserved = 0 and a stable peak hour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..mechanisms.dlc import DirectLoadControl
from ..mechanisms.proportional import ProportionalMechanism
from ..mechanisms.rtp import RealTimePricingControl
from ..pricing.load_profile import LoadProfile
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class LandscapeRow:
    """One mechanism's averages over the simulated days."""

    mechanism: str
    mean_par: float
    mean_peak_kw: float
    mean_cost: float
    unserved_fraction: float
    distinct_peak_hours: int


@dataclass
class LandscapeResult:
    rows: List[LandscapeRow]

    def row(self, mechanism: str) -> LandscapeRow:
        for row in self.rows:
            if row.mechanism == mechanism:
                return row
        raise KeyError(f"no row for mechanism {mechanism!r}")

    def render(self) -> str:
        return format_table(
            ["mechanism", "PAR", "peak (kW)", "cost ($)", "unserved", "peak hours"],
            [
                (
                    row.mechanism,
                    f"{row.mean_par:.2f}",
                    f"{row.mean_peak_kw:.1f}",
                    f"{row.mean_cost:.1f}",
                    f"{row.unserved_fraction:.1%}",
                    row.distinct_peak_hours,
                )
                for row in self.rows
            ],
        )


def _summarize(name: str, profiles: List[LoadProfile], costs: List[float],
               unserved: float) -> LandscapeRow:
    pars = [profile.peak_to_average_ratio() for profile in profiles]
    peaks = [profile.peak_kw for profile in profiles]
    hours = {int(profile.as_array().argmax()) for profile in profiles}
    return LandscapeRow(
        mechanism=name,
        mean_par=sum(pars) / len(pars),
        mean_peak_kw=sum(peaks) / len(peaks),
        mean_cost=sum(costs) / len(costs),
        unserved_fraction=unserved,
        distinct_peak_hours=len(hours),
    )


def run(
    n_households: int = 30,
    days: int = 8,
    dlc_cap_fraction: float = 0.5,
    seed: Optional[int] = 2017,
) -> LandscapeResult:
    """Run every mechanism over the same multi-day §VI workload.

    Args:
        n_households: Neighborhood size.
        days: Episode length (RTP needs several days to show herding).
        dlc_cap_fraction: DLC's hourly cap as a fraction of the
            uncoordinated peak.
        seed: Master seed; every mechanism sees identical daily workloads.
    """
    if days < 2:
        raise ValueError(f"need at least 2 days, got {days}")
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    daily_neighborhoods = [
        neighborhood_from_profiles(
            generator.sample_population(np_rng, n_households), "wide"
        )
        for _ in range(days)
    ]

    rows: List[LandscapeRow] = []

    # --- no control ---------------------------------------------------------
    baseline = ProportionalMechanism()
    base_profiles: List[LoadProfile] = []
    base_costs: List[float] = []
    for day, neighborhood in enumerate(daily_neighborhoods):
        result = baseline.run_day(neighborhood, rng=random.Random(day))
        base_profiles.append(
            LoadProfile.from_schedule(result.consumption, neighborhood.households)
        )
        base_costs.append(result.total_cost)
    rows.append(_summarize("no-control", base_profiles, base_costs, unserved=0.0))

    # --- DLC -----------------------------------------------------------------
    cap_kw = max(1.0, dlc_cap_fraction * base_profiles[0].peak_kw)
    dlc = DirectLoadControl(cap_kw=cap_kw)
    dlc_profiles: List[LoadProfile] = []
    dlc_costs: List[float] = []
    unserved: List[float] = []
    for day, neighborhood in enumerate(daily_neighborhoods):
        result = dlc.run_day(neighborhood, rng=random.Random(day))
        dlc_profiles.append(dlc.last_details.served_profile)
        dlc_costs.append(result.total_cost)
        unserved.append(dlc.last_details.unserved_fraction)
    rows.append(
        _summarize("dlc", dlc_profiles, dlc_costs, sum(unserved) / len(unserved))
    )

    # --- RTP (price herding) -------------------------------------------------
    rtp = RealTimePricingControl()
    rtp.reset()
    rtp_profiles: List[LoadProfile] = []
    rtp_costs: List[float] = []
    for day, neighborhood in enumerate(daily_neighborhoods):
        result = rtp.run_day(neighborhood, rng=random.Random(day))
        rtp_profiles.append(
            LoadProfile.from_schedule(result.consumption, neighborhood.households)
        )
        rtp_costs.append(result.total_cost)
    rows.append(_summarize("rtp", rtp_profiles, rtp_costs, unserved=0.0))

    # --- Enki ----------------------------------------------------------------
    enki = EnkiMechanism(seed=0)
    enki_profiles: List[LoadProfile] = []
    enki_costs: List[float] = []
    for day, neighborhood in enumerate(daily_neighborhoods):
        outcome = enki.run_day(neighborhood, rng=random.Random(day))
        enki_profiles.append(outcome.settlement.load_profile)
        enki_costs.append(outcome.settlement.total_cost)
    rows.append(_summarize("enki", enki_profiles, enki_costs, unserved=0.0))

    return LandscapeResult(rows=rows)
