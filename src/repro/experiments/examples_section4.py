"""The worked Examples 1-4 of Section IV (Figures 2 and 3).

These small three-household scenarios pin down the mechanism's intended
behaviour and double as executable documentation:

* Example 1: identical preferences -> equal payments.
* Example 2: a narrower truthful window (A) -> lower flexibility, higher
  payment (N_B = 2.5, f_B = 0.8 exactly).
* Example 3: an off-peak window (A) -> highest flexibility; B and C share
  the peak risk (Figure 2's permutations collapse to A getting (16, 18)).
* Example 4 (Figure 3): B defects from its allocation -> positive
  defection score and a higher payment than A.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.intervals import Interval
from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import HouseholdType, Neighborhood, Preference, Report
from ..sim.results import format_table


def example1_neighborhood() -> Neighborhood:
    """Three households with the identical preference (18, 20, 1)."""
    pref = Preference.of(18, 20, 1)
    return Neighborhood.of(
        HouseholdType("A", pref, 5.0),
        HouseholdType("B", pref, 5.0),
        HouseholdType("C", pref, 5.0),
    )


def example2_neighborhood() -> Neighborhood:
    """A reports (18, 19, 1); B and C report (18, 20, 1)."""
    return Neighborhood.of(
        HouseholdType("A", Preference.of(18, 19, 1), 5.0),
        HouseholdType("B", Preference.of(18, 20, 1), 5.0),
        HouseholdType("C", Preference.of(18, 20, 1), 5.0),
    )


def example3_neighborhood() -> Neighborhood:
    """A reports (16, 18, 2); B and C report (18, 21, 2)."""
    return Neighborhood.of(
        HouseholdType("A", Preference.of(16, 18, 2), 5.0),
        HouseholdType("B", Preference.of(18, 21, 2), 5.0),
        HouseholdType("C", Preference.of(18, 21, 2), 5.0),
    )


@dataclass
class SectionFourResult:
    example1: DayOutcome
    example2: DayOutcome
    example3: DayOutcome
    example4: DayOutcome

    def render(self) -> str:
        blocks = []
        for label, outcome, note in (
            ("Example 1", self.example1, "identical preferences -> equal payments"),
            ("Example 2", self.example2, "narrow window (A) pays more"),
            ("Example 3", self.example3, "off-peak window (A) pays least"),
            ("Example 4", self.example4, "defector (B) pays more than A"),
        ):
            rows = [
                (
                    hid,
                    str(outcome.allocation[hid]),
                    str(outcome.consumption[hid]),
                    f"{outcome.settlement.flexibility[hid]:.3f}",
                    f"{outcome.settlement.defection[hid]:.3f}",
                    f"{outcome.settlement.payments[hid]:.3f}",
                )
                for hid in sorted(outcome.allocation)
            ]
            table = format_table(
                ["household", "allocation", "consumption", "f", "delta", "payment"],
                rows,
            )
            blocks.append(f"{label} — {note}\n{table}")
        return "\n\n".join(blocks)


def run(seed: Optional[int] = 7) -> SectionFourResult:
    """Replay the four worked examples."""
    mechanism = EnkiMechanism()
    rng = random.Random(seed)

    example1 = mechanism.run_day(example1_neighborhood(), rng=rng)
    example2 = mechanism.run_day(example2_neighborhood(), rng=rng)
    example3 = mechanism.run_day(example3_neighborhood(), rng=rng)

    # Example 4: A and B both report (18, 20, 1); allocations split the two
    # hours; B then consumes the other hour (defects) while A cooperates.
    pref = Preference.of(18, 20, 1)
    neighborhood = Neighborhood.of(
        HouseholdType("A", pref, 5.0), HouseholdType("B", pref, 5.0)
    )
    reports = {"A": Report("A", pref), "B": Report("B", pref)}
    allocation_result = mechanism.allocate(neighborhood, reports, rng)
    allocation = allocation_result.allocation
    consumption = dict(allocation)
    # B overrides its allocation with the hour it was not assigned.
    b_alloc = allocation["B"]
    consumption["B"] = Interval(18, 19) if b_alloc.start == 19 else Interval(19, 20)
    settlement = mechanism.settle(neighborhood, reports, allocation, consumption)
    example4 = DayOutcome(
        reports=reports,
        allocation_result=allocation_result,
        consumption=consumption,
        settlement=settlement,
    )
    return SectionFourResult(example1, example2, example3, example4)
