"""Extension experiment: does the payoff calculator change behaviour?

Section VII-B hands subjects "a calculator to help them estimate their
payoffs from different intervals" (citing Masatlioglu et al.'s behavioral
mechanism design), and Section VII-D closes by stressing "the importance
of developing intuitive user interfaces".  This experiment measures the
tooling effect directly: the same study design is run with (a) the
default human-like subject pool and (b) a pool whose learning subjects
are replaced by calculator-guided rational subjects.

Expected shape: the calculator-guided pool defects less in every stage —
tooling substitutes for learning, which is the paper's UI point made
quantitative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.mechanism import EnkiMechanism
from ..sim.results import format_table
from ..userstudy.analysis import STAGE_ORDER, average_defection_rates
from ..userstudy.calculator import CalculatorGuidedSubject, PayoffCalculator
from ..userstudy.subjects import RandomSubject, SubjectModel
from ..userstudy.treatments import run_study


@dataclass
class CalculatorEffectResult:
    default_rates: Dict[str, float]
    guided_rates: Dict[str, float]

    @property
    def overall_reduction(self) -> float:
        """Defection-rate drop from tooling (positive = calculator helps)."""
        return self.default_rates["Overall"] - self.guided_rates["Overall"]

    def render(self) -> str:
        return format_table(
            ["stage", "default pool", "calculator-guided pool", "reduction"],
            [
                (
                    stage,
                    f"{self.default_rates[stage]:.3f}",
                    f"{self.guided_rates[stage]:.3f}",
                    f"{self.default_rates[stage] - self.guided_rates[stage]:+.3f}",
                )
                for stage in STAGE_ORDER
            ],
        )


def _guided_pool(rng: random.Random) -> List[SubjectModel]:
    """The default mix with its 16 non-random subjects using the calculator."""
    calculator = PayoffCalculator(EnkiMechanism(), repeats=1)
    pool: List[SubjectModel] = [RandomSubject() for _ in range(4)]
    pool.extend(
        CalculatorGuidedSubject(calculator, assumed_crowd=4) for _ in range(16)
    )
    return pool


def run(seed: Optional[int] = 2017) -> CalculatorEffectResult:
    """Run both pools through the full study design."""
    default_study = run_study(seed=seed)
    guided_study = run_study(
        subject_pool=_guided_pool(random.Random(seed)), seed=seed
    )
    return CalculatorEffectResult(
        default_rates=average_defection_rates(default_study),
        guided_rates=average_defection_rates(guided_study),
    )
