"""Extension experiment: do pre-coordinating coalitions help under Enki?

The conclusion's future-work direction, made measurable: households form
small coalitions, flatten their joint demand internally, and commit to
zero-slack reports.  The experiment contrasts neighborhood cost and mean
flexibility scores with plain truthful Enki across coalition sizes.

Expected shape: coalition pre-commitment narrows the windows the center
sees, so flexibility scores drop and the center loses scheduling freedom —
coalitions rarely beat plain truthful reporting under Enki, which is
precisely the incentive Property 1 is designed to create.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..extensions.coalitions import compare_with_plain_enki
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class CoalitionPoint:
    """One (coalition size, population) aggregate."""

    max_size: int
    n_households: int
    mean_cost_change: float
    mean_flexibility_drop: float


@dataclass
class CoalitionResult:
    points: List[CoalitionPoint]

    def render(self) -> str:
        return format_table(
            ["max size", "n", "Δcost (coalition − plain)", "Δmean flexibility"],
            [
                (
                    p.max_size,
                    p.n_households,
                    f"{p.mean_cost_change:+.1f}",
                    f"{-p.mean_flexibility_drop:+.3f}",
                )
                for p in self.points
            ],
        )


def run(
    sizes: Sequence[int] = (2, 3, 5),
    n_households: int = 30,
    days: int = 5,
    seed: Optional[int] = 2017,
) -> CoalitionResult:
    """Sweep coalition size caps over identical workloads."""
    generator = ProfileGenerator()
    points: List[CoalitionPoint] = []
    for max_size in sizes:
        np_rng = np.random.default_rng(seed)
        cost_changes: List[float] = []
        flexibility_drops: List[float] = []
        for day in range(days):
            profiles = generator.sample_population(np_rng, n_households)
            neighborhood = neighborhood_from_profiles(profiles, "wide")
            comparison = compare_with_plain_enki(
                neighborhood, max_size=max_size, seed=day
            )
            cost_changes.append(comparison.cost_change)
            flexibility_drops.append(
                comparison.plain_mean_flexibility
                - comparison.coalition_mean_flexibility
            )
        points.append(
            CoalitionPoint(
                max_size=max_size,
                n_households=n_households,
                mean_cost_change=sum(cost_changes) / days,
                mean_flexibility_drop=sum(flexibility_drops) / days,
            )
        )
    return CoalitionResult(points=points)
