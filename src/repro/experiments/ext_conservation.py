"""Extension experiment: conserving aggregate demand via the billing scale.

The paper's final future-work sentence asks for mechanisms that "reduce
aggregate demand (i.e., save power not just shift load)."  With optional
loads (`repro.extensions.conservation`), Enki's billing scale xi becomes a
conservation knob: higher xi prices out lower-valuation loads.  This
experiment sweeps xi and reports served energy, abstention rate and the
resulting peak.

Expected shape: served energy and peak fall monotonically (weakly) in xi;
abstention starts with the lowest-valuation households.  Note the level:
under the paper's Section VI parameters a large share of households is
already underwater at xi = 1 (valuations cap at rho*v/2 <= 20 while peak
payments run higher — the Theorem 4 discussion), so rational opt-out
rates are substantial even before raising xi.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..extensions.conservation import ConservationEnki
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class ConservationPoint:
    """Aggregates for one xi across the simulated days."""

    xi: float
    mean_served_energy_kwh: float
    mean_abstention_rate: float
    mean_peak_kw: float


@dataclass
class ConservationResult:
    points: List[ConservationPoint]

    def render(self) -> str:
        return format_table(
            ["xi", "served energy (kWh)", "abstention", "peak (kW)"],
            [
                (
                    f"{p.xi:.2f}",
                    f"{p.mean_served_energy_kwh:.1f}",
                    f"{p.mean_abstention_rate:.1%}",
                    f"{p.mean_peak_kw:.1f}",
                )
                for p in self.points
            ],
        )


def run(
    xis: Sequence[float] = (1.0, 1.2, 1.5, 2.0, 3.0),
    n_households: int = 20,
    days: int = 5,
    seed: Optional[int] = 2017,
) -> ConservationResult:
    """Sweep xi over identical workloads with optional loads."""
    generator = ProfileGenerator()
    points: List[ConservationPoint] = []
    for xi in xis:
        np_rng = np.random.default_rng(seed)
        served: List[float] = []
        abstention: List[float] = []
        peaks: List[float] = []
        conserving = ConservationEnki(EnkiMechanism(xi=xi))
        for day in range(days):
            profiles = generator.sample_population(np_rng, n_households)
            neighborhood = neighborhood_from_profiles(profiles, "wide")
            result = conserving.run_day(neighborhood, rng=random.Random(day))
            served.append(result.served_energy_kwh)
            abstention.append(result.abstention_rate)
            peaks.append(
                result.outcome.settlement.load_profile.peak_kw
                if result.outcome is not None
                else 0.0
            )
        points.append(
            ConservationPoint(
                xi=xi,
                mean_served_energy_kwh=sum(served) / days,
                mean_abstention_rate=sum(abstention) / days,
                mean_peak_kw=sum(peaks) / days,
            )
        )
    return ConservationResult(points=points)
