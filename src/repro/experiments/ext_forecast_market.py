"""Extension experiment: ECC forecast quality vs market imbalance cost.

The paper's architecture has each ECC "learn each household's daily power
consumption pattern ... and report the household's demand for the next
day" (Section I), while the day-ahead setting charges the neighborhood for
any gap between its purchased position and realized consumption (Rose et
al., the paper's [24]).  This experiment closes that loop: households have
noisy day-to-day preferences, ECC units forecast tomorrow's window from
observed history, the neighborhood buys the forecast schedule day-ahead
and settles imbalance.

Expected shape: the oracle (true reports) pays no imbalance; the learning
forecasters start poorly and converge, ending with a small imbalance share
— and the histogram learner's wider quantile windows beat the EWMA's
narrow ones on defection, at the price of looser day-ahead positions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..agents.forecasting import EwmaForecaster, Forecaster, HistogramForecaster
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdType, Neighborhood, Preference, Report
from ..market.dayahead import DayAheadMarket
from ..market.procurement import ProcurementPipeline
from ..market.supply import QuadraticSupplyCurve
from ..sim.results import format_table

#: Forecaster factories by name; ``oracle`` reports the true window.
FORECASTERS: Dict[str, Optional[Callable[[], Forecaster]]] = {
    "oracle": None,
    "histogram": lambda: HistogramForecaster(margin=1),
    "ewma": lambda: EwmaForecaster(alpha=0.3, half_width=2),
}


@dataclass
class ForecastMarketRow:
    """One forecaster's aggregate over the simulated horizon."""

    forecaster: str
    day_ahead_cost: float
    imbalance_cost: float
    imbalance_share: float
    defection_rate: float


@dataclass
class ForecastMarketResult:
    rows: List[ForecastMarketRow]

    def row(self, forecaster: str) -> ForecastMarketRow:
        for row in self.rows:
            if row.forecaster == forecaster:
                return row
        raise KeyError(f"no row for forecaster {forecaster!r}")

    def render(self) -> str:
        return format_table(
            ["forecaster", "day-ahead ($)", "imbalance ($)", "imbalance share",
             "defection rate"],
            [
                (
                    row.forecaster,
                    f"{row.day_ahead_cost:.1f}",
                    f"{row.imbalance_cost:.1f}",
                    f"{row.imbalance_share:.1%}",
                    f"{row.defection_rate:.1%}",
                )
                for row in self.rows
            ],
        )


def _noisy_window(base: Preference, shift: int) -> Preference:
    """The base window shifted by the day's noise, clamped to the day."""
    duration = base.duration
    start = max(0, min(base.window.start + shift, HOURS_PER_DAY - duration))
    end = max(start + duration, min(base.window.end + shift, HOURS_PER_DAY))
    return Preference(Interval(start, end), duration)


def run(
    n_households: int = 15,
    days: int = 20,
    noise_hours: int = 1,
    seed: Optional[int] = 2017,
) -> ForecastMarketResult:
    """Simulate the forecast-procure-settle loop for each forecaster."""
    if days < 2:
        raise ValueError(f"need at least 2 days, got {days}")
    master = np.random.default_rng(seed)
    base_windows: List[Preference] = []
    for index in range(n_households):
        duration = int(master.integers(1, 4))
        begin = int(master.integers(14, 21 - duration))
        width = duration + int(master.integers(2, 5))
        end = min(HOURS_PER_DAY, begin + width)
        base_windows.append(Preference(Interval(begin, end), duration))

    # Pre-draw each day's shift noise so every forecaster faces the same days.
    shifts = master.integers(-noise_hours, noise_hours + 1, size=(days, n_households))

    rows: List[ForecastMarketRow] = []
    for name, factory in FORECASTERS.items():
        pipeline = ProcurementPipeline(
            market=DayAheadMarket(QuadraticSupplyCurve(sigma=0.3)),
            mechanism=EnkiMechanism(seed=0),
        )
        forecasters: List[Optional[Forecaster]] = [
            factory() if factory is not None else None for _ in range(n_households)
        ]
        day_ahead_total = 0.0
        imbalance_total = 0.0
        defections = 0
        decisions = 0
        for day in range(days):
            true_prefs = [
                _noisy_window(base_windows[i], int(shifts[day][i]))
                for i in range(n_households)
            ]
            households = [
                HouseholdType(f"hh{i:02d}", true_prefs[i], 5.0)
                for i in range(n_households)
            ]
            neighborhood = Neighborhood.of(*households)

            reports: Dict[str, Report] = {}
            for i, household in enumerate(households):
                forecaster = forecasters[i]
                if forecaster is None or forecaster.n_observations == 0:
                    predicted = household.true_preference
                else:
                    predicted = forecaster.predict()
                    if predicted.duration != household.duration:
                        # Durations are truthful in the model; keep the
                        # learned window when it fits, else fall back.
                        if predicted.window.length >= household.duration:
                            predicted = Preference(
                                predicted.window, household.duration
                            )
                        else:
                            predicted = household.true_preference
                reports[household.household_id] = Report(
                    household.household_id, predicted
                )

            result = pipeline.run_day(
                neighborhood, reports, rng=random.Random(day)
            )
            day_ahead_total += result.day_ahead_cost
            imbalance_total += result.imbalance_cost
            outcome = result.mechanism_day
            for hid in neighborhood.ids():
                decisions += 1
                if outcome.defected(hid):
                    defections += 1

            for i, household in enumerate(households):
                forecaster = forecasters[i]
                if forecaster is not None:
                    consumed = outcome.consumption[household.household_id]
                    forecaster.update(consumed.start, consumed.length)

        total = day_ahead_total + imbalance_total
        rows.append(
            ForecastMarketRow(
                forecaster=name,
                day_ahead_cost=day_ahead_total,
                imbalance_cost=imbalance_total,
                imbalance_share=imbalance_total / total if total > 0 else 0.0,
                defection_rate=defections / decisions if decisions else 0.0,
            )
        )
    return ForecastMarketResult(rows=rows)
