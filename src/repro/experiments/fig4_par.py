"""Figure 4: peak-to-average ratio (PAR) for Enki and Optimal.

Paper reading: the PAR of the two allocations are close to each other at
every population size (differences "are not large"), both roughly flat in
the 2-4 band across 10-50 households.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..sim.results import format_table
from .social_welfare import (
    ENKI,
    OPTIMAL,
    PAPER_DAYS,
    PAPER_POPULATIONS,
    SocialWelfareResult,
    run_social_welfare_study,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache


@dataclass
class Fig4Row:
    """One x-axis point of Figure 4."""

    n_households: int
    enki_par: float
    enki_ci: float
    optimal_par: float
    optimal_ci: float

    @property
    def gap(self) -> float:
        """Enki PAR minus Optimal PAR (small and nonnegative-ish expected)."""
        return self.enki_par - self.optimal_par


@dataclass
class Fig4Result:
    rows: List[Fig4Row]

    def render(self) -> str:
        """The figure's two series as an aligned table."""
        return format_table(
            ["n", "Enki PAR", "±95%", "Optimal PAR", "±95%", "gap"],
            [
                (
                    row.n_households,
                    f"{row.enki_par:.3f}",
                    f"{row.enki_ci:.3f}",
                    f"{row.optimal_par:.3f}",
                    f"{row.optimal_ci:.3f}",
                    f"{row.gap:+.3f}",
                )
                for row in self.rows
            ],
        )


def extract(result: SocialWelfareResult) -> Fig4Result:
    """Project a social-welfare run onto Figure 4's series."""
    enki = {p.n_households: p for p in result.series(ENKI)}
    optimal = {p.n_households: p for p in result.series(OPTIMAL)}
    rows = [
        Fig4Row(
            n_households=n,
            enki_par=enki[n].par.mean,
            enki_ci=enki[n].par.half_width,
            optimal_par=optimal[n].par.mean,
            optimal_ci=optimal[n].par.half_width,
        )
        for n in sorted(set(enki) & set(optimal))
    ]
    return Fig4Result(rows=rows)


def run(
    populations: Sequence[int] = PAPER_POPULATIONS,
    days: int = PAPER_DAYS,
    seed: Optional[int] = 2017,
    optimal_time_limit_s: float = 60.0,
    workers: Optional[int] = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    columnar: bool = False,
    bnb_workers: Optional[int] = 1,
    batch_days: int = 1,
    alloc_cache: Optional["AllocationCache"] = None,
) -> Fig4Result:
    """Regenerate Figure 4 from scratch."""
    return extract(
        run_social_welfare_study(
            populations,
            days,
            seed,
            optimal_time_limit_s,
            workers=workers,
            checkpoint_path=checkpoint_path,
            resume=resume,
            columnar=columnar,
            bnb_workers=bnb_workers,
            batch_days=batch_days,
            alloc_cache=alloc_cache,
        )
    )
