"""Figure 5: cost to the neighborhood for Enki and Optimal.

Paper reading: the two allocations' costs are close at every population
size, growing to roughly $1500 at 50 households with sigma = 0.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..sim.results import format_table
from .social_welfare import (
    ENKI,
    OPTIMAL,
    PAPER_DAYS,
    PAPER_POPULATIONS,
    SocialWelfareResult,
    run_social_welfare_study,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache


@dataclass
class Fig5Row:
    """One x-axis point of Figure 5."""

    n_households: int
    enki_cost: float
    enki_ci: float
    optimal_cost: float
    optimal_ci: float

    @property
    def relative_excess(self) -> float:
        """Enki's cost overhead relative to Optimal (expected to be small)."""
        if self.optimal_cost <= 0:
            return 0.0
        return (self.enki_cost - self.optimal_cost) / self.optimal_cost


@dataclass
class Fig5Result:
    rows: List[Fig5Row]

    def render(self) -> str:
        return format_table(
            ["n", "Enki cost ($)", "±95%", "Optimal cost ($)", "±95%", "excess"],
            [
                (
                    row.n_households,
                    f"{row.enki_cost:.1f}",
                    f"{row.enki_ci:.1f}",
                    f"{row.optimal_cost:.1f}",
                    f"{row.optimal_ci:.1f}",
                    f"{row.relative_excess:+.2%}",
                )
                for row in self.rows
            ],
        )


def extract(result: SocialWelfareResult) -> Fig5Result:
    """Project a social-welfare run onto Figure 5's series."""
    enki = {p.n_households: p for p in result.series(ENKI)}
    optimal = {p.n_households: p for p in result.series(OPTIMAL)}
    rows = [
        Fig5Row(
            n_households=n,
            enki_cost=enki[n].cost.mean,
            enki_ci=enki[n].cost.half_width,
            optimal_cost=optimal[n].cost.mean,
            optimal_ci=optimal[n].cost.half_width,
        )
        for n in sorted(set(enki) & set(optimal))
    ]
    return Fig5Result(rows=rows)


def run(
    populations: Sequence[int] = PAPER_POPULATIONS,
    days: int = PAPER_DAYS,
    seed: Optional[int] = 2017,
    optimal_time_limit_s: float = 60.0,
    workers: Optional[int] = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    columnar: bool = False,
    bnb_workers: Optional[int] = 1,
    batch_days: int = 1,
    alloc_cache: Optional["AllocationCache"] = None,
) -> Fig5Result:
    """Regenerate Figure 5 from scratch."""
    return extract(
        run_social_welfare_study(
            populations,
            days,
            seed,
            optimal_time_limit_s,
            workers=workers,
            checkpoint_path=checkpoint_path,
            resume=resume,
            columnar=columnar,
            bnb_workers=bnb_workers,
            batch_days=batch_days,
            alloc_cache=alloc_cache,
        )
    )
