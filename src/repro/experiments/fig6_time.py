"""Figure 6: time to compute Enki's allocation vs Optimal.

Paper reading: Enki's greedy allocation is effectively instantaneous while
the exact solver's time explodes with population size — "when the number
of households is over 40, Optimal on average takes around 600 times
longer".  The absolute times here come from a pure-Python branch-and-bound
rather than CPLEX, so the slowdown *factor* (reported per row) is the
comparable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..sim.results import format_table
from .social_welfare import (
    ENKI,
    OPTIMAL,
    PAPER_DAYS,
    PAPER_POPULATIONS,
    SocialWelfareResult,
    run_social_welfare_study,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache


@dataclass
class Fig6Row:
    """One x-axis point of Figure 6."""

    n_households: int
    enki_ms: float
    optimal_ms: float
    proven_optimal_fraction: float

    @property
    def slowdown(self) -> float:
        """How many times longer Optimal takes than Enki."""
        if self.enki_ms <= 0:
            return float("inf")
        return self.optimal_ms / self.enki_ms


@dataclass
class Fig6Result:
    rows: List[Fig6Row]

    def render(self) -> str:
        return format_table(
            ["n", "Enki (ms)", "Optimal (ms)", "slowdown", "proven-optimal"],
            [
                (
                    row.n_households,
                    f"{row.enki_ms:.2f}",
                    f"{row.optimal_ms:.2f}",
                    f"{row.slowdown:.0f}x",
                    f"{row.proven_optimal_fraction:.0%}",
                )
                for row in self.rows
            ],
        )


def extract(result: SocialWelfareResult) -> Fig6Result:
    """Project a social-welfare run onto Figure 6's series."""
    enki = {p.n_households: p for p in result.series(ENKI)}
    optimal = {p.n_households: p for p in result.series(OPTIMAL)}
    rows = [
        Fig6Row(
            n_households=n,
            enki_ms=enki[n].wall_time_s.mean * 1000.0,
            optimal_ms=optimal[n].wall_time_s.mean * 1000.0,
            proven_optimal_fraction=optimal[n].proven_optimal_fraction,
        )
        for n in sorted(set(enki) & set(optimal))
    ]
    return Fig6Result(rows=rows)


def run(
    populations: Sequence[int] = PAPER_POPULATIONS,
    days: int = PAPER_DAYS,
    seed: Optional[int] = 2017,
    optimal_time_limit_s: float = 60.0,
    workers: Optional[int] = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    columnar: bool = False,
    bnb_workers: Optional[int] = 1,
    batch_days: int = 1,
    alloc_cache: Optional["AllocationCache"] = None,
) -> Fig6Result:
    """Regenerate Figure 6 from scratch.

    ``workers`` fans the day instances across processes; scheduling times
    are still measured per-solve inside each worker, so Figure 6's series
    are comparable across worker counts.  ``columnar`` switches each day
    to the structure-of-arrays fast path (the exact solver then bridges
    through its object kernel; timings remain per-solve).
    """
    return extract(
        run_social_welfare_study(
            populations,
            days,
            seed,
            optimal_time_limit_s,
            workers=workers,
            checkpoint_path=checkpoint_path,
            resume=resume,
            columnar=columnar,
            bnb_workers=bnb_workers,
            batch_days=batch_days,
            alloc_cache=alloc_cache,
        )
    )
