"""Figure 7: utility of the first household over all reportable windows.

Section VI-B setup: a neighborhood of N = 50.  The first household's
narrow interval is (18, 20) and its wide interval is (16, 24); its *true*
preference is the narrow interval and its valuation factor is 5.  Every
other household's true preference is its narrow interval; their profiles
are generated once and kept fixed.  With everyone else truthful, the first
household's mean utility is evaluated for every window it could report
inside its wide interval (10 repeats per candidate).

Paper reading: the best response is the truthful report (18, 20) — the
weak incentive-compatibility picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..core.intervals import Interval
from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdType, Neighborhood, Preference
from ..sim.profiles import ProfileGenerator
from ..sim.results import format_table
from ..theory.bestresponse import BestResponseResult, best_response_sweep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache

#: The probed household's id.
TARGET = "hh00"

#: Its Section VI-B type.
TARGET_NARROW = (18, 20)
TARGET_WIDE = (16, 24)
TARGET_DURATION = 2
TARGET_RHO = 5.0


def build_neighborhood(
    n_households: int = 50, seed: Optional[int] = 2017
) -> Neighborhood:
    """The fixed Figure 7 neighborhood (others' narrow windows as truths)."""
    if n_households < 2:
        raise ValueError(f"need at least 2 households, got {n_households}")
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    profiles = generator.sample_population(np_rng, n_households)

    households: List[HouseholdType] = [
        HouseholdType(
            TARGET,
            Preference(Interval(*TARGET_NARROW), TARGET_DURATION),
            valuation_factor=TARGET_RHO,
        )
    ]
    for profile in profiles[1:]:
        households.append(profile.as_household("narrow"))
    return Neighborhood.of(*households)


@dataclass
class Fig7Result:
    sweep: BestResponseResult

    @property
    def truthful_is_best(self) -> bool:
        return self.sweep.truthful_is_best(tolerance=1e-9)

    def render(self) -> str:
        rows = [
            (begin, end, f"{utility:.2f}",
             "<- truthful" if (begin, end) == self.sweep.truthful_window else "")
            for (begin, end), utility in sorted(self.sweep.utilities.items())
        ]
        table = format_table(["begin", "end", "mean utility", ""], rows)
        footer = (
            f"\nbest response: {self.sweep.best_window} "
            f"(utility {self.sweep.best_utility:.2f}); "
            f"truthful {self.sweep.truthful_window} "
            f"(utility {self.sweep.truthful_utility:.2f}); "
            f"regret {self.sweep.regret():.3f}"
        )
        return table + footer


def run(
    n_households: int = 50,
    repeats: int = 10,
    seed: Optional[int] = 2017,
    alloc_cache: Optional["AllocationCache"] = None,
) -> Fig7Result:
    """Regenerate Figure 7 from scratch.

    ``alloc_cache`` routes every candidate day's allocation through a
    digest-keyed :class:`~repro.allocation.cache.AllocationCache`, so a
    rerun of the sweep (same neighborhood, same seed) replays stored
    allocations byte-identically instead of re-solving.
    """
    neighborhood = build_neighborhood(n_households, seed)
    sweep = best_response_sweep(
        neighborhood,
        TARGET,
        mechanism=EnkiMechanism(alloc_cache=alloc_cache),
        exploration=Interval(*TARGET_WIDE),
        repeats=repeats,
        seed=seed,
    )
    return Fig7Result(sweep=sweep)
