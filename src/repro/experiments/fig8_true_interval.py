"""Figure 8: true-interval selecting ratio, Initial vs Cooperate.

The paper removes the four subjects who reported not understanding the
game and tests (Mann-Whitney, p = 0.0143) whether the remaining 16 select
their exact true interval more often in Cooperate than in Initial.  The
average selecting ratio rises from 23.75% (Initial, all 20 subjects) to
37.5% (Cooperate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.results import format_table
from ..userstudy.analysis import (
    TrueIntervalAnalysis,
    true_interval_analysis,
    true_interval_selecting_ratio,
)
from ..userstudy.treatments import StudyResult
from .user_study_run import DEFAULT_STUDY_SEED, run_default_study

#: The paper's reported numbers.
PAPER_P_VALUE = 0.0143
PAPER_MEAN_INITIAL_ALL20 = 0.2375
PAPER_MEAN_COOPERATE_ALL20 = 0.375


@dataclass
class Fig8Result:
    analysis: TrueIntervalAnalysis
    mean_initial_all: float
    mean_cooperate_all: float

    @property
    def ratio_increased(self) -> bool:
        """The headline effect: selecting ratios rise into Cooperate."""
        return self.analysis.mean_cooperate > self.analysis.mean_initial

    def render(self) -> str:
        rows = [
            (subject, f"{initial:.2f}", f"{cooperate:.2f}")
            for subject, initial, cooperate in zip(
                self.analysis.subjects,
                self.analysis.initial_ratios,
                self.analysis.cooperate_ratios,
            )
        ]
        table = format_table(["subject", "Initial", "Cooperate"], rows)
        footer = (
            f"\nall-20 means: Initial {self.mean_initial_all:.4f} "
            f"(paper {PAPER_MEAN_INITIAL_ALL20}), "
            f"Cooperate {self.mean_cooperate_all:.4f} "
            f"(paper {PAPER_MEAN_COOPERATE_ALL20})"
            f"\nMann-Whitney (excl. non-understanding): "
            f"p = {self.analysis.test.p_value:.4f} (paper {PAPER_P_VALUE})"
        )
        return table + footer


def extract(study: StudyResult) -> Fig8Result:
    """Project a study run onto Figure 8."""
    return Fig8Result(
        analysis=true_interval_analysis(study),
        mean_initial_all=sum(
            true_interval_selecting_ratio(s, "Initial") for s in study.subjects
        )
        / len(study.subjects),
        mean_cooperate_all=sum(
            true_interval_selecting_ratio(s, "Cooperate") for s in study.subjects
        )
        / len(study.subjects),
    )


def run(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> Fig8Result:
    """Regenerate Figure 8 from scratch."""
    return extract(run_default_study(seed, workers=workers))
