"""Figure 9: flexibility ratio over the 16 rounds.

The paper plots the flexibility ratio (submitted-within-true over true
length) for two subjects who understood the game well (P7, P8) — frequent
early defection, then locked to the exact true interval — plus the rising
average of four intermediate-understanding subjects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.results import format_table
from ..userstudy.analysis import average_flexibility_series, flexibility_series
from ..userstudy.treatments import StudyResult
from .user_study_run import DEFAULT_STUDY_SEED, run_default_study


@dataclass
class Fig9Result:
    good_series: Dict[int, List[float]]
    intermediate_average: List[float]

    @property
    def good_lock_in(self) -> bool:
        """P7/P8 pattern: well-understanding subjects end fully truthful."""
        return all(
            all(value >= 0.999 for value in series[-4:])
            for series in self.good_series.values()
        )

    @property
    def intermediate_trend(self) -> float:
        """Cooperate-half mean minus Initial-half mean (paper: positive)."""
        half = len(self.intermediate_average) // 2
        first = sum(self.intermediate_average[:half]) / half
        second = sum(self.intermediate_average[half:]) / (
            len(self.intermediate_average) - half
        )
        return second - first

    def render(self) -> str:
        rounds = range(1, len(self.intermediate_average) + 1)
        headers = ["round"] + [f"P{sid}" for sid in self.good_series] + [
            "avg intermediate"
        ]
        rows = []
        for index, round_number in enumerate(rounds):
            rows.append(
                (
                    round_number,
                    *(f"{series[index]:.2f}" for series in self.good_series.values()),
                    f"{self.intermediate_average[index]:.2f}",
                )
            )
        return format_table(headers, rows) + (
            f"\nintermediate trend (late - early): {self.intermediate_trend:+.3f}"
        )


def extract(study: StudyResult, n_intermediate: int = 4) -> Fig9Result:
    """Project a study run onto Figure 9."""
    good = study.understanding_group("good")
    intermediate = study.understanding_group("intermediate")[:n_intermediate]
    if not good or not intermediate:
        raise ValueError("study lacks the understanding groups Figure 9 plots")
    return Fig9Result(
        good_series={
            record.study_subject_id: flexibility_series(record) for record in good
        },
        intermediate_average=average_flexibility_series(intermediate),
    )


def run(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> Fig9Result:
    """Regenerate Figure 9 from scratch."""
    return extract(run_default_study(seed, workers=workers))
