"""Run every reproduction experiment and print the paper's rows/series.

Exposes a registry mapping experiment ids (fig4 ... tab4, ablations) to
callables, used by both the CLI and the end-to-end integration tests.
Each experiment accepts keyword overrides so tests can run scaled-down
versions; defaults regenerate the paper-scale artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from . import (
    abl_scale,
    ablation_decentralized,
    ablation_ordering,
    ablation_pricing,
    ablation_xi,
    baseline_landscape,
    examples_section4,
    ext_calculator,
    ext_coalitions,
    ext_conservation,
    ext_forecast_market,
    fig4_par,
    fig5_cost,
    fig6_time,
    fig7_incentive,
    fig8_true_interval,
    fig9_flexibility,
    table2_defection,
    table3_mannwhitney,
    table4_treatments,
    vcg_contrast,
    verify_properties,
)

#: Every experiment id, in the order the paper presents them.
EXPERIMENTS: Dict[str, Callable] = {
    "examples": examples_section4.run,
    "fig4": fig4_par.run,
    "fig5": fig5_cost.run,
    "fig6": fig6_time.run,
    "fig7": fig7_incentive.run,
    "tab2": table2_defection.run,
    "tab3": table3_mannwhitney.run,
    "tab4": table4_treatments.run,
    "fig8": fig8_true_interval.run,
    "fig9": fig9_flexibility.run,
    "abl-order": ablation_ordering.run,
    "abl-xi": ablation_xi.run,
    "abl-pricing": ablation_pricing.run,
    "abl-decentralized": ablation_decentralized.run,
    "ext-coalitions": ext_coalitions.run,
    "ext-forecast-market": ext_forecast_market.run,
    "ext-conservation": ext_conservation.run,
    "ext-calculator": ext_calculator.run,
    "abl-scale": abl_scale.run,
    "baselines": baseline_landscape.run,
    "vcg": vcg_contrast.run,
    "verify": verify_properties.run,
}


@dataclass
class ExperimentReport:
    """One experiment's id and rendered output."""

    experiment_id: str
    rendered: str


def run_experiment(experiment_id: str, **overrides) -> ExperimentReport:
    """Run one experiment by id and render its table."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; pick from {sorted(EXPERIMENTS)}"
        )
    result = EXPERIMENTS[experiment_id](**overrides)
    return ExperimentReport(experiment_id=experiment_id, rendered=result.render())


def run_all(
    experiment_ids: Optional[List[str]] = None, **overrides
) -> List[ExperimentReport]:
    """Run several experiments (all by default) and collect their reports."""
    ids = experiment_ids if experiment_ids is not None else list(EXPERIMENTS)
    return [run_experiment(experiment_id, **overrides) for experiment_id in ids]
