"""Shared driver for the Section VI-A social-welfare study (Figures 4-6).

One run powers all three figures: for population sizes 10..50, simulate 10
independent days; each day both allocators (Enki's greedy and the exact
Optimal) schedule the same truthful wide-interval reports; record PAR,
neighborhood cost and scheduling time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..allocation.greedy import GreedyFlexibilityAllocator
from ..allocation.optimal import BranchAndBoundAllocator
from ..robustness.checkpoint import CheckpointStore
from ..sim.engine import AllocatorDayRecord, SocialWelfareStudy
from ..sim.metrics import SeriesPoint, summarize_records

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache

#: The paper's x-axis.
PAPER_POPULATIONS: Tuple[int, ...] = (10, 20, 30, 40, 50)

#: Days simulated per population size (the paper's 10 rounds).
PAPER_DAYS = 10

#: Display names matching the paper's legends.
ENKI = "enki-greedy"
OPTIMAL = "optimal-bnb"


@dataclass
class SocialWelfareResult:
    """Raw day records plus the aggregated series for Figures 4-6."""

    records: List[AllocatorDayRecord]
    points: List[SeriesPoint]
    populations: Sequence[int]
    days: int

    def series(self, allocator: str) -> List[SeriesPoint]:
        """The aggregated points of one allocator, ordered by population."""
        return [p for p in self.points if p.allocator == allocator]


def run_social_welfare_study(
    populations: Sequence[int] = PAPER_POPULATIONS,
    days: int = PAPER_DAYS,
    seed: Optional[int] = 2017,
    optimal_time_limit_s: float = 60.0,
    workers: Optional[int] = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    columnar: bool = False,
    bnb_workers: Optional[int] = 1,
    batch_days: int = 1,
    alloc_cache: Optional["AllocationCache"] = None,
) -> SocialWelfareResult:
    """Run the Figures 4-6 study once.

    Args:
        populations: Neighborhood sizes to sweep.
        days: Independent simulated days per size.
        seed: Master seed (profiles regenerate every day, per the paper).
        optimal_time_limit_s: Anytime budget for the exact solver; the
            returned points carry the fraction of days it proved
            optimality within the budget.
        workers: Worker processes for the day fan-out (``1`` = serial,
            ``0`` = all cores); results are bit-identical across counts.
        checkpoint_path: When set, persist each simulated day to this
            JSONL store as it completes.
        resume: With ``checkpoint_path``, replay the days the store
            already holds instead of recomputing them (a killed sweep
            picks up where it stopped, with identical final results);
            without it, any existing store is discarded first.
        columnar: Run each day on the structure-of-arrays fast path (its
            own sampling substream; required for very large populations —
            see ``docs/performance.md``).
        bnb_workers: Worker processes for the exact solver's subtree
            fan-out (``1`` = serial, ``0`` = all cores). Completed runs
            stay bit-identical to serial; anytime runs may prove *more*
            days within the same wall budget.
        batch_days: Columnar-only: fuse up to this many consecutive days
            per worker task into batched array passes (bit-identical to
            the per-day path).
        alloc_cache: Columnar-only: a digest-keyed
            :class:`~repro.allocation.cache.AllocationCache`; repeated
            identical day instances replay stored allocations
            byte-identically instead of re-solving.
    """
    checkpoint = (
        CheckpointStore(checkpoint_path, fresh=not resume)
        if checkpoint_path is not None
        else None
    )
    study = SocialWelfareStudy(
        allocators=[
            GreedyFlexibilityAllocator(),
            BranchAndBoundAllocator(
                time_limit_s=optimal_time_limit_s, workers=bnb_workers
            ),
        ],
        columnar=columnar,
    )
    records = study.sweep(
        populations,
        days,
        seed,
        workers=workers,
        checkpoint=checkpoint,
        batch_days=batch_days,
        alloc_cache=alloc_cache,
    )
    return SocialWelfareResult(
        records=records,
        points=summarize_records(records),
        populations=list(populations),
        days=days,
    )
