"""Table II: average defection rate of 20 subjects per stage.

Paper values: Overall 0.2049, Initial 0.3625, Defect 0.2938, Cooperate
0.125 — defection is low overall, highest while learning (Initial), and
lowest once all artificial agents cooperate (Cooperate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.results import format_table
from ..userstudy.analysis import STAGE_ORDER, average_defection_rates
from ..userstudy.treatments import StudyResult
from .user_study_run import DEFAULT_STUDY_SEED, run_default_study

#: The paper's Table II, for side-by-side comparison.
PAPER_TABLE2 = {
    "Overall": 0.2049,
    "Initial": 0.3625,
    "Defect": 0.2938,
    "Cooperate": 0.125,
}


@dataclass
class Table2Result:
    rates: Dict[str, float]

    @property
    def ordering_holds(self) -> bool:
        """The paper's qualitative shape: Initial > Defect > Cooperate."""
        return (
            self.rates["Initial"] >= self.rates["Defect"] >= self.rates["Cooperate"]
        )

    def render(self) -> str:
        return format_table(
            ["stage", "measured", "paper"],
            [
                (stage, f"{self.rates[stage]:.4f}", f"{PAPER_TABLE2[stage]:.4f}")
                for stage in STAGE_ORDER
            ],
        )


def extract(study: StudyResult) -> Table2Result:
    """Project a study run onto Table II."""
    return Table2Result(rates=average_defection_rates(study))


def run(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> Table2Result:
    """Regenerate Table II from scratch."""
    return extract(run_default_study(seed, workers=workers))
