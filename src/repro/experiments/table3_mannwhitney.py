"""Table III: Mann-Whitney U test that Enki prevents defection.

Per stage, Sample 1 is each subject's defection count and Sample 2 assumes
random (coin-flip) defection — every element is half the stage's rounds.
Paper p-values: Overall < 0.0001, Initial 0.0532 (not significant), Defect
0.0078, Cooperate < 0.0001.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.results import format_table
from ..stats.mannwhitney import MannWhitneyResult
from ..userstudy.analysis import STAGE_ORDER, defection_mann_whitney, stage_rounds
from ..userstudy.treatments import StudyResult
from .user_study_run import DEFAULT_STUDY_SEED, run_default_study

#: The paper's Table III p-values (upper bounds where it reports "<").
PAPER_TABLE3 = {
    "Overall": 0.0001,
    "Initial": 0.0532,
    "Defect": 0.0078,
    "Cooperate": 0.0001,
}

#: Stages the paper found significant at the 5% level.
PAPER_SIGNIFICANT = {"Overall": True, "Initial": False, "Defect": True, "Cooperate": True}


@dataclass
class Table3Result:
    tests: Dict[str, MannWhitneyResult]

    def significant(self, stage: str, alpha: float = 0.05) -> bool:
        return self.tests[stage].p_value < alpha

    def render(self) -> str:
        return format_table(
            ["stage", "sample2 element", "U", "p-value", "paper p", "significant"],
            [
                (
                    stage,
                    f"{stage_rounds(stage) / 2:.0f}",
                    f"{self.tests[stage].u_statistic:.1f}",
                    f"{self.tests[stage].p_value:.4g}",
                    f"{PAPER_TABLE3[stage]:.4g}",
                    "yes" if self.significant(stage) else "no",
                )
                for stage in STAGE_ORDER
            ],
        )


def extract(study: StudyResult) -> Table3Result:
    """Project a study run onto Table III."""
    return Table3Result(tests=defection_mann_whitney(study))


def run(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> Table3Result:
    """Regenerate Table III from scratch."""
    return extract(run_default_study(seed, workers=workers))
