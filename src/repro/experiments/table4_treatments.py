"""Table IV: average defection rate per treatment per stage.

Paper values: T1 — Overall 0.23, Initial 0.34, Defect 0.31, Cooperate
0.15; T2 — Overall 0.14, Initial 0.44, Defect 0.25, Cooperate 0.03.
Reading: solo subjects (T2, facing only cooperating agents during
Cooperate) defect markedly less by the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.results import format_table
from ..userstudy.analysis import STAGE_ORDER, treatment_defection_rates
from ..userstudy.treatments import StudyResult
from .user_study_run import DEFAULT_STUDY_SEED, run_default_study

#: The paper's Table IV.
PAPER_TABLE4 = {
    1: {"Overall": 0.23, "Initial": 0.34, "Defect": 0.31, "Cooperate": 0.15},
    2: {"Overall": 0.14, "Initial": 0.44, "Defect": 0.25, "Cooperate": 0.03},
}


@dataclass
class Table4Result:
    rates: Dict[int, Dict[str, float]]

    @property
    def cooperate_gap(self) -> float:
        """T1 minus T2 Cooperate-stage defection (paper: positive)."""
        return self.rates[1]["Cooperate"] - self.rates[2]["Cooperate"]

    def render(self) -> str:
        rows = []
        for treatment in (1, 2):
            rows.append(
                (
                    f"T{treatment}",
                    *(f"{self.rates[treatment][stage]:.2f}" for stage in STAGE_ORDER),
                    *(f"{PAPER_TABLE4[treatment][stage]:.2f}" for stage in STAGE_ORDER),
                )
            )
        return format_table(
            ["treatment"]
            + [f"{stage}" for stage in STAGE_ORDER]
            + [f"paper {stage}" for stage in STAGE_ORDER],
            rows,
        )


def extract(study: StudyResult) -> Table4Result:
    """Project a study run onto Table IV."""
    return Table4Result(rates=treatment_defection_rates(study))


def run(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> Table4Result:
    """Regenerate Table IV from scratch."""
    return extract(run_default_study(seed, workers=workers))
