"""Shared driver for the Section VII user-study reproductions.

Tables II-IV and Figures 8-9 all analyze one study run (20 simulated
subjects, two treatments, four sessions each); this module runs it once
and caches nothing — each experiment entry point may pass its own seed.
"""

from __future__ import annotations

from typing import Optional

from ..userstudy.treatments import StudyResult, run_study

#: Default master seed for study reproductions.
DEFAULT_STUDY_SEED = 1720


def run_default_study(
    seed: Optional[int] = DEFAULT_STUDY_SEED,
    workers: Optional[int] = 1,
) -> StudyResult:
    """One full study with the paper's subject mix and session design.

    ``workers`` fans the eight independent sessions across processes;
    results are identical for any worker count (sessions are seeded
    before any of them plays).
    """
    return run_study(seed=seed, workers=workers)
