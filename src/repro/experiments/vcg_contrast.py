"""Enki vs VCG: the Section II / IV-B2 contrast, made measurable.

Two claims motivate Enki over VCG:

1. **Budget**: VCG offers no budget-balance guarantee, Enki's surplus is
   exactly ``(xi - 1) * kappa >= 0`` (Theorem 1).
2. **Tractability**: VCG prices a day with n+1 exact optimizations; Enki
   needs one greedy pass.

This experiment runs both mechanisms on identical truthful workloads and
reports each one's budget surplus and wall time per day.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..mechanisms.enki import EnkiComparisonMechanism
from ..mechanisms.vcg import VcgMechanism
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table


@dataclass
class VcgContrastRow:
    """One day's head-to-head numbers."""

    day: int
    n_households: int
    enki_surplus: float
    vcg_surplus: float
    enki_seconds: float
    vcg_seconds: float


@dataclass
class VcgContrastResult:
    rows: List[VcgContrastRow]

    @property
    def enki_always_balanced(self) -> bool:
        return all(row.enki_surplus >= -1e-9 for row in self.rows)

    @property
    def vcg_ever_deficit(self) -> bool:
        return any(row.vcg_surplus < -1e-9 for row in self.rows)

    @property
    def mean_slowdown(self) -> float:
        """VCG wall time over Enki wall time, averaged across days."""
        ratios = [
            row.vcg_seconds / row.enki_seconds
            for row in self.rows
            if row.enki_seconds > 0
        ]
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        table = format_table(
            ["day", "n", "Enki surplus", "VCG surplus", "Enki (s)", "VCG (s)"],
            [
                (
                    row.day,
                    row.n_households,
                    f"{row.enki_surplus:+.2f}",
                    f"{row.vcg_surplus:+.2f}",
                    f"{row.enki_seconds:.4f}",
                    f"{row.vcg_seconds:.3f}",
                )
                for row in self.rows
            ],
        )
        return table + (
            f"\nEnki always balanced: {self.enki_always_balanced}; "
            f"VCG ran a deficit: {self.vcg_ever_deficit}; "
            f"mean VCG/Enki time: {self.mean_slowdown:.0f}x"
        )


def run(
    n_households: int = 12,
    days: int = 5,
    seed: Optional[int] = 2017,
    vcg_solver_time_limit_s: float = 10.0,
) -> VcgContrastResult:
    """Run the head-to-head comparison (kept small: VCG is the slow part)."""
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    enki = EnkiComparisonMechanism()
    vcg = VcgMechanism(solver_time_limit_s=vcg_solver_time_limit_s)

    rows: List[VcgContrastRow] = []
    for day in range(days):
        profiles = generator.sample_population(np_rng, n_households)
        neighborhood = neighborhood_from_profiles(profiles, "wide")

        started = time.perf_counter()
        enki_result = enki.run_day(neighborhood, rng=random.Random(day))
        enki_seconds = time.perf_counter() - started

        started = time.perf_counter()
        vcg_result = vcg.run_day(neighborhood, rng=random.Random(day))
        vcg_seconds = time.perf_counter() - started

        rows.append(
            VcgContrastRow(
                day=day,
                n_households=n_households,
                enki_surplus=enki_result.budget_surplus,
                vcg_surplus=vcg_result.budget_surplus,
                enki_seconds=enki_seconds,
                vcg_seconds=vcg_seconds,
            )
        )
    return VcgContrastResult(rows=rows)
