"""One-shot compliance report: every Section V claim, checked empirically.

``enki-repro verify`` runs the executable counterparts of Theorems 1-6 and
Properties 1-3 on fresh random worlds and prints a pass/fail table — the
reproduction's self-test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdType, Neighborhood, Preference
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from ..sim.results import format_table
from ..theory.bayes_nash import estimate_bayes_nash_regret
from ..theory.payment_properties import check_all_properties
from ..theory.properties import (
    budget_balance_margin,
    find_negative_utility_day,
    pareto_efficiency_ratio,
    participation_gain,
)


@dataclass
class VerificationRow:
    """One claim's verdict."""

    claim: str
    expected: str
    observed: str
    passed: bool


@dataclass
class VerificationResult:
    rows: List[VerificationRow]

    @property
    def all_passed(self) -> bool:
        return all(row.passed for row in self.rows)

    def render(self) -> str:
        table = format_table(
            ["claim", "expected", "observed", "verdict"],
            [
                (row.claim, row.expected, row.observed,
                 "PASS" if row.passed else "FAIL")
                for row in self.rows
            ],
        )
        footer = "\nall claims verified" if self.all_passed else "\nSOME CLAIMS FAILED"
        return table + footer


def run(
    n_households: int = 20,
    seed: Optional[int] = 2017,
) -> VerificationResult:
    """Verify every theorem and property on fresh random worlds."""
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    generator = ProfileGenerator()
    mechanism = EnkiMechanism()
    rows: List[VerificationRow] = []

    # Theorem 1: ex ante budget balance.
    profiles = generator.sample_population(np_rng, n_households)
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    outcome = mechanism.run_day(neighborhood, rng=random.Random(rng.randrange(2**63)))
    margin = budget_balance_margin(outcome)
    expected_margin = 0.2 * outcome.settlement.total_cost
    rows.append(
        VerificationRow(
            claim="Thm 1: ex ante budget balance",
            expected="surplus = (xi-1)*kappa >= 0",
            observed=f"surplus {margin:.2f} = {expected_margin:.2f}",
            passed=margin >= 0 and abs(margin - expected_margin) < 1e-6,
        )
    )

    # Theorem 2: weak Bayesian IC (distributional probe).
    target = HouseholdType("probe", Preference.of(18, 20, 2), 5.0)
    estimate = estimate_bayes_nash_regret(
        target,
        n_opponents=max(4, n_households // 2),
        worlds=4,
        repeats_per_world=2,
        seed=rng.randrange(2**63),
    )
    ic_holds = estimate.truthful_maximizes_expectation(
        tolerance=0.05 * abs(estimate.mean_utilities[estimate.target_window]) + 1e-9
    )
    rows.append(
        VerificationRow(
            claim="Thm 2: weak Bayesian IC",
            expected="truth maximizes expected utility",
            observed=(
                f"expected-best {estimate.expected_best_window}, "
                f"mean regret {estimate.mean_regret:.3f}"
            ),
            passed=ic_holds,
        )
    )

    # Theorem 3: weak Pareto efficiency.
    ratio = pareto_efficiency_ratio(
        neighborhood, mechanism, rng=random.Random(rng.randrange(2**63))
    )
    rows.append(
        VerificationRow(
            claim="Thm 3: weak Pareto efficiency",
            expected="valuation ratio = 1 under truthful equilibrium",
            observed=f"ratio {ratio:.4f}",
            passed=abs(ratio - 1.0) < 1e-9,
        )
    )

    # Theorem 4: NOT individually rational.
    found = find_negative_utility_day(
        n_households=n_households, max_days=30, seed=rng.randrange(2**31)
    )
    rows.append(
        VerificationRow(
            claim="Thm 4: not individually rational",
            expected="some household has U < 0",
            observed=(
                f"found household {found[1]!r} underwater"
                if found is not None
                else "no victim found in 30 days"
            ),
            passed=found is not None,
        )
    )

    # Theorems 5-6: participation incentives (peaky world).
    peaky = Neighborhood.of(
        *(
            HouseholdType(f"p{i}", Preference.of(17, 23, 2), 5.0)
            for i in range(max(6, n_households // 2))
        )
    )
    gain = participation_gain(peaky, days=4, seed=rng.randrange(2**63))
    rows.append(
        VerificationRow(
            claim="Thm 5: mean utility gain vs price taking",
            expected=">= 0",
            observed=f"{gain.mean_gain:+.3f}",
            passed=gain.mean_gain >= -1e-9,
        )
    )
    rows.append(
        VerificationRow(
            claim="Thm 6: flexible household's gain",
            expected=">= 0",
            observed=f"{gain.flexible_gain:+.3f}",
            passed=gain.flexible_gain >= -1e-9,
        )
    )

    # Properties 1-3 of the payment mechanism.
    for check in check_all_properties(mechanism, seed=rng.randrange(2**63)):
        rows.append(
            VerificationRow(
                claim=f"Property {check.property_id}: {check.description}",
                expected="favored pays <= disfavored",
                observed=(
                    f"{check.favored_payment:.3f} vs {check.disfavored_payment:.3f}"
                ),
                passed=check.holds,
            )
        )

    return VerificationResult(rows=rows)
