"""Extensions the paper sketches but does not evaluate.

* :mod:`repro.extensions.appliances` — multi-appliance households with a
  flat nonshiftable base charge (Section III's "easily extended" note).
* :mod:`repro.extensions.coalitions` — small household coalitions that
  pre-flatten their joint demand before reporting (the conclusion's
  future-work direction).
"""

from .appliances import (
    ApplianceRequest,
    HouseholdBill,
    MultiApplianceEnki,
    MultiApplianceHousehold,
    MultiApplianceOutcome,
    expand,
    owner_of,
    pseudo_household_id,
)
from .coalitions import Coalition, CoalitionEnki, greedy_coalitions
from .conservation import (
    ConservationDay,
    ConservationEnki,
    conservation_summary,
)

__all__ = [
    "ApplianceRequest",
    "MultiApplianceHousehold",
    "MultiApplianceEnki",
    "MultiApplianceOutcome",
    "HouseholdBill",
    "expand",
    "owner_of",
    "pseudo_household_id",
    "Coalition",
    "CoalitionEnki",
    "greedy_coalitions",
    "ConservationDay",
    "ConservationEnki",
    "conservation_summary",
]
