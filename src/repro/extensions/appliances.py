"""Multi-appliance households (the Section III extension).

The paper simplifies each household to a single shiftable load but notes
the model "can be easily extended to a more concrete scenario by
considering several such preferences for a given household and adding a
constant cost to each household's payment."  This module implements that
extension: a household declares one preference per shiftable appliance
(plus an optional nonshiftable base load billed at a flat charge); each
appliance becomes a pseudo-household for allocation and scoring, and the
settlement is re-aggregated per real household.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import (
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Preference,
)

#: Separator between household and appliance in pseudo-household ids.
ID_SEPARATOR = "::"


@dataclass(frozen=True)
class ApplianceRequest:
    """One shiftable appliance's demand for the next day."""

    name: str
    preference: Preference
    rating_kw: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("appliance name cannot be empty")
        if ID_SEPARATOR in self.name:
            raise ValueError(f"appliance name may not contain {ID_SEPARATOR!r}")
        if self.rating_kw <= 0:
            raise ValueError(f"rating must be positive, got {self.rating_kw}")


@dataclass(frozen=True)
class MultiApplianceHousehold:
    """A household with several shiftable appliances and a base charge.

    Attributes:
        household_id: The real household's id.
        appliances: One request per shiftable appliance.
        valuation_factor: Shared willingness-to-pay factor ``rho``.
        base_charge: Flat fee covering nonshiftable loads (the paper's
            "constant cost" added to the payment).
    """

    household_id: HouseholdId
    appliances: Tuple[ApplianceRequest, ...]
    valuation_factor: float
    base_charge: float = 0.0

    def __post_init__(self) -> None:
        if not self.appliances:
            raise ValueError(f"{self.household_id!r} needs at least one appliance")
        names = [appliance.name for appliance in self.appliances]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate appliance names for {self.household_id!r}")
        if ID_SEPARATOR in self.household_id:
            raise ValueError(f"household id may not contain {ID_SEPARATOR!r}")
        if self.base_charge < 0:
            raise ValueError(f"base charge cannot be negative, got {self.base_charge}")

    @staticmethod
    def of(
        household_id: HouseholdId,
        valuation_factor: float,
        *appliances: ApplianceRequest,
        base_charge: float = 0.0,
    ) -> "MultiApplianceHousehold":
        return MultiApplianceHousehold(
            household_id=household_id,
            appliances=tuple(appliances),
            valuation_factor=valuation_factor,
            base_charge=base_charge,
        )


def pseudo_household_id(household_id: HouseholdId, appliance: str) -> HouseholdId:
    """The allocation-level id of one appliance."""
    return f"{household_id}{ID_SEPARATOR}{appliance}"


def owner_of(pseudo_id: HouseholdId) -> HouseholdId:
    """The real household behind a pseudo-household id."""
    owner, separator, _ = pseudo_id.partition(ID_SEPARATOR)
    if not separator:
        raise ValueError(f"{pseudo_id!r} is not a pseudo-household id")
    return owner


def expand(households: Sequence[MultiApplianceHousehold]) -> Neighborhood:
    """One pseudo-household per appliance, sharing the owner's rho."""
    ids = [hh.household_id for hh in households]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate household ids: {ids}")
    pseudo: List[HouseholdType] = []
    for household in households:
        for appliance in household.appliances:
            pseudo.append(
                HouseholdType(
                    household_id=pseudo_household_id(
                        household.household_id, appliance.name
                    ),
                    true_preference=appliance.preference,
                    valuation_factor=household.valuation_factor,
                    rating_kw=appliance.rating_kw,
                )
            )
    return Neighborhood.of(*pseudo)


@dataclass
class HouseholdBill:
    """A real household's aggregated settlement."""

    payment: float
    valuation: float
    utility: float
    per_appliance_payment: Dict[str, float] = field(default_factory=dict)


@dataclass
class MultiApplianceOutcome:
    """A settled multi-appliance day."""

    day: DayOutcome
    bills: Dict[HouseholdId, HouseholdBill]

    @property
    def total_cost(self) -> float:
        return self.day.settlement.total_cost


class MultiApplianceEnki:
    """Enki over appliance-level preferences with per-household billing."""

    def __init__(self, mechanism: Optional[EnkiMechanism] = None) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()

    def run_day(
        self,
        households: Sequence[MultiApplianceHousehold],
        rng: Optional[random.Random] = None,
    ) -> MultiApplianceOutcome:
        """Allocate every appliance, settle, and aggregate per household."""
        neighborhood = expand(households)
        outcome = self.mechanism.run_day(neighborhood, rng=rng)
        settlement = outcome.settlement

        bills: Dict[HouseholdId, HouseholdBill] = {}
        base_charges = {hh.household_id: hh.base_charge for hh in households}
        for household in households:
            bills[household.household_id] = HouseholdBill(
                payment=base_charges[household.household_id],
                valuation=0.0,
                utility=-base_charges[household.household_id],
            )
        for pseudo_id, payment in settlement.payments.items():
            owner = owner_of(pseudo_id)
            _, _, appliance = pseudo_id.partition(ID_SEPARATOR)
            bill = bills[owner]
            bill.payment += payment
            bill.valuation += settlement.valuations[pseudo_id]
            bill.utility += settlement.utilities[pseudo_id]
            bill.per_appliance_payment[appliance] = payment
        return MultiApplianceOutcome(day=outcome, bills=bills)
