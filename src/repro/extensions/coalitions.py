"""Household coalitions (the conclusion's future-work direction).

The paper closes with: "we will ... consider direct cooperation among
households forming small coalitions to reduce their joint peak demand
further."  This module implements a concrete version:

1. households with overlapping true windows are grouped greedily into
   coalitions of bounded size;
2. each coalition pre-coordinates internally — a greedy pass schedules its
   members' blocks within their true windows so the *joint* coalition load
   is flat;
3. members then report their internally assigned block as a zero-slack
   window (a commitment), and Enki runs as usual.

The interesting question — answered empirically by
:func:`compare_with_plain_enki` and the coalition tests — is whether such
pre-coordination helps: it flattens the coalition's joint demand but
narrows the windows the center sees, lowering members' flexibility scores,
exactly the tension Enki's payment rule creates for strategic narrowing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import (
    HouseholdId,
    Neighborhood,
    Preference,
    Report,
)


@dataclass(frozen=True)
class Coalition:
    """A group of households that pre-coordinate their schedules."""

    members: Tuple[HouseholdId, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a coalition needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members: {self.members}")


def greedy_coalitions(
    neighborhood: Neighborhood, max_size: int = 3
) -> List[Coalition]:
    """Group households with overlapping true windows, size-capped.

    Households are scanned by window start; each joins the open coalition
    whose members' windows it overlaps most, else starts a new one.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    ordered = sorted(
        neighborhood, key=lambda hh: (hh.true_preference.begin, hh.household_id)
    )
    groups: List[List[HouseholdId]] = []
    windows: List[Interval] = []  # running hull per group
    for household in ordered:
        window = household.true_preference.window
        best_group, best_overlap = None, 0
        for index, hull in enumerate(windows):
            if len(groups[index]) >= max_size:
                continue
            overlap = hull.overlap(window)
            if overlap > best_overlap:
                best_group, best_overlap = index, overlap
        if best_group is None:
            groups.append([household.household_id])
            windows.append(window)
        else:
            groups[best_group].append(household.household_id)
            hull = windows[best_group]
            windows[best_group] = Interval(
                min(hull.start, window.start), max(hull.end, window.end)
            )
    return [Coalition(tuple(group)) for group in groups]


def _internal_schedule(
    neighborhood: Neighborhood, coalition: Coalition
) -> Dict[HouseholdId, Interval]:
    """Greedy flattening of the coalition's joint load (true windows)."""
    loads = np.zeros(HOURS_PER_DAY, dtype=float)
    schedule: Dict[HouseholdId, Interval] = {}
    # Most constrained member first, same principle as Enki's greedy.
    members = sorted(
        coalition.members,
        key=lambda hid: neighborhood[hid].true_preference.slack,
    )
    for hid in members:
        household = neighborhood[hid]
        window = household.true_preference.window
        duration = household.duration
        window_loads = loads[window.start:window.end]
        sums = np.convolve(window_loads, np.ones(duration), mode="valid")
        begin = window.start + int(np.argmin(sums))
        block = Interval(begin, begin + duration)
        schedule[hid] = block
        loads[block.start:block.end] += household.rating_kw
    return schedule


class CoalitionEnki:
    """Enki where coalition members report pre-coordinated zero-slack windows."""

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        max_size: int = 3,
    ) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.max_size = max_size

    def coalition_reports(
        self, neighborhood: Neighborhood, coalitions: Sequence[Coalition]
    ) -> Dict[HouseholdId, Report]:
        """Each member commits to its internally assigned block."""
        reports: Dict[HouseholdId, Report] = {}
        for coalition in coalitions:
            schedule = _internal_schedule(neighborhood, coalition)
            for hid, block in schedule.items():
                duration = neighborhood[hid].duration
                reports[hid] = Report(hid, Preference(block, duration))
        missing = set(neighborhood.ids()) - set(reports)
        if missing:
            raise ValueError(f"coalitions do not cover households: {sorted(missing)}")
        return reports

    def run_day(
        self,
        neighborhood: Neighborhood,
        coalitions: Optional[Sequence[Coalition]] = None,
        rng: Optional[random.Random] = None,
    ) -> DayOutcome:
        """One Enki day under coalition reporting."""
        if coalitions is None:
            coalitions = greedy_coalitions(neighborhood, self.max_size)
        reports = self.coalition_reports(neighborhood, coalitions)
        return self.mechanism.run_day(neighborhood, reports, rng=rng)


@dataclass
class CoalitionComparison:
    """Plain truthful Enki vs coalition-reporting Enki on the same day."""

    plain_cost: float
    coalition_cost: float
    plain_mean_flexibility: float
    coalition_mean_flexibility: float

    @property
    def cost_change(self) -> float:
        """Positive when coalitions *raised* the neighborhood cost."""
        return self.coalition_cost - self.plain_cost


def compare_with_plain_enki(
    neighborhood: Neighborhood,
    max_size: int = 3,
    seed: Optional[int] = None,
) -> CoalitionComparison:
    """Run both regimes on one day and compare cost and flexibility."""
    mechanism = EnkiMechanism()
    plain = mechanism.run_day(neighborhood, rng=random.Random(seed))
    coalition = CoalitionEnki(mechanism, max_size).run_day(
        neighborhood, rng=random.Random(seed)
    )

    def mean_flex(outcome: DayOutcome) -> float:
        scores = outcome.settlement.flexibility
        return sum(scores.values()) / len(scores)

    return CoalitionComparison(
        plain_cost=plain.settlement.total_cost,
        coalition_cost=coalition.settlement.total_cost,
        plain_mean_flexibility=mean_flex(plain),
        coalition_mean_flexibility=mean_flex(coalition),
    )
