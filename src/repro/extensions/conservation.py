"""Conservation: reducing aggregate demand, not just shifting it.

The paper's closing sentence: "we are interested in approaches that not
only reduce peak demand but reduce aggregate demand (i.e., save power not
just shift load)."  This extension models the participation margin that
makes conservation possible: each household's load is *optional* — it
runs only if the household's expected utility from running it is
positive.  Enki's peak-tracking payments then do double duty: they shift
the loads that run, and price out the loads whose owners value them less
than the congestion they cause.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import HouseholdId, Neighborhood


@dataclass
class ConservationDay:
    """One settled day with a participation decision per household."""

    participants: List[HouseholdId]
    abstainers: List[HouseholdId]
    outcome: Optional[DayOutcome]

    @property
    def served_energy_kwh(self) -> float:
        if self.outcome is None:
            return 0.0
        return self.outcome.settlement.load_profile.total_energy_kwh

    @property
    def abstention_rate(self) -> float:
        total = len(self.participants) + len(self.abstainers)
        if total == 0:
            return 0.0
        return len(self.abstainers) / total


class ConservationEnki:
    """Enki with an opt-out margin (see module docstring).

    The participation decision iterates to a fixed point: starting from
    everyone in, each pass simulates the day, drops households whose
    utility is negative by more than ``tolerance``, and repeats (fewer
    participants mean a lower peak and lower payments, so some marginal
    households return in later passes only if they were never dropped —
    the iteration is monotone and terminates).

    Args:
        mechanism: The underlying Enki instance.
        tolerance: Utility slack before a household opts out; 0 models
            fully rational participation.
        max_passes: Safety cap on fixed-point iterations.
    """

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        tolerance: float = 0.0,
        max_passes: int = 10,
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance cannot be negative, got {tolerance}")
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.tolerance = tolerance
        self.max_passes = max_passes

    def run_day(
        self,
        neighborhood: Neighborhood,
        rng: Optional[random.Random] = None,
    ) -> ConservationDay:
        """Settle a day after the participation fixed point."""
        rng = rng if rng is not None else random.Random()
        participants = list(neighborhood.ids())
        outcome: Optional[DayOutcome] = None

        for _ in range(self.max_passes):
            if not participants:
                outcome = None
                break
            sub_neighborhood = Neighborhood.of(
                *(neighborhood[hid] for hid in participants)
            )
            outcome = self.mechanism.run_day(
                sub_neighborhood, rng=random.Random(rng.randrange(2**63))
            )
            dropouts = [
                hid
                for hid in participants
                if outcome.settlement.utilities[hid] < -self.tolerance
            ]
            if not dropouts:
                break
            # Drop the single most underwater household and re-evaluate:
            # removing load lowers everyone's payments, so dropping all at
            # once over-conserves.
            worst = min(dropouts, key=lambda hid: outcome.settlement.utilities[hid])
            participants.remove(worst)

        abstainers = [hid for hid in neighborhood.ids() if hid not in participants]
        return ConservationDay(
            participants=participants, abstainers=abstainers, outcome=outcome
        )


def conservation_summary(
    neighborhood: Neighborhood,
    xis: Tuple[float, ...] = (1.0, 1.2, 1.5, 2.0),
    seed: Optional[int] = None,
) -> Dict[float, ConservationDay]:
    """Aggregate-demand response to the billing scale xi.

    Raising xi raises every bill proportionally, so more marginal
    households opt out — the knob a conservation-minded operator would
    turn.  Returns the settled day per xi.
    """
    results: Dict[float, ConservationDay] = {}
    for xi in xis:
        mechanism = EnkiMechanism(xi=xi)
        conserving = ConservationEnki(mechanism)
        results[xi] = conserving.run_day(neighborhood, rng=random.Random(seed))
    return results
