"""Structured audit trail for simulation runs (JSONL event log).

A deployed neighborhood center must be auditable: every report,
allocation and settlement is appended to a line-delimited JSON log that a
regulator (or a unit test) can replay and verify — for instance, that
Theorem 1's budget identity held on every settled day.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from ..core.mechanism import DayOutcome
from .serialize import SCHEMA_VERSION, day_outcome_to_dict


@dataclass(frozen=True)
class AuditEvent:
    """One logged event: a kind, a day index and a payload."""

    kind: str
    day: int
    payload: Dict[str, Any]


class AuditLog:
    """Append-only JSONL event log.

    Args:
        path: Log file; appended to if it exists.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, event: AuditEvent) -> None:
        """Append one event as a JSON line."""
        record = {
            "schema_version": SCHEMA_VERSION,
            "kind": event.kind,
            "day": event.day,
            "payload": event.payload,
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def log_day(self, day: int, outcome: DayOutcome) -> None:
        """Archive a full settled day as a ``day_settled`` event."""
        self.append(
            AuditEvent(kind="day_settled", day=day, payload=day_outcome_to_dict(outcome))
        )

    def events(self, kind: Optional[str] = None) -> Iterator[AuditEvent]:
        """Replay the log (optionally filtered by event kind)."""
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                if not line.strip():
                    continue
                record = json.loads(line)
                if kind is not None and record.get("kind") != kind:
                    continue
                yield AuditEvent(
                    kind=record["kind"],
                    day=int(record["day"]),
                    payload=record.get("payload", {}),
                )


@dataclass
class AuditSummary:
    """Aggregate view of a replayed audit log."""

    days: int
    total_cost: float
    total_revenue: float
    total_defections: int
    budget_balanced_every_day: bool


def summarize_audit(log: AuditLog) -> AuditSummary:
    """Replay ``day_settled`` events and verify the standing invariants."""
    days = 0
    total_cost = 0.0
    total_revenue = 0.0
    defections = 0
    balanced = True
    for event in log.events(kind="day_settled"):
        days += 1
        settlement = event.payload["settlement"]
        cost = float(settlement["total_cost"])
        revenue = sum(float(v) for v in settlement["payments"].values())
        total_cost += cost
        total_revenue += revenue
        if revenue < cost - 1e-6:
            balanced = False
        allocation = event.payload["allocation"]
        consumption = event.payload["consumption"]
        defections += sum(
            1 for hid in allocation if allocation[hid] != consumption[hid]
        )
    return AuditSummary(
        days=days,
        total_cost=total_cost,
        total_revenue=total_revenue,
        total_defections=defections,
        budget_balanced_every_day=balanced,
    )
