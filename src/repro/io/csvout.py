"""CSV export for experiment results.

Every experiment result renders an aligned text table for humans; this
module writes the same rows as CSV for spreadsheets and plotting scripts.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Sequence


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render headers + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Write headers + rows to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(rows_to_csv(headers, rows))


def table_text_to_csv(rendered: str) -> str:
    """Convert a ``format_table`` rendering back into CSV.

    The aligned tables use two-space column gaps and a dashed rule on the
    second line; this inverse is handy for exporting saved experiment
    outputs without re-running them.
    """
    lines = [line for line in rendered.splitlines() if line.strip()]
    if len(lines) < 2 or not set(lines[1].replace(" ", "")) <= {"-"}:
        raise ValueError("text does not look like a format_table rendering")
    # Column boundaries come from the dashed rule: dashes mark columns.
    rule = lines[1]
    spans = []
    start = None
    for index, char in enumerate(rule):
        if char == "-" and start is None:
            start = index
        elif char == " " and start is not None:
            spans.append((start, index))
            start = None
    if start is not None:
        spans.append((start, len(rule)))

    def cells(line: str) -> list:
        out = []
        for begin, end in spans:
            out.append(line[begin:end].strip() if begin < len(line) else "")
        # The final column may extend past the rule width.
        if spans and len(line) > spans[-1][1]:
            out[-1] = line[spans[-1][0]:].strip()
        return out

    headers = cells(lines[0])
    rows = [cells(line) for line in lines[2:]]
    return rows_to_csv(headers, rows)
