"""JSON serialization of the domain objects.

A production DSM deployment persists its neighborhoods, reports and
settled days; this module provides explicit, versioned dict round-trips
for the core types (no pickle — the formats are stable, diffable JSON).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from ..allocation.base import AllocationResult
from ..core.intervals import Interval
from ..core.mechanism import DayOutcome, Settlement
from ..core.types import (
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
)
from ..pricing.load_profile import LoadProfile
from ..robustness.fallback import TierRecord
from ..robustness.quarantine import QuarantineDecision

#: Format version embedded in every serialized document.
SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be decoded."""


def _require(document: Mapping[str, Any], key: str) -> Any:
    if key not in document:
        raise SerializationError(f"missing key {key!r} in {sorted(document)}")
    return document[key]


# ------------------------------------------------------------------ intervals

def interval_to_dict(interval: Interval) -> Dict[str, int]:
    return {"start": interval.start, "end": interval.end}


def interval_from_dict(document: Mapping[str, Any]) -> Interval:
    return Interval(int(_require(document, "start")), int(_require(document, "end")))


# ---------------------------------------------------------------- preferences

def preference_to_dict(preference: Preference) -> Dict[str, Any]:
    return {
        "window": interval_to_dict(preference.window),
        "duration": preference.duration,
    }


def preference_from_dict(document: Mapping[str, Any]) -> Preference:
    return Preference(
        interval_from_dict(_require(document, "window")),
        int(_require(document, "duration")),
    )


# ----------------------------------------------------------------- households

def household_to_dict(household: HouseholdType) -> Dict[str, Any]:
    return {
        "household_id": household.household_id,
        "true_preference": preference_to_dict(household.true_preference),
        "valuation_factor": household.valuation_factor,
        "rating_kw": household.rating_kw,
    }


def household_from_dict(document: Mapping[str, Any]) -> HouseholdType:
    return HouseholdType(
        household_id=str(_require(document, "household_id")),
        true_preference=preference_from_dict(_require(document, "true_preference")),
        valuation_factor=float(_require(document, "valuation_factor")),
        rating_kw=float(document.get("rating_kw", 2.0)),
    )


def neighborhood_to_dict(neighborhood: Neighborhood) -> Dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "households": [household_to_dict(hh) for hh in neighborhood],
    }


def neighborhood_from_dict(document: Mapping[str, Any]) -> Neighborhood:
    version = document.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SerializationError(f"unsupported schema version {version}")
    return Neighborhood.of(
        *(household_from_dict(item) for item in _require(document, "households"))
    )


# -------------------------------------------------------------------- reports

def report_to_dict(report: Report) -> Dict[str, Any]:
    return {
        "household_id": report.household_id,
        "preference": preference_to_dict(report.preference),
    }


def report_from_dict(document: Mapping[str, Any]) -> Report:
    return Report(
        str(_require(document, "household_id")),
        preference_from_dict(_require(document, "preference")),
    )


# ------------------------------------------------------------------- outcomes

def settlement_to_dict(settlement: Settlement) -> Dict[str, Any]:
    return {
        "total_cost": settlement.total_cost,
        "flexibility": dict(settlement.flexibility),
        "defection": dict(settlement.defection),
        "social_cost": dict(settlement.social_cost),
        "payments": dict(settlement.payments),
        "valuations": dict(settlement.valuations),
        "utilities": dict(settlement.utilities),
        "overlap_fractions": dict(settlement.overlap_fractions),
        "neighborhood_utility": settlement.neighborhood_utility,
        "load_profile": list(settlement.load_profile.as_array()),
    }


def settlement_from_dict(document: Mapping[str, Any]) -> Settlement:
    """Rebuild a :class:`Settlement` from its serialized form."""
    return Settlement(
        total_cost=float(_require(document, "total_cost")),
        flexibility=dict(_require(document, "flexibility")),
        defection=dict(_require(document, "defection")),
        social_cost=dict(_require(document, "social_cost")),
        payments=dict(_require(document, "payments")),
        valuations=dict(_require(document, "valuations")),
        utilities=dict(_require(document, "utilities")),
        overlap_fractions=dict(_require(document, "overlap_fractions")),
        neighborhood_utility=float(_require(document, "neighborhood_utility")),
        load_profile=LoadProfile(_require(document, "load_profile")),
    )


def day_outcome_to_dict(outcome: DayOutcome) -> Dict[str, Any]:
    """Serialize a settled day: inputs, allocation, settlement, robustness.

    Round-trips through :func:`day_outcome_from_dict` — the checkpoint
    store relies on this to replay completed days on ``--resume``.
    """
    result = outcome.allocation_result
    return {
        "schema_version": SCHEMA_VERSION,
        "reports": {
            hid: report_to_dict(report) for hid, report in outcome.reports.items()
        },
        "allocation": {
            hid: interval_to_dict(interval)
            for hid, interval in outcome.allocation.items()
        },
        "consumption": {
            hid: interval_to_dict(interval)
            for hid, interval in outcome.consumption.items()
        },
        "allocator": {
            "name": result.allocator_name,
            "cost": result.cost,
            "wall_time_s": result.wall_time_s,
            "proven_optimal": result.proven_optimal,
            "nodes_explored": result.nodes_explored,
            "lower_bound": result.lower_bound,
            "root_bound_matched": result.root_bound_matched,
            "kernel_backend": result.kernel_backend,
            "served_tier": result.served_tier,
            "fallback_trail": [
                record.as_payload() for record in result.fallback_trail
            ],
        },
        "settlement": settlement_to_dict(outcome.settlement),
        "quarantine_decisions": [
            decision.as_payload() for decision in outcome.quarantine_decisions
        ],
    }


def day_outcome_from_dict(document: Mapping[str, Any]) -> DayOutcome:
    """Rebuild a settled day from :func:`day_outcome_to_dict` output."""
    version = document.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SerializationError(f"unsupported schema version {version}")
    allocator = _require(document, "allocator")
    allocation = {
        hid: interval_from_dict(item)
        for hid, item in _require(document, "allocation").items()
    }
    lower_bound = allocator.get("lower_bound")
    result = AllocationResult(
        allocation=allocation,
        cost=float(_require(allocator, "cost")),
        wall_time_s=float(_require(allocator, "wall_time_s")),
        proven_optimal=bool(allocator.get("proven_optimal", False)),
        nodes_explored=int(allocator.get("nodes_explored", 0)),
        lower_bound=None if lower_bound is None else float(lower_bound),
        root_bound_matched=bool(allocator.get("root_bound_matched", False)),
        kernel_backend=str(allocator.get("kernel_backend", "")),
        allocator_name=str(allocator.get("name", "")),
        served_tier=int(allocator.get("served_tier", 0)),
        fallback_trail=tuple(
            TierRecord(
                tier=int(item["tier"]),
                allocator=str(item["allocator"]),
                status=str(item["status"]),
                wall_time_s=float(item["wall_time_s"]),
                detail=str(item.get("detail", "")),
            )
            for item in allocator.get("fallback_trail", [])
        ),
    )
    return DayOutcome(
        reports={
            hid: report_from_dict(item)
            for hid, item in _require(document, "reports").items()
        },
        allocation_result=result,
        consumption={
            hid: interval_from_dict(item)
            for hid, item in _require(document, "consumption").items()
        },
        settlement=settlement_from_dict(_require(document, "settlement")),
        quarantine_decisions=tuple(
            QuarantineDecision(
                household_id=item["household_id"],
                action=str(item["action"]),
                reason=item.get("reason"),
                original=item.get("original"),
                repaired=item.get("repaired"),
            )
            for item in document.get("quarantine_decisions", [])
        ),
    )


# ----------------------------------------------------------------- file layer

def dump_json(document: Mapping[str, Any], path: str) -> None:
    """Write a serialized document as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Read a serialized document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_neighborhood(neighborhood: Neighborhood, path: str) -> None:
    dump_json(neighborhood_to_dict(neighborhood), path)


def load_neighborhood(path: str) -> Neighborhood:
    return neighborhood_from_dict(load_json(path))


def save_day_outcome(outcome: DayOutcome, path: str) -> None:
    dump_json(day_outcome_to_dict(outcome), path)
