"""JSON serialization of the domain objects.

A production DSM deployment persists its neighborhoods, reports and
settled days; this module provides explicit, versioned dict round-trips
for the core types (no pickle — the formats are stable, diffable JSON).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from ..core.intervals import Interval
from ..core.mechanism import DayOutcome, Settlement
from ..core.types import (
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
)

#: Format version embedded in every serialized document.
SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be decoded."""


def _require(document: Mapping[str, Any], key: str) -> Any:
    if key not in document:
        raise SerializationError(f"missing key {key!r} in {sorted(document)}")
    return document[key]


# ------------------------------------------------------------------ intervals

def interval_to_dict(interval: Interval) -> Dict[str, int]:
    return {"start": interval.start, "end": interval.end}


def interval_from_dict(document: Mapping[str, Any]) -> Interval:
    return Interval(int(_require(document, "start")), int(_require(document, "end")))


# ---------------------------------------------------------------- preferences

def preference_to_dict(preference: Preference) -> Dict[str, Any]:
    return {
        "window": interval_to_dict(preference.window),
        "duration": preference.duration,
    }


def preference_from_dict(document: Mapping[str, Any]) -> Preference:
    return Preference(
        interval_from_dict(_require(document, "window")),
        int(_require(document, "duration")),
    )


# ----------------------------------------------------------------- households

def household_to_dict(household: HouseholdType) -> Dict[str, Any]:
    return {
        "household_id": household.household_id,
        "true_preference": preference_to_dict(household.true_preference),
        "valuation_factor": household.valuation_factor,
        "rating_kw": household.rating_kw,
    }


def household_from_dict(document: Mapping[str, Any]) -> HouseholdType:
    return HouseholdType(
        household_id=str(_require(document, "household_id")),
        true_preference=preference_from_dict(_require(document, "true_preference")),
        valuation_factor=float(_require(document, "valuation_factor")),
        rating_kw=float(document.get("rating_kw", 2.0)),
    )


def neighborhood_to_dict(neighborhood: Neighborhood) -> Dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "households": [household_to_dict(hh) for hh in neighborhood],
    }


def neighborhood_from_dict(document: Mapping[str, Any]) -> Neighborhood:
    version = document.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SerializationError(f"unsupported schema version {version}")
    return Neighborhood.of(
        *(household_from_dict(item) for item in _require(document, "households"))
    )


# -------------------------------------------------------------------- reports

def report_to_dict(report: Report) -> Dict[str, Any]:
    return {
        "household_id": report.household_id,
        "preference": preference_to_dict(report.preference),
    }


def report_from_dict(document: Mapping[str, Any]) -> Report:
    return Report(
        str(_require(document, "household_id")),
        preference_from_dict(_require(document, "preference")),
    )


# ------------------------------------------------------------------- outcomes

def settlement_to_dict(settlement: Settlement) -> Dict[str, Any]:
    return {
        "total_cost": settlement.total_cost,
        "flexibility": dict(settlement.flexibility),
        "defection": dict(settlement.defection),
        "social_cost": dict(settlement.social_cost),
        "payments": dict(settlement.payments),
        "valuations": dict(settlement.valuations),
        "utilities": dict(settlement.utilities),
        "overlap_fractions": dict(settlement.overlap_fractions),
        "neighborhood_utility": settlement.neighborhood_utility,
        "load_profile": list(settlement.load_profile.as_array()),
    }


def day_outcome_to_dict(outcome: DayOutcome) -> Dict[str, Any]:
    """Serialize a settled day (one-way: enough to archive and audit).

    The allocation result's solver diagnostics are preserved; reloading a
    full ``DayOutcome`` object is intentionally not offered — archived
    days are data, not live mechanism state.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "reports": {
            hid: report_to_dict(report) for hid, report in outcome.reports.items()
        },
        "allocation": {
            hid: interval_to_dict(interval)
            for hid, interval in outcome.allocation.items()
        },
        "consumption": {
            hid: interval_to_dict(interval)
            for hid, interval in outcome.consumption.items()
        },
        "allocator": {
            "name": outcome.allocation_result.allocator_name,
            "cost": outcome.allocation_result.cost,
            "wall_time_s": outcome.allocation_result.wall_time_s,
            "proven_optimal": outcome.allocation_result.proven_optimal,
            "nodes_explored": outcome.allocation_result.nodes_explored,
        },
        "settlement": settlement_to_dict(outcome.settlement),
    }


# ----------------------------------------------------------------- file layer

def dump_json(document: Mapping[str, Any], path: str) -> None:
    """Write a serialized document as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Read a serialized document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_neighborhood(neighborhood: Neighborhood, path: str) -> None:
    dump_json(neighborhood_to_dict(neighborhood), path)


def load_neighborhood(path: str) -> Neighborhood:
    return neighborhood_from_dict(load_json(path))


def save_day_outcome(outcome: DayOutcome, path: str) -> None:
    dump_json(day_outcome_to_dict(outcome), path)
