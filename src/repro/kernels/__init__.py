"""JIT kernel registry: numba-compiled hot loops with a python fallback.

The two interpreted inner loops that dominate large-n days — the greedy
``solve_columnar`` ordered-placement sweep and the branch-and-bound child
expansion — have compiled builds in :mod:`repro.kernels._numba_impl`
(numba ``@njit(cache=True)``) and pure-NumPy/Python reference builds in
:mod:`repro.kernels.placement` / :mod:`repro.kernels.bnb`.  This module
is the dispatcher that picks between them:

* **auto** (default): ``numba`` when the import succeeds, else ``python``
  with a once-logged info line — a missing numba never fails a run.
* ``ENKI_KERNELS=numba|python`` in the environment, or
  ``enki-repro --kernels``, forces a backend.  Forcing ``numba`` on a box
  without numba degrades to ``python`` (logged once) rather than erroring.

Both backends are **bit-identical by construction**: processing order and
random tie-break keys are drawn outside the kernels, and the compiled
loops replicate the exact float operation sequence of the numpy
expressions they replace (same accumulation order, same first-minimum
argmin, same stable sort).  ``tests/test_kernels.py`` pins this.

Compilation happens once per process.  :func:`warm_kernels` triggers it
eagerly (and times it); the parallel runtime warms the parent before
forking workers and installs a pool initializer for spawn-style pools, so
workers never pay the compile per task.  ``cache=True`` persists the
machine code in ``__pycache__`` next to ``_numba_impl.py``, so later
processes only pay a cache load.
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager
from typing import Optional

_logger = logging.getLogger(__name__)

#: Environment variable selecting the kernel backend.
KERNELS_ENV = "ENKI_KERNELS"

#: Recognized backend choices (``auto`` resolves at call time).
BACKEND_CHOICES = ("auto", "numba", "python")

#: Programmatic override (set by :func:`set_backend`); beats the env var.
_forced: Optional[str] = None

#: Cached numba import: ``None`` = not probed, module = importable impl,
#: ``False`` = unavailable or broken (import or compile failed).
_impl = None

#: One-time JIT compile cost in seconds (``None`` until warmed, ``0.0``
#: on the python backend).
_warm_seconds: Optional[float] = None

#: Log-once guards, keyed by message class.
_logged = set()


def _log_once(key: str, message: str, *args) -> None:
    if key not in _logged:
        _logged.add(key)
        _logger.info(message, *args)


def _import_numba():
    """Import hook for the numba package (monkeypatchable in tests)."""
    import numba

    return numba


def _load_impl():
    """The compiled-kernel module, or ``None`` when numba is unusable."""
    global _impl
    if _impl is None:
        try:
            _import_numba()
            from . import _numba_impl

            _impl = _numba_impl
        except Exception as exc:  # ImportError and any numba-internal failure
            _impl = False
            _log_once(
                "numba-missing",
                "numba is not importable (%s); falling back to python kernels",
                exc,
            )
    return _impl or None


def numba_available() -> bool:
    """True when the compiled backend can actually be used."""
    return _load_impl() is not None


def _requested() -> str:
    """The backend the user asked for: forced > env var > auto."""
    if _forced is not None:
        return _forced
    env = os.environ.get(KERNELS_ENV, "").strip().lower()
    if env in ("numba", "python"):
        return env
    if env and env != "auto":
        _log_once(
            f"bad-env:{env}",
            "ignoring unrecognized %s=%r (expected numba|python|auto)",
            KERNELS_ENV,
            env,
        )
    return "auto"


def active_backend() -> str:
    """The backend kernel calls will dispatch to right now.

    Resolved per call (the env var and :func:`set_backend` both take
    effect immediately); only the numba import probe is cached.
    """
    requested = _requested()
    if requested == "python":
        return "python"
    if numba_available():
        return "numba"
    if requested == "numba":
        _log_once(
            "numba-forced-missing",
            "%s=numba requested but numba is not importable; "
            "falling back to python kernels",
            KERNELS_ENV,
        )
    return "python"


def set_backend(choice: str) -> str:
    """Force the kernel backend (the ``--kernels`` CLI flag).

    ``auto`` clears any previous override.  The choice is mirrored into
    the :data:`KERNELS_ENV` environment variable so worker processes
    (fork or spawn) resolve the same backend as the parent.

    Returns:
        The backend that will actually serve (``numba`` or ``python``).
    """
    global _forced
    choice = choice.strip().lower()
    if choice not in BACKEND_CHOICES:
        raise ValueError(
            f"kernel backend must be one of {BACKEND_CHOICES}, got {choice!r}"
        )
    if choice == "auto":
        _forced = None
        os.environ.pop(KERNELS_ENV, None)
    else:
        _forced = choice
        os.environ[KERNELS_ENV] = choice
    return active_backend()


@contextmanager
def forced_backend(choice: str):
    """Temporarily force a backend (tests and A/B benchmarks)."""
    global _forced
    previous_forced = _forced
    previous_env = os.environ.get(KERNELS_ENV)
    try:
        set_backend(choice)
        yield active_backend()
    finally:
        _forced = previous_forced
        if previous_env is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = previous_env


def warm_kernels() -> dict:
    """Compile (or cache-load) every JIT kernel once; idempotent.

    Safe to call from anywhere — a compile failure demotes the process to
    the python backend (logged once) instead of raising, so this can be a
    process-pool initializer.  Returns :func:`kernel_meta`.
    """
    global _impl, _warm_seconds
    if _warm_seconds is None:
        if active_backend() != "numba":
            _warm_seconds = 0.0
        else:
            impl = _load_impl()
            started = time.perf_counter()
            try:
                impl.warm()
                _warm_seconds = time.perf_counter() - started
            except Exception:
                _impl = False
                _warm_seconds = 0.0
                if "numba-compile-failed" not in _logged:
                    _logged.add("numba-compile-failed")
                    _logger.warning(
                        "numba kernel compilation failed; falling back to "
                        "python kernels",
                        exc_info=True,
                    )
    return kernel_meta()


def jit_ready() -> bool:
    """True when the compiled kernels are warm and safe to call."""
    if active_backend() != "numba":
        return False
    warm_kernels()
    return active_backend() == "numba"


def numba_version() -> Optional[str]:
    """The numba version string, or ``None`` without a working numba."""
    if not numba_available():
        return None
    try:
        return _import_numba().__version__
    except Exception:  # pragma: no cover - version attr always exists
        return None


def kernel_meta() -> dict:
    """Provenance record for BENCH meta: backend, version, compile cost."""
    return {
        "kernel_backend": active_backend(),
        "numba_version": numba_version(),
        "jit_compile_seconds": _warm_seconds if _warm_seconds is not None else 0.0,
    }


def _reset_backend_state() -> None:
    """Forget every cached decision (tests only)."""
    global _forced, _impl, _warm_seconds
    _forced = None
    _impl = None
    _warm_seconds = None
    _logged.clear()
