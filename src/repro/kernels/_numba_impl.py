"""Numba ``@njit`` builds of the two hot inner loops.

Imported only through :func:`repro.kernels._load_impl`, so a missing or
broken numba never touches the rest of the package.  Every function here
replicates, float operation for float operation, the numpy expressions of
the pure-python reference builds in :mod:`repro.kernels.placement` and
:mod:`repro.kernels.bnb`:

* prefix sums accumulate left to right exactly like ``np.cumsum``;
* candidate scans keep the **first** minimum, like ``np.argmin``;
* the child ordering is a stable insertion sort, which produces the one
  ordering ``np.argsort(kind="stable")`` defines (ascending, ties in
  original index order) — the algorithm differs, the answer cannot.

So allocations, costs, node counts and verdicts are bit-identical across
backends; ``tests/test_kernels.py`` pins it property-by-property.

``cache=True`` persists compiled machine code in ``__pycache__`` next to
this file; the first process on a box pays the compile (recorded as
``jit_compile_seconds`` in BENCH meta), later processes only a cache load.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def place_quadratic(
    order, win_start, win_end, duration, rating, loads, prefix, starts_out
):
    """Ordered greedy placement under quadratic pricing.

    For each household (in the caller-fixed ``order``) the marginal cost
    of a begin slot is, up to a placement-independent constant, the sum of
    existing loads under the block — ``prefix[s + v] - prefix[s]`` against
    the maintained prefix sum.  The prefix vector is updated incrementally
    with the ramp ``r * min(j - s, v)``, the same increments the python
    build applies via its precomputed ``_RAMPS`` rows.
    """
    hours = loads.shape[0]
    for at in range(order.shape[0]):
        i = order[at]
        a = win_start[i]
        v = duration[i]
        r = rating[i]
        count = win_end[i] - a - v + 1
        best = prefix[a + v] - prefix[a]
        best_k = 0
        for k in range(1, count):
            value = prefix[a + k + v] - prefix[a + k]
            if value < best:
                best = value
                best_k = k
        s = a + best_k
        starts_out[i] = s
        for h in range(s, s + v):
            loads[h] += r
        for j in range(s + 1, hours + 1):
            d = j - s
            if d > v:
                d = v
            prefix[j] += r * d


@njit(cache=True)
def place_twostep(
    order,
    win_start,
    win_end,
    duration,
    rating,
    threshold,
    low_rate,
    high_rate,
    loads,
    window_prefix,
    starts_out,
):
    """Ordered greedy placement under two-step piecewise-linear pricing.

    Per household: the per-hour marginal cost over its window (the literal
    ``low*min(l, T) + high*max(l - T, 0)`` difference the batched python
    path evaluates), a running window prefix (``np.cumsum`` order), and
    the first-minimum sliding-window delta — then the block lands and the
    running loads update.  No load prefix sum is maintained; this pricing
    path never reads one.
    """
    for at in range(order.shape[0]):
        i = order[at]
        a = win_start[i]
        b = win_end[i]
        v = duration[i]
        r = rating[i]
        width = b - a
        window_prefix[0] = 0.0
        for t in range(width):
            load = loads[a + t]
            base = load if load < threshold else threshold
            excess = load - threshold
            if excess < 0.0:
                excess = 0.0
            bumped = load + r
            base1 = bumped if bumped < threshold else threshold
            excess1 = bumped - threshold
            if excess1 < 0.0:
                excess1 = 0.0
            hourly = (low_rate * base1 + high_rate * excess1) - (
                low_rate * base + high_rate * excess
            )
            window_prefix[t + 1] = window_prefix[t] + hourly
        count = width - v + 1
        best = window_prefix[v] - window_prefix[0]
        best_k = 0
        for k in range(1, count):
            value = window_prefix[k + v] - window_prefix[k]
            if value < best:
                best = value
                best_k = k
        s = a + best_k
        starts_out[i] = s
        for h in range(s, s + v):
            loads[h] += r


@njit(cache=True)
def place_quadratic_batch(
    offsets, order, win_start, win_end, duration, rating, loads, prefix, starts_out
):
    """D stacked :func:`place_quadratic` sweeps; state resets between days.

    ``order[offsets[d]:offsets[d + 1]]`` holds day ``d``'s rows (global
    indices into the stacked columns) in processing order.  The inner
    body is byte-for-byte :func:`place_quadratic`'s, so each day's output
    is bit-identical to a separate per-day call.
    """
    hours = loads.shape[0]
    for d in range(offsets.shape[0] - 1):
        if d:
            for h in range(hours):
                loads[h] = 0.0
            for j in range(hours + 1):
                prefix[j] = 0.0
        for at in range(offsets[d], offsets[d + 1]):
            i = order[at]
            a = win_start[i]
            v = duration[i]
            r = rating[i]
            count = win_end[i] - a - v + 1
            best = prefix[a + v] - prefix[a]
            best_k = 0
            for k in range(1, count):
                value = prefix[a + k + v] - prefix[a + k]
                if value < best:
                    best = value
                    best_k = k
            s = a + best_k
            starts_out[i] = s
            for h in range(s, s + v):
                loads[h] += r
            for j in range(s + 1, hours + 1):
                dd = j - s
                if dd > v:
                    dd = v
                prefix[j] += r * dd


@njit(cache=True)
def place_twostep_batch(
    offsets,
    order,
    win_start,
    win_end,
    duration,
    rating,
    threshold,
    low_rate,
    high_rate,
    loads,
    window_prefix,
    starts_out,
):
    """D stacked :func:`place_twostep` sweeps; loads reset between days."""
    hours = loads.shape[0]
    for d in range(offsets.shape[0] - 1):
        if d:
            for h in range(hours):
                loads[h] = 0.0
        for at in range(offsets[d], offsets[d + 1]):
            i = order[at]
            a = win_start[i]
            b = win_end[i]
            v = duration[i]
            r = rating[i]
            width = b - a
            window_prefix[0] = 0.0
            for t in range(width):
                load = loads[a + t]
                base = load if load < threshold else threshold
                excess = load - threshold
                if excess < 0.0:
                    excess = 0.0
                bumped = load + r
                base1 = bumped if bumped < threshold else threshold
                excess1 = bumped - threshold
                if excess1 < 0.0:
                    excess1 = 0.0
                hourly = (low_rate * base1 + high_rate * excess1) - (
                    low_rate * base + high_rate * excess
                )
                window_prefix[t + 1] = window_prefix[t] + hourly
            count = width - v + 1
            best = window_prefix[v] - window_prefix[0]
            best_k = 0
            for k in range(1, count):
                value = window_prefix[k + v] - window_prefix[k]
                if value < best:
                    best = value
                    best_k = k
            s = a + best_k
            starts_out[i] = s
            for h in range(s, s + v):
                loads[h] += r


@njit(cache=True)
def bnb_children(
    loads, starts_idx, ends_idx, two_sigma_r, self_term, prefix, deltas, order
):
    """B&B child enumeration: per-candidate cost deltas, visited stably.

    Rebuilds the 24-hour load prefix sum (``np.cumsum`` accumulation
    order), evaluates every begin candidate's exact marginal cost
    ``2*sigma*r * window_sum + sigma*r^2*v`` through the compiled
    begin/end index vectors, and writes the stable cheapest-first child
    order into ``order[:count]``.  The transposition table, bounds and
    recursion stay in Python — this is only the per-node expansion.
    """
    hours = loads.shape[0]
    acc = 0.0
    for h in range(hours):
        acc += loads[h]
        prefix[h + 1] = acc
    count = starts_idx.shape[0]
    for k in range(count):
        deltas[k] = (
            two_sigma_r * (prefix[ends_idx[k]] - prefix[starts_idx[k]]) + self_term
        )
    for k in range(count):
        order[k] = k
    for k in range(1, count):
        moved = order[k]
        key = deltas[moved]
        j = k - 1
        while j >= 0 and deltas[order[j]] > key:
            order[j + 1] = order[j]
            j -= 1
        order[j + 1] = moved
    return count


def warm() -> None:
    """Compile every kernel for its production signature (tiny inputs)."""
    order = np.zeros(1, dtype=np.intp)
    win_start = np.zeros(1, dtype=np.intp)
    win_end = np.full(1, 2, dtype=np.intp)
    duration = np.ones(1, dtype=np.intp)
    rating = np.ones(1, dtype=np.float64)
    loads = np.zeros(24, dtype=np.float64)
    prefix = np.zeros(25, dtype=np.float64)
    starts = np.zeros(1, dtype=np.intp)
    place_quadratic(
        order, win_start, win_end, duration, rating, loads.copy(), prefix.copy(), starts
    )
    place_twostep(
        order,
        win_start,
        win_end,
        duration,
        rating,
        1.0,
        1.0,
        2.0,
        loads.copy(),
        prefix.copy(),
        starts,
    )
    offsets = np.array([0, 1], dtype=np.intp)
    place_quadratic_batch(
        offsets,
        order,
        win_start,
        win_end,
        duration,
        rating,
        loads.copy(),
        prefix.copy(),
        starts,
    )
    place_twostep_batch(
        offsets,
        order,
        win_start,
        win_end,
        duration,
        rating,
        1.0,
        1.0,
        2.0,
        loads.copy(),
        prefix.copy(),
        starts,
    )
    starts_idx = np.zeros(1, dtype=np.intp)
    ends_idx = np.ones(1, dtype=np.intp)
    deltas = np.zeros(24, dtype=np.float64)
    child_order = np.zeros(24, dtype=np.intp)
    bnb_children(
        loads, starts_idx, ends_idx, 1.0, 1.0, prefix.copy(), deltas, child_order
    )
