"""Kernel 2: branch-and-bound child enumeration.

One node expansion in the exact solver is: rebuild the 24-hour load
prefix sum, evaluate every begin candidate's exact marginal cost through
the compiled begin/end index vectors, and stable-argsort the candidates
cheapest-first.  Both the serial DFS (``_SearchState.search``) and the
parallel frontier expansion (``_expand_frontier``) run that same step;
:func:`child_expander` hands them one shared callable, compiled when the
registry selects numba.

Everything around the step — transposition table, bounds, symmetry
floor, sibling cutoff, recursion — stays in Python; the kernel only
feeds it child costs.  The compiled build replicates the numpy float
sequence exactly (``np.cumsum`` accumulation order, stable ordering), so
node counts, incumbents and proven/verdict fields cannot move.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from . import _load_impl, active_backend, jit_ready

#: ``(loads_arr, starts_idx, ends_idx, two_sigma_r, self_term, prefix,
#: deltas_buf, order_buf) -> (deltas, order)``
Expander = Callable[..., Tuple[np.ndarray, np.ndarray]]


def _expand_python(
    loads_arr, starts_idx, ends_idx, two_sigma_r, self_term, prefix,
    deltas_buf, order_buf,
):
    """The reference expansion — the exact numpy lines it was lifted from."""
    np.cumsum(loads_arr, out=prefix[1:])
    deltas = two_sigma_r * (prefix[ends_idx] - prefix[starts_idx]) + self_term
    order = np.argsort(deltas, kind="stable")
    return deltas, order


def child_expander() -> Tuple[Expander, str]:
    """The node-expansion callable for the backend active right now.

    Returns ``(expand, backend)``.  Resolved once per search state —
    worker processes build their own states, so the env-mirrored backend
    choice reaches them whichever start method the pool uses.

    The returned ``deltas``/``order`` may alias the caller's scratch
    buffers; callers copy (``.tolist()``) before recursing, exactly as
    the inline code always has.
    """
    if active_backend() == "numba" and jit_ready():
        impl = _load_impl()

        def _expand_numba(
            loads_arr, starts_idx, ends_idx, two_sigma_r, self_term, prefix,
            deltas_buf, order_buf,
        ):
            count = impl.bnb_children(
                loads_arr,
                starts_idx,
                ends_idx,
                two_sigma_r,
                self_term,
                prefix,
                deltas_buf,
                order_buf,
            )
            return deltas_buf[:count], order_buf[:count]

        return _expand_numba, "numba"
    return _expand_python, "python"
