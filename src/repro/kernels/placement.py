"""Kernel 1: the greedy ``solve_columnar`` ordered-placement sweep.

:func:`place_day` runs the whole placement loop of
:meth:`repro.allocation.greedy.GreedyFlexibilityAllocator.solve_columnar`
— per-item window-sum argmin (quadratic closed form, or the batched
marginal-cost sliding window for other pricing), the placement itself,
and the incremental load/prefix updates — dispatching to the numba build
when the registry selects it and the pricing model has a compiled form
(exactly :class:`~repro.pricing.quadratic.QuadraticPricing` or
:class:`~repro.pricing.piecewise.TwoStepPricing`).

The processing order and its random tie-break keys are computed by the
caller (one ``flexibility_vector`` call, one ``np.lexsort`` over keys
drawn in row order from ``random.Random``), so the per-household
placement sequence — and therefore the allocation — is independent of
the backend.  Inside the sweep both builds perform the same float
operations in the same order; see :mod:`repro.kernels._numba_impl`.

The python build is itself leaner than the loop it replaces: the
per-item ``np.concatenate(([0.0], np.cumsum(hourly)))`` window prefix of
the non-quadratic branch now lands in a reused scratch row
(:class:`PlacementScratch`), and candidate window sums come from two
prefix-vector slices instead of per-item fancy-index vectors.  The
values are unchanged — same elements, same subtraction — only the
allocation churn is gone.
"""

from __future__ import annotations

import numpy as np

from ..core.intervals import HOURS_PER_DAY
from ..pricing.base import PricingModel
from ..pricing.piecewise import TwoStepPricing
from ..pricing.quadratic import QuadraticPricing
from . import active_backend, jit_ready, _load_impl

#: ``_RAMPS[v][k]`` is how many hours of a duration-``v`` block beginning
#: at ``s`` lie at or before hour ``s + 1 + k`` — i.e. ``min(k + 1, v)``.
#: Adding ``rating * _RAMPS[v][:24 - s]`` to ``prefix[s + 1:]`` applies a
#: placement to a maintained prefix-sum vector in O(24) without the full
#: ``np.cumsum`` rebuild.
_RAMPS = [None] + [
    np.minimum(np.arange(1, HOURS_PER_DAY + 1, dtype=float), float(v))
    for v in range(1, HOURS_PER_DAY + 1)
]


class PlacementScratch:
    """Reusable buffers for one placement sweep (no per-item allocation).

    ``loads`` is the running hourly load, ``prefix`` its maintained
    25-entry prefix sum (``prefix[0]`` stays 0), and ``window_prefix``
    the per-item marginal-cost prefix row of the non-quadratic branch
    (entry 0 stays 0; only ``[1:window+1]`` is rewritten per item).
    """

    __slots__ = ("loads", "prefix", "window_prefix")

    def __init__(self) -> None:
        self.loads = np.zeros(HOURS_PER_DAY, dtype=np.float64)
        self.prefix = np.zeros(HOURS_PER_DAY + 1, dtype=np.float64)
        self.window_prefix = np.zeros(HOURS_PER_DAY + 1, dtype=np.float64)

    def reset(self) -> None:
        """Zero the running state for a fresh sweep."""
        self.loads[:] = 0.0
        self.prefix[:] = 0.0
        self.window_prefix[0] = 0.0


def place_day(
    order: np.ndarray,
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    pricing: PricingModel,
    starts_out: np.ndarray,
    scratch: PlacementScratch,
) -> str:
    """Place every household in ``order``; fill ``starts_out``.

    Returns the backend that actually ran (``"numba"`` or ``"python"``)
    — recorded on the allocation result.  Pricing models without a
    compiled form always take the python sweep, whatever the registry
    says.
    """
    scratch.reset()
    if active_backend() == "numba" and jit_ready():
        impl = _load_impl()
        if type(pricing) is QuadraticPricing:
            impl.place_quadratic(
                order,
                win_start,
                win_end,
                duration,
                rating,
                scratch.loads,
                scratch.prefix,
                starts_out,
            )
            return "numba"
        if type(pricing) is TwoStepPricing:
            impl.place_twostep(
                order,
                win_start,
                win_end,
                duration,
                rating,
                pricing.threshold_kw,
                pricing.low_rate,
                pricing.high_rate,
                scratch.loads,
                scratch.window_prefix,
                starts_out,
            )
            return "numba"
    _place_python(
        order, win_start, win_end, duration, rating, pricing, starts_out, scratch
    )
    return "python"


def place_batch(
    offsets: np.ndarray,
    order: np.ndarray,
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    pricing: PricingModel,
    starts_out: np.ndarray,
    scratch: PlacementScratch = None,
) -> str:
    """Run D independent :func:`place_day` sweeps in one kernel call.

    The columns are D days' instances stacked day-major; ``offsets`` is
    the ``D + 1`` ragged boundary vector and
    ``order[offsets[k]:offsets[k + 1]]`` lists day ``k``'s rows — as
    *global* indices into the stacked columns — in that day's processing
    order (the caller's day-major lexsort guarantees this).  Day state
    (loads, prefix) resets between days; within a day the float sequence
    is exactly :func:`place_day`'s, so ``starts_out`` is bit-identical to
    D separate calls.  Returns the backend that ran.
    """
    if scratch is None:
        scratch = PlacementScratch()
    scratch.reset()
    if active_backend() == "numba" and jit_ready():
        impl = _load_impl()
        if type(pricing) is QuadraticPricing:
            impl.place_quadratic_batch(
                offsets,
                order,
                win_start,
                win_end,
                duration,
                rating,
                scratch.loads,
                scratch.prefix,
                starts_out,
            )
            return "numba"
        if type(pricing) is TwoStepPricing:
            impl.place_twostep_batch(
                offsets,
                order,
                win_start,
                win_end,
                duration,
                rating,
                pricing.threshold_kw,
                pricing.low_rate,
                pricing.high_rate,
                scratch.loads,
                scratch.window_prefix,
                starts_out,
            )
            return "numba"
    _place_python_batch(
        offsets,
        order,
        win_start,
        win_end,
        duration,
        rating,
        pricing,
        starts_out,
        scratch,
    )
    return "python"


def _place_python(
    order: np.ndarray,
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    pricing: PricingModel,
    starts_out: np.ndarray,
    scratch: PlacementScratch,
) -> None:
    """The reference sweep: plain NumPy, any pricing model."""
    loads = scratch.loads
    prefix = scratch.prefix
    window_prefix = scratch.window_prefix
    quadratic = isinstance(pricing, QuadraticPricing)
    starts = win_start.tolist()
    ends = win_end.tolist()
    durations = duration.tolist()
    ratings = rating.tolist()
    for i in order.tolist():
        a, v, r = starts[i], durations[i], ratings[i]
        if quadratic:
            count = ends[i] - a - v + 1
            sums = prefix[a + v:a + v + count] - prefix[a:a + count]
            s = a + int(np.argmin(sums))
        else:
            b = ends[i]
            width = b - a
            hourly = pricing.marginal_cost_batch(loads[a:b], r)
            np.cumsum(hourly, out=window_prefix[1:width + 1])
            deltas = (
                window_prefix[v:width + 1] - window_prefix[:width + 1 - v]
            )
            s = a + int(np.argmin(deltas))
        starts_out[i] = s
        loads[s:s + v] += r
        prefix[s + 1:] += r * _RAMPS[v][:HOURS_PER_DAY - s]


def _place_python_batch(
    offsets: np.ndarray,
    order: np.ndarray,
    win_start: np.ndarray,
    win_end: np.ndarray,
    duration: np.ndarray,
    rating: np.ndarray,
    pricing: PricingModel,
    starts_out: np.ndarray,
    scratch: PlacementScratch,
) -> None:
    """Reference batch sweep: the per-day inner body, columns lowered once.

    ``.tolist()`` on the stacked columns happens a single time here —
    delegating to :func:`_place_python` per day would redo the O(total)
    lowering D times.
    """
    loads = scratch.loads
    prefix = scratch.prefix
    window_prefix = scratch.window_prefix
    quadratic = isinstance(pricing, QuadraticPricing)
    starts = win_start.tolist()
    ends = win_end.tolist()
    durations = duration.tolist()
    ratings = rating.tolist()
    bounds = offsets.tolist()
    rows = order.tolist()
    for k in range(len(bounds) - 1):
        if k:
            scratch.reset()
        for i in rows[bounds[k]:bounds[k + 1]]:
            a, v, r = starts[i], durations[i], ratings[i]
            if quadratic:
                count = ends[i] - a - v + 1
                sums = prefix[a + v:a + v + count] - prefix[a:a + count]
                s = a + int(np.argmin(sums))
            else:
                b = ends[i]
                width = b - a
                hourly = pricing.marginal_cost_batch(loads[a:b], r)
                np.cumsum(hourly, out=window_prefix[1:width + 1])
                deltas = (
                    window_prefix[v:width + 1] - window_prefix[:width + 1 - v]
                )
                s = a + int(np.argmin(deltas))
            starts_out[i] = s
            loads[s:s + v] += r
            prefix[s + 1:] += r * _RAMPS[v][:HOURS_PER_DAY - s]
