"""Wholesale market substrate: the provider side of Figure 1."""

from .dayahead import DayAheadMarket, DayAheadResult, HourlyClearing
from .imbalance import HourlyImbalance, ImbalanceResult, TwoPriceImbalance
from .procurement import ProcurementDay, ProcurementPipeline, scheduled_demand
from .supply import (
    Generator,
    MeritOrderSupply,
    QuadraticSupplyCurve,
    SupplyCurve,
)

__all__ = [
    "SupplyCurve",
    "Generator",
    "MeritOrderSupply",
    "QuadraticSupplyCurve",
    "DayAheadMarket",
    "DayAheadResult",
    "HourlyClearing",
    "TwoPriceImbalance",
    "ImbalanceResult",
    "HourlyImbalance",
    "ProcurementPipeline",
    "ProcurementDay",
    "scheduled_demand",
]
