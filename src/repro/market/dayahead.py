"""The day-ahead market: 24 hourly single-sided auctions.

The neighborhood (as the resource provider of Figure 1) bids a quantity
for each hour of the next day; each hour clears independently against the
supply curve, yielding a clearing price and a procurement cost.  Prices
are lower off-peak exactly because the merit order is shallower there —
the effect Section I cites as the reason day-ahead procurement rewards
peak reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.intervals import HOURS_PER_DAY
from .supply import SupplyCurve


@dataclass(frozen=True)
class HourlyClearing:
    """One hour's auction outcome."""

    hour: int
    quantity_kwh: float
    clearing_price: float
    cost: float


@dataclass
class DayAheadResult:
    """A full day's procurement: 24 hourly clearings."""

    clearings: List[HourlyClearing]

    @property
    def total_cost(self) -> float:
        return sum(clearing.cost for clearing in self.clearings)

    @property
    def total_energy_kwh(self) -> float:
        return sum(clearing.quantity_kwh for clearing in self.clearings)

    def price_profile(self) -> List[float]:
        """The 24 clearing prices (the day-ahead price signal)."""
        return [clearing.clearing_price for clearing in self.clearings]


class DayAheadMarket:
    """Clears hourly quantity bids against a supply curve."""

    def __init__(self, supply: SupplyCurve) -> None:
        self.supply = supply

    def clear(self, quantities_kwh: Sequence[float]) -> DayAheadResult:
        """Run the 24 hourly auctions for the bid quantities.

        Args:
            quantities_kwh: One procurement bid per hour (length 24).

        Returns:
            Clearing price and cost per hour.
        """
        if len(quantities_kwh) != HOURS_PER_DAY:
            raise ValueError(
                f"need {HOURS_PER_DAY} hourly bids, got {len(quantities_kwh)}"
            )
        clearings: List[HourlyClearing] = []
        for hour, quantity in enumerate(quantities_kwh):
            if quantity < 0:
                raise ValueError(f"hour {hour}: bid quantity cannot be negative")
            if quantity > self.supply.capacity_kwh() + 1e-9:
                raise ValueError(
                    f"hour {hour}: bid {quantity} exceeds supply capacity "
                    f"{self.supply.capacity_kwh()}"
                )
            clearings.append(
                HourlyClearing(
                    hour=hour,
                    quantity_kwh=float(quantity),
                    clearing_price=self.supply.clearing_price(float(quantity)),
                    cost=self.supply.energy_cost(float(quantity)),
                )
            )
        return DayAheadResult(clearings=clearings)
