"""Imbalance settlement: paying for forecast errors.

Rose et al. (the paper's [24]) have the neighborhood "charged for any
imbalance between the amount it purchased and the aggregate amount that
the neighborhood's consumers consumed."  We model the standard two-price
scheme: energy consumed above the day-ahead position is bought at a
premium over the clearing price; unused energy is sold back at a discount.
Both penalties make accurate ECC forecasts directly valuable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.intervals import HOURS_PER_DAY
from .dayahead import DayAheadResult


@dataclass(frozen=True)
class HourlyImbalance:
    """One hour's deviation and its settlement."""

    hour: int
    scheduled_kwh: float
    consumed_kwh: float
    imbalance_kwh: float
    charge: float


@dataclass
class ImbalanceResult:
    """A day's imbalance settlement."""

    hours: List[HourlyImbalance]

    @property
    def total_charge(self) -> float:
        return sum(hour.charge for hour in self.hours)

    @property
    def total_absolute_imbalance_kwh(self) -> float:
        return sum(abs(hour.imbalance_kwh) for hour in self.hours)


class TwoPriceImbalance:
    """Shortfalls buy at a premium; surpluses sell back at a discount.

    Args:
        shortfall_premium: Multiplier (> 1) on the clearing price for energy
            consumed beyond the day-ahead position.
        surplus_discount: Fraction (< 1) of the clearing price recovered for
            unused scheduled energy; the charge for a surplus hour is the
            *lost* value ``(1 - discount) * price * surplus``.
    """

    def __init__(
        self, shortfall_premium: float = 1.5, surplus_discount: float = 0.5
    ) -> None:
        if shortfall_premium < 1.0:
            raise ValueError(
                f"shortfall premium must be >= 1, got {shortfall_premium}"
            )
        if not 0.0 <= surplus_discount <= 1.0:
            raise ValueError(
                f"surplus discount must be in [0, 1], got {surplus_discount}"
            )
        self.shortfall_premium = shortfall_premium
        self.surplus_discount = surplus_discount

    def settle(
        self, position: DayAheadResult, consumed_kwh: Sequence[float]
    ) -> ImbalanceResult:
        """Settle realized consumption against the day-ahead position."""
        if len(consumed_kwh) != HOURS_PER_DAY:
            raise ValueError(
                f"need {HOURS_PER_DAY} hourly consumptions, got {len(consumed_kwh)}"
            )
        hours: List[HourlyImbalance] = []
        for clearing, consumed in zip(position.clearings, consumed_kwh):
            if consumed < 0:
                raise ValueError(
                    f"hour {clearing.hour}: consumption cannot be negative"
                )
            imbalance = float(consumed) - clearing.quantity_kwh
            if imbalance > 0:
                # Shortfall: buy the missing energy at a premium.
                charge = imbalance * clearing.clearing_price * self.shortfall_premium
            else:
                # Surplus: recover only a fraction of what was paid.
                charge = -imbalance * clearing.clearing_price * (
                    1.0 - self.surplus_discount
                )
            hours.append(
                HourlyImbalance(
                    hour=clearing.hour,
                    scheduled_kwh=clearing.quantity_kwh,
                    consumed_kwh=float(consumed),
                    imbalance_kwh=imbalance,
                    charge=charge,
                )
            )
        return ImbalanceResult(hours=hours)
