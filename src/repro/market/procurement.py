"""Forecast-driven procurement: the neighborhood's market-facing loop.

Ties the whole Figure 1 pipeline together on the provider side: the
center aggregates its households' (forecast) reports into an hourly
demand schedule, buys that schedule day-ahead, lets the day play out
through Enki, and settles the deviation between the purchased position
and realized consumption at imbalance prices.  Better ECC forecasts mean
smaller imbalance charges — the experiment
:mod:`repro.experiments.ext_forecast_market` quantifies exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.intervals import HOURS_PER_DAY
from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import HouseholdId, Neighborhood, Report
from ..pricing.load_profile import LoadProfile
from .dayahead import DayAheadMarket, DayAheadResult
from .imbalance import ImbalanceResult, TwoPriceImbalance


@dataclass
class ProcurementDay:
    """One day of market-facing operation."""

    position: DayAheadResult
    imbalance: ImbalanceResult
    mechanism_day: DayOutcome

    @property
    def day_ahead_cost(self) -> float:
        return self.position.total_cost

    @property
    def imbalance_cost(self) -> float:
        return self.imbalance.total_charge

    @property
    def total_procurement_cost(self) -> float:
        return self.day_ahead_cost + self.imbalance_cost

    @property
    def imbalance_share(self) -> float:
        """Fraction of the total bill caused by forecast errors."""
        total = self.total_procurement_cost
        if total <= 0:
            return 0.0
        return self.imbalance_cost / total


def scheduled_demand(
    reports: Mapping[HouseholdId, Report],
    allocation,
    neighborhood: Neighborhood,
) -> LoadProfile:
    """The hourly demand the center commits to buying.

    The center purchases the *allocated* schedule: it has already solved
    the allocation for the (forecast) reports, so the allocation is its
    best estimate of tomorrow's hourly load.
    """
    return LoadProfile.from_schedule(allocation, neighborhood.households)


class ProcurementPipeline:
    """Day-ahead purchase + Enki day + imbalance settlement."""

    def __init__(
        self,
        market: DayAheadMarket,
        imbalance: Optional[TwoPriceImbalance] = None,
        mechanism: Optional[EnkiMechanism] = None,
    ) -> None:
        self.market = market
        self.imbalance = imbalance if imbalance is not None else TwoPriceImbalance()
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()

    def run_day(
        self,
        neighborhood: Neighborhood,
        forecast_reports: Mapping[HouseholdId, Report],
        consumption=None,
        rng: Optional[random.Random] = None,
    ) -> ProcurementDay:
        """Buy the forecast schedule, run the day, settle the imbalance.

        Args:
            neighborhood: True household types (drive realized consumption).
            forecast_reports: What the ECC units *predicted* and reported;
                the day-ahead position is built from the allocation of
                these reports.
            consumption: Realized consumption; closest-feasible behaviour
                when omitted (households defect only if the forecast missed
                their true window).
            rng: Allocation tie-break randomness.
        """
        outcome = self.mechanism.run_day(
            neighborhood, forecast_reports, consumption, rng=rng
        )
        allocation_profile = scheduled_demand(
            forecast_reports, outcome.allocation, neighborhood
        )
        position = self.market.clear(
            [allocation_profile[h] for h in range(HOURS_PER_DAY)]
        )
        realized = outcome.settlement.load_profile
        settlement = self.imbalance.settle(
            position, [realized[h] for h in range(HOURS_PER_DAY)]
        )
        return ProcurementDay(
            position=position, imbalance=settlement, mechanism_day=outcome
        )
