"""Supply-side models for the wholesale day-ahead market.

Section I situates Enki in the day-ahead energy market: "a wholesale power
market functions as a single-sided auction where resource providers bid
for a given amount of power for the next day and wholesale prices are
lower during off-peak periods."  We model the supply side as a merit-order
stack of generators with increasing marginal costs; clearing a quantity
walks the stack cheapest-first.

The paper's quadratic neighborhood cost (Eq. 1) is the special case of a
supply curve whose marginal price rises linearly: marginal price
``2*sigma*l`` integrates to the energy cost ``sigma*l**2``.
:class:`QuadraticSupplyCurve` makes that correspondence exact, tying the
market substrate back to the mechanism's pricing model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple


class SupplyCurve(abc.ABC):
    """Hourly supply: the cost and clearing price of a procured quantity."""

    @abc.abstractmethod
    def energy_cost(self, quantity_kwh: float) -> float:
        """Total cost of procuring ``quantity_kwh`` in one hour."""

    @abc.abstractmethod
    def clearing_price(self, quantity_kwh: float) -> float:
        """Marginal price at ``quantity_kwh`` (the auction's clearing price)."""

    def capacity_kwh(self) -> float:
        """Maximum procurable quantity per hour (``inf`` if unbounded)."""
        return float("inf")


@dataclass(frozen=True)
class Generator:
    """One bid block in the merit order: capacity at a marginal cost."""

    name: str
    capacity_kwh: float
    marginal_cost: float

    def __post_init__(self) -> None:
        if self.capacity_kwh <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_kwh}")
        if self.marginal_cost < 0:
            raise ValueError(f"marginal cost cannot be negative, got {self.marginal_cost}")


class MeritOrderSupply(SupplyCurve):
    """A stack of generators cleared cheapest-first (the single-sided auction).

    Args:
        generators: Bid blocks; they are sorted by marginal cost internally.
    """

    def __init__(self, generators: Sequence[Generator]) -> None:
        if not generators:
            raise ValueError("the merit order needs at least one generator")
        self.generators: Tuple[Generator, ...] = tuple(
            sorted(generators, key=lambda g: (g.marginal_cost, g.name))
        )

    def capacity_kwh(self) -> float:
        return sum(g.capacity_kwh for g in self.generators)

    def dispatch(self, quantity_kwh: float) -> List[Tuple[Generator, float]]:
        """Which generators run, and how much each produces."""
        if quantity_kwh < 0:
            raise ValueError(f"quantity cannot be negative, got {quantity_kwh}")
        if quantity_kwh > self.capacity_kwh() + 1e-9:
            raise ValueError(
                f"quantity {quantity_kwh} exceeds total capacity {self.capacity_kwh()}"
            )
        remaining = quantity_kwh
        schedule: List[Tuple[Generator, float]] = []
        for generator in self.generators:
            if remaining <= 0:
                break
            take = min(generator.capacity_kwh, remaining)
            schedule.append((generator, take))
            remaining -= take
        return schedule

    def energy_cost(self, quantity_kwh: float) -> float:
        return sum(
            generator.marginal_cost * produced
            for generator, produced in self.dispatch(quantity_kwh)
        )

    def clearing_price(self, quantity_kwh: float) -> float:
        dispatch = self.dispatch(quantity_kwh)
        if not dispatch:
            return self.generators[0].marginal_cost
        return dispatch[-1][0].marginal_cost


class QuadraticSupplyCurve(SupplyCurve):
    """The supply curve whose procurement cost is exactly Eq. 1.

    Marginal price ``2*sigma*q`` integrates to ``sigma*q**2``, so a
    neighborhood buying its hourly load on this curve pays precisely the
    paper's ``P_h(l_h) = sigma * l_h**2``.
    """

    def __init__(self, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma

    def energy_cost(self, quantity_kwh: float) -> float:
        if quantity_kwh < 0:
            raise ValueError(f"quantity cannot be negative, got {quantity_kwh}")
        return self.sigma * quantity_kwh * quantity_kwh

    def clearing_price(self, quantity_kwh: float) -> float:
        if quantity_kwh < 0:
            raise ValueError(f"quantity cannot be negative, got {quantity_kwh}")
        return 2.0 * self.sigma * quantity_kwh
