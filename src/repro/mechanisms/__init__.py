"""Mechanism substrate: Enki and the baselines it is compared against."""

from .base import Mechanism, MechanismDayResult
from .dlc import DirectLoadControl, DlcDayDetails
from .enki import EnkiComparisonMechanism
from .proportional import ProportionalMechanism
from .rtp import RealTimePricingControl, RtpDayDetails
from .vcg import VcgMechanism

__all__ = [
    "Mechanism",
    "MechanismDayResult",
    "EnkiComparisonMechanism",
    "ProportionalMechanism",
    "VcgMechanism",
    "DirectLoadControl",
    "DlcDayDetails",
    "RealTimePricingControl",
    "RtpDayDetails",
]
