"""Common interface for DSM mechanisms compared in the evaluation.

A *mechanism* here is the full loop: take reports, produce an allocation,
observe consumption, and settle payments.  The package ships Enki itself,
the VCG comparator of Samadi et al. (the paper's Section II contrast), and
the proportional price-taking baseline of Section V-D.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.types import (
    AllocationMap,
    ConsumptionMap,
    HouseholdId,
    Neighborhood,
    Report,
)


@dataclass
class MechanismDayResult:
    """One settled day under some mechanism, in comparable terms."""

    mechanism: str
    allocation: AllocationMap
    consumption: ConsumptionMap
    payments: Dict[HouseholdId, float]
    valuations: Dict[HouseholdId, float]
    utilities: Dict[HouseholdId, float]
    total_cost: float

    @property
    def budget_surplus(self) -> float:
        """Revenue minus procurement cost; negative means a deficit."""
        return sum(self.payments.values()) - self.total_cost

    @property
    def social_welfare(self) -> float:
        """Sum of true valuations minus the neighborhood cost."""
        return sum(self.valuations.values()) - self.total_cost


class Mechanism(abc.ABC):
    """A complete report-allocate-consume-settle mechanism."""

    name: str = "mechanism"

    @abc.abstractmethod
    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        """Execute one day; truthful reports when none are given."""
