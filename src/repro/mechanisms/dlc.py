"""Direct Load Control (DLC): the Section II incumbent, warts included.

"Direct Load Control involves a power company turning off selected
appliances during peak hours.  Consumers often find ceding such control to
a power company risky since their particular needs might not be
addressed."  This baseline makes that risk measurable: households consume
at their preferred slot; whenever the aggregate exceeds the utility's cap,
the controller sheds enough appliances (latest enrollees first) for the
remainder of their block, and the shed energy is simply *unserved* — the
dissatisfaction the paper cites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.payments import DEFAULT_XI, proportional_payments
from ..core.types import HouseholdId, Neighborhood, Report
from ..core.mechanism import truthful_reports
from ..core.valuation import valuation
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .base import Mechanism, MechanismDayResult


@dataclass
class DlcDayDetails:
    """Shedding diagnostics attached to a DLC day."""

    served_hours: Dict[HouseholdId, int] = field(default_factory=dict)
    requested_hours: Dict[HouseholdId, int] = field(default_factory=dict)
    shed_events: int = 0
    served_profile: Optional[LoadProfile] = None

    @property
    def unserved_fraction(self) -> float:
        """Share of requested appliance-hours the utility switched off."""
        requested = sum(self.requested_hours.values())
        if requested == 0:
            return 0.0
        served = sum(self.served_hours.values())
        return 1.0 - served / requested


class DirectLoadControl(Mechanism):
    """Cap-and-shed load control (see module docstring).

    Args:
        cap_kw: Aggregate load ceiling the utility enforces per hour.
        pricing: Procurement pricing for the *served* energy.
        xi: Billing scale (households pay usage-proportional shares).
    """

    name = "dlc"

    def __init__(
        self,
        cap_kw: float,
        pricing: Optional[PricingModel] = None,
        xi: float = DEFAULT_XI,
    ) -> None:
        if cap_kw <= 0:
            raise ValueError(f"cap must be positive, got {cap_kw}")
        self.cap_kw = cap_kw
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.xi = xi
        #: Diagnostics of the most recent day.
        self.last_details: Optional[DlcDayDetails] = None

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        rng = rng if rng is not None else random.Random()
        reports = (
            dict(reports) if reports is not None else truthful_reports(neighborhood)
        )

        details = DlcDayDetails()
        # Everyone plugs in at their preferred (window-start) slot.
        desired: Dict[HouseholdId, Interval] = {}
        for household in neighborhood:
            window = household.true_preference.window
            duration = household.true_preference.duration
            desired[household.household_id] = Interval(
                window.start, window.start + duration
            )
            details.requested_hours[household.household_id] = duration
            details.served_hours[household.household_id] = duration

        # Hour by hour, shed the most recently added loads above the cap.
        active_by_hour: Dict[int, List[HouseholdId]] = {
            h: [] for h in range(HOURS_PER_DAY)
        }
        for hid, interval in desired.items():
            for h in interval.slots():
                active_by_hour[h].append(hid)
        shed: Dict[HouseholdId, set] = {hid: set() for hid in desired}
        for h in range(HOURS_PER_DAY):
            load = sum(
                neighborhood[hid].rating_kw
                for hid in active_by_hour[h]
                if h not in shed[hid]
            )
            victims = list(active_by_hour[h])
            rng.shuffle(victims)
            while load > self.cap_kw + 1e-9 and victims:
                victim = victims.pop()
                if h in shed[victim]:
                    continue
                shed[victim].add(h)
                details.served_hours[victim] -= 1
                details.shed_events += 1
                load -= neighborhood[victim].rating_kw

        # Served load profile and per-household served energy.
        profile = LoadProfile()
        energy: Dict[HouseholdId, float] = {}
        for hid, interval in desired.items():
            rating = neighborhood[hid].rating_kw
            served = 0
            for h in interval.slots():
                if h not in shed[hid]:
                    profile.add(Interval(h, h + 1), rating)
                    served += 1
            energy[hid] = served * rating

        details.served_profile = profile.copy()
        total_cost = self.pricing.cost(profile)
        # Households with fully shed loads pay nothing (no usage).
        positive_energy = {hid: e for hid, e in energy.items() if e > 0}
        payments = {hid: 0.0 for hid in desired}
        if positive_energy:
            payments.update(
                proportional_payments(positive_energy, total_cost, self.xi)
            )

        valuations: Dict[HouseholdId, float] = {}
        utilities: Dict[HouseholdId, float] = {}
        for household in neighborhood:
            hid = household.household_id
            served_in_window = details.served_hours[hid]
            valuations[hid] = valuation(
                float(served_in_window), household.duration, household.valuation_factor
            )
            utilities[hid] = valuations[hid] - payments[hid]

        self.last_details = details
        return MechanismDayResult(
            mechanism=self.name,
            allocation=dict(desired),
            consumption=dict(desired),
            payments=payments,
            valuations=valuations,
            utilities=utilities,
            total_cost=total_cost,
        )
