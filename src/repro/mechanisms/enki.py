"""Enki wrapped in the cross-mechanism comparison interface."""

from __future__ import annotations

import random
from typing import Mapping, Optional

from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdId, Neighborhood, Report
from .base import Mechanism, MechanismDayResult


class EnkiComparisonMechanism(Mechanism):
    """Adapter exposing :class:`EnkiMechanism` as a comparable mechanism."""

    name = "enki"

    def __init__(self, mechanism: Optional[EnkiMechanism] = None) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        outcome = self.mechanism.run_day(neighborhood, reports, rng=rng)
        return MechanismDayResult(
            mechanism=self.name,
            allocation=outcome.allocation,
            consumption=outcome.consumption,
            payments=outcome.settlement.payments,
            valuations=outcome.settlement.valuations,
            utilities=outcome.settlement.utilities,
            total_cost=outcome.settlement.total_cost,
        )
