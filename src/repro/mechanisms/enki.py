"""Enki wrapped in the cross-mechanism comparison interface."""

from __future__ import annotations

import random
from typing import Mapping, Optional

from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdId, Neighborhood, Report
from .base import Mechanism, MechanismDayResult


def serving_mechanism(
    seed: Optional[int] = None,
    quarantine_policy: Optional[str] = "clamp",
) -> EnkiMechanism:
    """The Enki configuration the shard service runs in production.

    The bare :class:`EnkiMechanism` defaults trust their inputs — fine
    for experiments replaying typed reports, wrong for a service fed raw
    wire arrays.  This factory front-loads the trust boundary: a
    quarantine (``clamp`` by default, so a malformed flood is repaired
    rather than fatal; pass ``None`` to serve strictly and let the
    service's degraded tier absorb bad shards) over the default greedy
    allocator, which is the only tier that stays tractable at shard
    scale.  Used by the ``city`` CLI subcommand and the service
    benchmarks.
    """
    from ..robustness.quarantine import Quarantine

    quarantine = (
        Quarantine(quarantine_policy) if quarantine_policy is not None else None
    )
    return EnkiMechanism(seed=seed, quarantine=quarantine)


class EnkiComparisonMechanism(Mechanism):
    """Adapter exposing :class:`EnkiMechanism` as a comparable mechanism."""

    name = "enki"

    def __init__(self, mechanism: Optional[EnkiMechanism] = None) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        outcome = self.mechanism.run_day(neighborhood, reports, rng=rng)
        return MechanismDayResult(
            mechanism=self.name,
            allocation=outcome.allocation,
            consumption=outcome.consumption,
            payments=outcome.settlement.payments,
            valuations=outcome.settlement.valuations,
            utilities=outcome.settlement.utilities,
            total_cost=outcome.settlement.total_cost,
        )
