"""The no-Enki counterfactual: price-taking proportional billing.

Section V-D defines what a household faces when it does not participate in
Enki: it consumes at will (a "price taking user"), and pays in proportion
to its energy use, ``p^z_i = b_i / sum(b) * xi * kappa(omega^z)`` (Kelly's
proportional allocation).  Theorems 5 and 6 compare expected utilities
against this baseline; the theory checkers exercise them empirically.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from ..core.intervals import Interval
from ..core.payments import DEFAULT_XI, proportional_payments
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    Neighborhood,
    Report,
)
from ..core.mechanism import truthful_reports
from ..core.valuation import max_valuation
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .base import Mechanism, MechanismDayResult


class ProportionalMechanism(Mechanism):
    """Uncoordinated consumption with usage-proportional billing.

    Args:
        pricing: Neighborhood pricing model.
        xi: Billing scale factor (the same xi as Enki's Eq. 7).
        placement: How price takers pick their slot inside their true
            window — ``"preferred"`` (the window start, everyone's habit)
            or ``"random"`` (uniform within the window).
    """

    name = "proportional"

    def __init__(
        self,
        pricing: Optional[PricingModel] = None,
        xi: float = DEFAULT_XI,
        placement: str = "preferred",
    ) -> None:
        if placement not in ("preferred", "random"):
            raise ValueError(f"placement must be 'preferred' or 'random', got {placement!r}")
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.xi = xi
        self.placement = placement

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        rng = rng if rng is not None else random.Random()
        reports = (
            dict(reports) if reports is not None else truthful_reports(neighborhood)
        )

        # Without a coordinator every household simply picks its own slot.
        consumption: ConsumptionMap = {}
        for household in neighborhood:
            window = household.true_preference.window
            duration = household.true_preference.duration
            if self.placement == "preferred":
                start = window.start
            else:
                start = rng.randint(window.start, window.end - duration)
            consumption[household.household_id] = Interval(start, start + duration)

        profile = LoadProfile.from_schedule(consumption, neighborhood.households)
        total_cost = self.pricing.cost(profile)
        energy = {
            hh.household_id: hh.duration * hh.rating_kw for hh in neighborhood
        }
        payments = proportional_payments(energy, total_cost, self.xi)

        # A price taker consumes inside its true window, so its valuation is
        # maximal — Section V-D keeps valuations identical across regimes.
        valuations: Dict[HouseholdId, float] = {
            hh.household_id: max_valuation(hh.duration, hh.valuation_factor)
            for hh in neighborhood
        }
        utilities = {
            hid: valuations[hid] - payments[hid] for hid in valuations
        }
        return MechanismDayResult(
            mechanism=self.name,
            allocation=dict(consumption),
            consumption=consumption,
            payments=payments,
            valuations=valuations,
            utilities=utilities,
            total_cost=total_cost,
        )
