"""Price-Based Control (real-time pricing): the herding baseline.

Section II: "PBC has the drawback of often shifting the peak from one
period to another.  Because consumers often respond to a price signal,
they all tend to shift to the lowest price period without a controller."

This baseline implements exactly that dynamic: the utility broadcasts
yesterday's hourly prices (marginal quadratic prices of yesterday's load);
each household independently moves its block to the cheapest hours of its
window; the aggregate creates today's prices; repeat.  The experiment
:mod:`repro.experiments.baseline_landscape` tracks the migrating peak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.payments import DEFAULT_XI, proportional_payments
from ..core.types import HouseholdId, Neighborhood, Report
from ..core.valuation import max_valuation
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .base import Mechanism, MechanismDayResult


@dataclass
class RtpDayDetails:
    """Diagnostics of one price-response day."""

    price_signal: List[float]
    peak_hour: int
    peak_kw: float


class RealTimePricingControl(Mechanism):
    """Households chase yesterday's cheapest hours (see module docstring).

    The mechanism is stateful across days: :meth:`run_day` updates the
    broadcast price signal from the day's realized load.  Day 0 sees a
    flat signal, so everyone starts at its preferred slot.

    Args:
        pricing: Quadratic procurement pricing (its marginal price
            ``2*sigma*l`` is the broadcast signal).
        xi: Usage-proportional billing scale.
    """

    name = "rtp"

    def __init__(
        self,
        pricing: Optional[QuadraticPricing] = None,
        xi: float = DEFAULT_XI,
    ) -> None:
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.xi = xi
        self._price_signal: List[float] = [0.0] * HOURS_PER_DAY
        self.last_details: Optional[RtpDayDetails] = None

    def reset(self) -> None:
        """Forget the price history (start a fresh episode)."""
        self._price_signal = [0.0] * HOURS_PER_DAY

    def _respond(
        self, neighborhood: Neighborhood, rng: random.Random
    ) -> Dict[HouseholdId, Interval]:
        """Each household picks its window's cheapest block under the signal."""
        placements: Dict[HouseholdId, Interval] = {}
        for household in neighborhood:
            window = household.true_preference.window
            duration = household.true_preference.duration
            best_start, best_price = window.start, float("inf")
            starts = list(range(window.start, window.end - duration + 1))
            rng.shuffle(starts)  # ties break randomly, as uncoordinated humans do
            for start in starts:
                price = sum(self._price_signal[start:start + duration])
                if price < best_price - 1e-12:
                    best_start, best_price = start, price
            placements[household.household_id] = Interval(
                best_start, best_start + duration
            )
        return placements

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        rng = rng if rng is not None else random.Random()
        consumption = self._respond(neighborhood, rng)
        profile = LoadProfile.from_schedule(consumption, neighborhood.households)
        total_cost = self.pricing.cost(profile)

        energy = {hh.household_id: hh.duration * hh.rating_kw for hh in neighborhood}
        payments = proportional_payments(energy, total_cost, self.xi)
        valuations = {
            hh.household_id: max_valuation(hh.duration, hh.valuation_factor)
            for hh in neighborhood
        }
        utilities = {hid: valuations[hid] - payments[hid] for hid in valuations}

        # Broadcast tomorrow's signal: today's marginal prices.
        self._price_signal = [
            2.0 * self.pricing.sigma * profile[h] for h in range(HOURS_PER_DAY)
        ]
        loads = profile.as_array()
        peak_hour = int(loads.argmax())
        self.last_details = RtpDayDetails(
            price_signal=list(self._price_signal),
            peak_hour=peak_hour,
            peak_kw=float(loads[peak_hour]),
        )
        return MechanismDayResult(
            mechanism=self.name,
            allocation=dict(consumption),
            consumption=consumption,
            payments=payments,
            valuations=valuations,
            utilities=utilities,
            total_cost=total_cost,
        )

    def run_days(
        self,
        neighborhood: Neighborhood,
        days: int,
        seed: Optional[int] = None,
    ) -> List[MechanismDayResult]:
        """A fresh multi-day episode (resets the price signal first)."""
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        self.reset()
        rng = random.Random(seed)
        return [
            self.run_day(neighborhood, rng=random.Random(rng.randrange(2**63)))
            for _ in range(days)
        ]
