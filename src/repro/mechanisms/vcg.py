"""A VCG mechanism for DSM, in the style of Samadi et al. (2012).

The paper contrasts Enki with VCG (Sections I-II, IV-B2): VCG makes
truth-telling a dominant strategy but (1) needs one additional optimal
allocation per household to price the day, so it inherits the exact
solver's intractability n+1 times over, and (2) offers no budget-balance
guarantee.  This implementation makes both failure modes measurable.

Setup: the social objective is ``sum_i V_i(s_i) - kappa(s)`` (reported
valuations, Eq. 9's objective).  The allocation maximizes it exactly; the
Clarke pivot payment of household *i* is::

    p_i = W(-i) - [sum_{j != i} V_j(s_j) - kappa(s)]

where ``W(-i)`` is the optimal objective of the economy without *i*.  Each
term needs its own exact optimization.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple

from ..allocation.base import AllocationProblem
from ..allocation.optimal import BranchAndBoundAllocator
from ..core.mechanism import default_consumption, truthful_reports
from ..core.types import (
    AllocationMap,
    HouseholdId,
    Neighborhood,
    Report,
)
from ..core.valuation import household_valuation, satisfied_hours, valuation
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .base import Mechanism, MechanismDayResult


class VcgMechanism(Mechanism):
    """Clarke-pivot VCG over the exact allocation (see module docstring).

    Args:
        pricing: Neighborhood pricing model.
        solver_time_limit_s: Budget for *each* of the n+1 exact solves; the
            measured wall time is part of the intractability story.
        seed: Warm-start seed for the exact solver.
    """

    name = "vcg"

    def __init__(
        self,
        pricing: Optional[PricingModel] = None,
        solver_time_limit_s: float = 30.0,
        seed: Optional[int] = None,
    ) -> None:
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.solver_time_limit_s = solver_time_limit_s
        self._seed = seed

    def _reported_valuation(
        self, neighborhood: Neighborhood, report: Report, allocation
    ) -> float:
        """Valuation implied by the *reported* window (what VCG can see)."""
        household = neighborhood[report.household_id]
        tau = satisfied_hours(allocation, report.preference.window)
        return valuation(float(tau), report.preference.duration, household.valuation_factor)

    def _optimize(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, Report],
        rng: random.Random,
    ) -> Tuple[AllocationMap, float]:
        """Exact welfare-maximizing allocation and its objective value.

        With allocations constrained inside reported windows, every
        reported valuation is already at its maximum (tau = v), so
        maximizing welfare reduces to minimizing kappa — the same Eq. 2
        program the branch-and-bound solver handles.
        """
        problem = AllocationProblem.from_reports(
            reports, neighborhood.households, self.pricing
        )
        solver = BranchAndBoundAllocator(
            time_limit_s=self.solver_time_limit_s, seed=self._seed
        )
        result = solver.solve(problem, rng)
        reported_value = sum(
            self._reported_valuation(neighborhood, reports[hid], interval)
            for hid, interval in result.allocation.items()
        )
        return result.allocation, reported_value - result.cost

    def run_day(
        self,
        neighborhood: Neighborhood,
        reports: Optional[Mapping[HouseholdId, Report]] = None,
        rng: Optional[random.Random] = None,
    ) -> MechanismDayResult:
        rng = rng if rng is not None else random.Random(self._seed)
        reports = (
            dict(reports) if reports is not None else truthful_reports(neighborhood)
        )

        allocation, _ = self._optimize(neighborhood, reports, rng)
        consumption = default_consumption(neighborhood, allocation)
        profile = LoadProfile.from_schedule(consumption, neighborhood.households)
        total_cost = self.pricing.cost(profile)

        payments: Dict[HouseholdId, float] = {}
        for hid in reports:
            others_reports = {k: v for k, v in reports.items() if k != hid}
            if others_reports:
                others_neighborhood = Neighborhood.of(
                    *(hh for hh in neighborhood if hh.household_id != hid)
                )
                _, welfare_without = self._optimize(
                    others_neighborhood, others_reports, rng
                )
            else:
                welfare_without = 0.0

            others_value_at_chosen = sum(
                self._reported_valuation(neighborhood, reports[other], allocation[other])
                for other in others_reports
            )
            chosen_cost = self.pricing.schedule_cost(
                allocation, neighborhood.households
            )
            payments[hid] = welfare_without - (others_value_at_chosen - chosen_cost)

        valuations = {
            hid: household_valuation(neighborhood[hid], allocation[hid])
            for hid in reports
        }
        utilities = {hid: valuations[hid] - payments[hid] for hid in reports}
        return MechanismDayResult(
            mechanism=self.name,
            allocation=allocation,
            consumption=consumption,
            payments=payments,
            valuations=valuations,
            utilities=utilities,
            total_cost=total_cost,
        )
