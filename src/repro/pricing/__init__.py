"""Pricing substrate: what the neighborhood pays the power company."""

from .base import PricingModel
from .load_profile import LoadProfile
from .piecewise import TwoStepPricing
from .quadratic import DEFAULT_SIGMA, QuadraticPricing, neighborhood_cost

__all__ = [
    "PricingModel",
    "LoadProfile",
    "TwoStepPricing",
    "QuadraticPricing",
    "DEFAULT_SIGMA",
    "neighborhood_cost",
]
