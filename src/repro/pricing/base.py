"""Pricing model interface: what the neighborhood pays the power company."""

from __future__ import annotations

import abc
from typing import Mapping, Optional

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import HouseholdId, HouseholdType
from .load_profile import LoadProfile


class PricingModel(abc.ABC):
    """Maps hourly aggregate load to the neighborhood's cost.

    The paper requires the hourly price ``P_h(l_h)`` to be increasing and
    strictly convex in the aggregate load (Section III) so that flattening
    the profile always lowers the total cost ``kappa``.
    """

    @abc.abstractmethod
    def hourly_cost(self, load_kw: float) -> float:
        """Cost of one hour at aggregate load ``load_kw`` (``P_h(l_h)``)."""

    def cost(self, profile: LoadProfile) -> float:
        """Total daily cost ``kappa = sum_h P_h(l_h)`` (Eq. 1)."""
        return sum(self.hourly_cost(profile[h]) for h in range(HOURS_PER_DAY))

    def cost_batch(self, loads: "np.ndarray") -> "np.ndarray":
        """``kappa`` for a batch of hourly load vectors, shape ``(..., 24)``.

        The vectorized settlement path evaluates every defector's
        counterfactual profile in one call.  Subclasses with closed-form
        costs (e.g. quadratic) should override this with a pure array
        expression; the default falls back to :meth:`hourly_cost` per
        entry, preserving exact hourly semantics for custom models.
        """
        arr = np.asarray(loads, dtype=float)
        if arr.shape[-1] != HOURS_PER_DAY:
            raise ValueError(
                f"load batch must have {HOURS_PER_DAY} hourly values per row, "
                f"got shape {arr.shape}"
            )
        flat = arr.reshape(-1)
        costs = np.fromiter(
            (self.hourly_cost(float(value)) for value in flat),
            dtype=float,
            count=flat.size,
        )
        return costs.reshape(arr.shape).sum(axis=-1)

    def schedule_cost(
        self,
        schedule: Mapping[HouseholdId, Interval],
        types: Optional[Mapping[HouseholdId, HouseholdType]] = None,
    ) -> float:
        """Total cost of a per-household schedule (allocation or consumption)."""
        return self.cost(LoadProfile.from_schedule(schedule, types))

    def marginal_cost(self, load_kw: float, added_kw: float) -> float:
        """Cost increase of adding ``added_kw`` on top of ``load_kw`` for one hour."""
        return self.hourly_cost(load_kw + added_kw) - self.hourly_cost(load_kw)

    def marginal_cost_batch(
        self, loads_kw: "np.ndarray", added_kw: float
    ) -> "np.ndarray":
        """:meth:`marginal_cost` for a vector of hourly loads.

        The allocators' placement scans evaluate the marginal cost of one
        ``added_kw`` block over every hour of a window at once.  Subclasses
        with closed-form prices should override this with an array
        expression written in the same operation order as the scalar path,
        so the batched scan is bit-identical to a per-hour loop; the
        default falls back to :meth:`marginal_cost` per entry.
        """
        arr = np.asarray(loads_kw, dtype=float)
        flat = arr.reshape(-1)
        out = np.fromiter(
            (self.marginal_cost(float(value), added_kw) for value in flat),
            dtype=float,
            count=flat.size,
        )
        return out.reshape(arr.shape)
