"""Aggregate hourly load profiles and the peak-to-average ratio metric."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import DEFAULT_RATING_KW, HouseholdId, HouseholdType


class LoadProfile:
    """The aggregate load ``l_h`` (kW) for each hour of a day.

    Wraps a length-24 vector with the operations the mechanism needs:
    building profiles from household intervals, incremental add/remove of a
    single household's block (used heavily by the allocators), and the
    evaluation metrics of Section VI (peak-to-average ratio).
    """

    __slots__ = ("_loads",)

    def __init__(self, loads: Optional[Iterable[float]] = None) -> None:
        if loads is None:
            self._loads = np.zeros(HOURS_PER_DAY, dtype=float)
        else:
            arr = np.asarray(list(loads) if not isinstance(loads, np.ndarray) else loads,
                             dtype=float)
            if arr.shape != (HOURS_PER_DAY,):
                raise ValueError(
                    f"load profile needs {HOURS_PER_DAY} hourly values, got {arr.shape}"
                )
            if np.any(arr < 0):
                raise ValueError("hourly loads cannot be negative")
            self._loads = arr.copy()

    @classmethod
    def _wrap(cls, loads: np.ndarray) -> "LoadProfile":
        """Adopt ``loads`` (a length-24 float array) without validation.

        Internal fast path for builders that construct the vector
        themselves; callers must guarantee shape and non-negativity.
        """
        profile = cls.__new__(cls)
        profile._loads = loads
        return profile

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        ends: np.ndarray,
        ratings: np.ndarray,
    ) -> "LoadProfile":
        """Build a profile from parallel arrays of block bounds and ratings.

        The vectorized builder behind :meth:`from_schedule` and the
        settlement hot path: each block ``[starts[i], ends[i])`` contributes
        ``ratings[i]`` kW per covered hour.  Implemented as a difference
        array (+rating at start, -rating at end) followed by one cumulative
        sum, so cost is O(n + 24) with no per-household Python work.
        """
        delta = np.zeros(HOURS_PER_DAY + 1, dtype=float)
        np.add.at(delta, starts, ratings)
        np.add.at(delta, ends, -ratings)
        return cls._wrap(np.cumsum(delta[:HOURS_PER_DAY]))

    @classmethod
    def from_intervals(
        cls,
        intervals: Iterable[Tuple[Interval, float]],
    ) -> "LoadProfile":
        """Build a profile from ``(interval, rating_kw)`` pairs."""
        pairs = list(intervals)
        if not pairs:
            return cls()
        for _, rating in pairs:
            if rating < 0:
                raise ValueError("rating must be non-negative")
        starts = np.fromiter(
            (interval.start for interval, _ in pairs), dtype=np.intp, count=len(pairs)
        )
        ends = np.fromiter(
            (interval.end for interval, _ in pairs), dtype=np.intp, count=len(pairs)
        )
        ratings = np.fromiter(
            (rating for _, rating in pairs), dtype=float, count=len(pairs)
        )
        return cls.from_arrays(starts, ends, ratings)

    @classmethod
    def from_schedule(
        cls,
        schedule: Mapping[HouseholdId, Interval],
        types: Optional[Mapping[HouseholdId, HouseholdType]] = None,
    ) -> "LoadProfile":
        """Build a profile from a per-household schedule.

        When ``types`` is given, each household contributes its own rating;
        otherwise the default 2 kW rating applies.
        """
        n = len(schedule)
        if n == 0:
            return cls()
        starts = np.fromiter(
            (interval.start for interval in schedule.values()), dtype=np.intp, count=n
        )
        ends = np.fromiter(
            (interval.end for interval in schedule.values()), dtype=np.intp, count=n
        )
        if types is None:
            ratings = np.full(n, DEFAULT_RATING_KW)
        else:
            ratings = np.fromiter(
                (types[hid].rating_kw for hid in schedule), dtype=float, count=n
            )
        return cls.from_arrays(starts, ends, ratings)

    def add(self, interval: Interval, rating_kw: float) -> None:
        """Add ``rating_kw`` to every hour covered by ``interval`` (in place)."""
        if rating_kw < 0:
            raise ValueError("rating must be non-negative")
        self._loads[interval.start:interval.end] += rating_kw

    def remove(self, interval: Interval, rating_kw: float) -> None:
        """Remove a previously-added block (in place).

        Raises:
            ValueError: If removal would drive any hour negative.
        """
        segment = self._loads[interval.start:interval.end]
        if np.any(segment - rating_kw < -1e-9):
            raise ValueError(f"removing {rating_kw} kW over {interval} underflows the profile")
        segment -= rating_kw
        np.clip(segment, 0.0, None, out=segment)

    def copy(self) -> "LoadProfile":
        """An independent copy of this profile."""
        return LoadProfile(self._loads)

    def as_array(self) -> np.ndarray:
        """The 24 hourly loads as a fresh numpy array."""
        return self._loads.copy()

    def __getitem__(self, hour: int) -> float:
        return float(self._loads[hour])

    def __len__(self) -> int:
        return HOURS_PER_DAY

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoadProfile):
            return NotImplemented
        return bool(np.allclose(self._loads, other._loads))

    @property
    def peak_kw(self) -> float:
        """The maximum hourly load."""
        return float(self._loads.max())

    @property
    def total_energy_kwh(self) -> float:
        """Total energy over the day (1-hour slots, so kW sums to kWh)."""
        return float(self._loads.sum())

    @property
    def mean_kw(self) -> float:
        """Average load over all 24 hours."""
        return float(self._loads.mean())

    def peak_to_average_ratio(self, active_hours_only: bool = False) -> float:
        """Peak-to-average ratio (PAR), the Figure 4 metric.

        Args:
            active_hours_only: When True, the average is taken over hours
                with nonzero load instead of all 24 hours.

        Returns:
            ``peak / average``; 0.0 for an all-zero profile.
        """
        if self.total_energy_kwh == 0:
            return 0.0
        if active_hours_only:
            active = self._loads[self._loads > 0]
            return float(self._loads.max() / active.mean())
        return float(self._loads.max() / self._loads.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LoadProfile(peak={self.peak_kw:.1f} kW, energy={self.total_energy_kwh:.1f} kWh)"
