"""Two-step piecewise-linear convex pricing.

Section III notes that other convex forms, "e.g., a two-step piecewise
function, as suggested in [6]" (Mohsenian-Rad et al.), also satisfy the
model's assumptions.  We provide it as an alternative substrate and use it
in the pricing ablation to show the mechanism's behaviour does not hinge on
the quadratic form.
"""

from __future__ import annotations

import numpy as np

from .base import PricingModel


class TwoStepPricing(PricingModel):
    """Convex piecewise-linear price with a cheap base tier.

    Hourly cost is ``low_rate * l`` up to ``threshold_kw``; energy beyond the
    threshold is billed at ``high_rate``:

    ``P_h(l) = low_rate * min(l, T) + high_rate * max(l - T, 0)``

    Convexity requires ``high_rate >= low_rate``.  Note this price is convex
    but not *strictly* convex, so some peak-shifting moves are cost-neutral;
    the ablation benchmark quantifies the consequences.
    """

    def __init__(self, threshold_kw: float, low_rate: float, high_rate: float) -> None:
        if threshold_kw < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold_kw}")
        if low_rate < 0:
            raise ValueError(f"low rate must be non-negative, got {low_rate}")
        if high_rate < low_rate:
            raise ValueError(
                f"high rate {high_rate} below low rate {low_rate} breaks convexity"
            )
        self.threshold_kw = float(threshold_kw)
        self.low_rate = float(low_rate)
        self.high_rate = float(high_rate)

    def hourly_cost(self, load_kw: float) -> float:
        if load_kw < 0:
            raise ValueError(f"load cannot be negative, got {load_kw}")
        base = min(load_kw, self.threshold_kw)
        excess = max(load_kw - self.threshold_kw, 0.0)
        return self.low_rate * base + self.high_rate * excess

    def _hourly_cost_array(self, loads_kw: np.ndarray) -> np.ndarray:
        """:meth:`hourly_cost` elementwise, same expression order."""
        base = np.minimum(loads_kw, self.threshold_kw)
        excess = np.maximum(loads_kw - self.threshold_kw, 0.0)
        return self.low_rate * base + self.high_rate * excess

    def marginal_cost_batch(self, loads_kw: np.ndarray, added_kw: float) -> np.ndarray:
        """Batched marginal cost, bitwise equal to the scalar per-hour path."""
        arr = np.asarray(loads_kw, dtype=float)
        return self._hourly_cost_array(arr + added_kw) - self._hourly_cost_array(arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoStepPricing(threshold={self.threshold_kw} kW, "
            f"low={self.low_rate}, high={self.high_rate})"
        )
