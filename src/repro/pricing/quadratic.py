"""The paper's quadratic pricing function ``P_h(l_h) = sigma * l_h**2``."""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..core.intervals import Interval
from ..core.types import HouseholdId, HouseholdType
from .base import PricingModel
from .load_profile import LoadProfile

#: Scaling factor used throughout Section VI of the paper.
DEFAULT_SIGMA = 0.3


class QuadraticPricing(PricingModel):
    """Superlinear (quadratic) pricing, Eq. 1: ``kappa = sum_h sigma * l_h**2``.

    The superlinearity means total cost drops whenever load is shifted from
    a busier hour to a quieter one, which is what rewards peak reduction.

    Attributes:
        sigma: Positive scaling factor ``sigma`` (paper uses 0.3).
    """

    def __init__(self, sigma: float = DEFAULT_SIGMA) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def hourly_cost(self, load_kw: float) -> float:
        if load_kw < 0:
            raise ValueError(f"load cannot be negative, got {load_kw}")
        return self.sigma * load_kw * load_kw

    def cost(self, profile: LoadProfile) -> float:
        loads = profile.as_array()
        return float(self.sigma * np.dot(loads, loads))

    def cost_batch(self, loads: np.ndarray) -> np.ndarray:
        """Closed-form batched Eq. 1: ``sigma * sum_h l_h**2`` per row."""
        arr = np.asarray(loads, dtype=float)
        return self.sigma * np.einsum("...h,...h->...", arr, arr)

    def marginal_cost_batch(self, loads_kw: np.ndarray, added_kw: float) -> np.ndarray:
        """Batched marginal cost, same operation order as the scalar path.

        ``sigma * (l + r) * (l + r) - sigma * l * l`` elementwise — the
        literal expression :meth:`hourly_cost` evaluates twice, so each
        entry is bitwise equal to ``marginal_cost(l, r)``.
        """
        arr = np.asarray(loads_kw, dtype=float)
        bumped = arr + added_kw
        return self.sigma * bumped * bumped - self.sigma * arr * arr

    def marginal_block_cost(
        self, profile: LoadProfile, interval: Interval, rating_kw: float
    ) -> float:
        """Exact cost increase of adding a ``rating_kw`` block over ``interval``.

        For quadratic pricing the increment at hour ``h`` is
        ``sigma * (2 * l_h * r + r**2)``, which lets allocators evaluate
        candidate placements in O(v) without recomputing the full cost.
        """
        loads = profile.as_array()[interval.start:interval.end]
        return float(self.sigma * (2.0 * rating_kw * loads.sum()
                                   + rating_kw * rating_kw * interval.length))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuadraticPricing(sigma={self.sigma})"


def neighborhood_cost(
    schedule: Mapping[HouseholdId, Interval],
    types: Optional[Mapping[HouseholdId, HouseholdType]] = None,
    sigma: float = DEFAULT_SIGMA,
) -> float:
    """Convenience ``kappa(schedule)`` under quadratic pricing (Eq. 1)."""
    return QuadraticPricing(sigma).schedule_cost(schedule, types)
