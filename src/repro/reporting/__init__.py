"""Terminal reporting: plain-text charts for headless environments."""

from .ascii import bar_chart, load_profile_chart, series_table, sparkline

__all__ = ["bar_chart", "sparkline", "load_profile_chart", "series_table"]
