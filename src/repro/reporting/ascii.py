"""Terminal-friendly charts for examples and CLI output.

Nothing here imports matplotlib — the reproduction is headless by design.
The helpers render load profiles, time series and labeled bars as plain
text, used by the example scripts and the ``enki-repro`` CLI.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..pricing.load_profile import LoadProfile

#: Eighth-block characters for sparklines, thinnest to fullest.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labeled value.

    Args:
        labels: Row labels (rendered left-aligned).
        values: Non-negative values; bars scale to the maximum.
        width: Maximum bar width in characters.
        unit: Suffix printed after each value.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) must align"
        )
    if any(value < 0 for value in values):
        raise ValueError("bar chart values cannot be negative")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    peak = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}} {value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character series (min flat-lines to the base)."""
    if not values:
        return ""
    if any(value < 0 for value in values):
        raise ValueError("sparkline values cannot be negative")
    peak = max(values)
    if peak == 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for value in values:
        index = int(round(value / peak * (len(_SPARK_LEVELS) - 1)))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def load_profile_chart(
    profile: LoadProfile, width: int = 30, hour_range: Optional[range] = None
) -> str:
    """Hour-by-hour bars of a daily load profile."""
    hours = hour_range if hour_range is not None else range(24)
    labels = [f"{hour:02d}:00" for hour in hours]
    values = [profile[hour] for hour in hours]
    return bar_chart(labels, values, width=width, unit=" kW")


def series_table(
    header: str, rows: Iterable[Sequence[float]], labels: Sequence[str]
) -> str:
    """Sparkline-per-row comparison of several daily series.

    Args:
        header: Title line.
        rows: One numeric series per label.
        labels: Row labels.
    """
    materialized = [list(row) for row in rows]
    if len(materialized) != len(labels):
        raise ValueError("labels and rows must align")
    label_width = max((len(label) for label in labels), default=0)
    lines = [header]
    for label, row in zip(labels, materialized):
        peak = max(row) if row else 0.0
        lines.append(f"  {label:<{label_width}} {sparkline(row)}  peak {peak:g}")
    return "\n".join(lines)
