"""Fault tolerance for the mechanism pipeline.

Four layers, one per failure domain:

* :mod:`~repro.robustness.errors` — the :class:`ReproError` taxonomy with
  per-class CLI exit codes.
* :mod:`~repro.robustness.quarantine` — report validation/sanitization in
  front of the mechanism (``reject`` / ``clamp`` / ``exclude`` policies).
* :mod:`~repro.robustness.fallback` — allocator fallback chains with
  per-tier budgets and post-solve feasibility checks.
* :mod:`~repro.robustness.checkpoint` — crash-safe day-level JSONL
  checkpoints powering ``--resume``.
* :mod:`~repro.robustness.chaos` — seed-keyed fault injection so every
  degradation path above is exercised deterministically by tests.
"""

from .chaos import (
    ChaosInjector,
    ChaosPlan,
    ServiceChaosPlan,
    plan_faults,
    plan_service_faults,
)
from .checkpoint import CheckpointStore, day_key
from .errors import (
    CheckpointError,
    InfeasibleAllocationError,
    InvalidReportError,
    ReproError,
    ServiceInterrupted,
    ServiceOverloadError,
    SolverBudgetError,
    WorkerFailure,
    exit_code_for,
)
from .fallback import FallbackAllocator, TierRecord
from .quarantine import (
    Quarantine,
    QuarantineDecision,
    QuarantineResult,
    RawReport,
    clamp_raw_report,
    validate_raw_report,
)

__all__ = [
    "ChaosInjector",
    "ChaosPlan",
    "CheckpointError",
    "CheckpointStore",
    "FallbackAllocator",
    "InfeasibleAllocationError",
    "InvalidReportError",
    "Quarantine",
    "QuarantineDecision",
    "QuarantineResult",
    "RawReport",
    "ReproError",
    "ServiceChaosPlan",
    "ServiceInterrupted",
    "ServiceOverloadError",
    "SolverBudgetError",
    "TierRecord",
    "WorkerFailure",
    "clamp_raw_report",
    "day_key",
    "exit_code_for",
    "plan_faults",
    "plan_service_faults",
    "validate_raw_report",
]
