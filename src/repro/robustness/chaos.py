"""Deterministic chaos harness: seed-keyed fault injection for the stack.

Every degradation path in the pipeline — quarantined reports, fallback
tiers, worker retries, ``BrokenProcessPool`` recovery — should be
exercised by tests, not discovered in production.  This module injects
faults that are *pure functions of the master seed*: the set of faulty
days, the victims and the corruption shapes all derive from keyed RNG
substreams (:func:`repro.sim.rng.day_seed_sequence` style), so a chaos run
is exactly as reproducible as a clean run.

Crash faults are **transient** by construction: before dying, the injector
atomically creates a "fuse" marker file for the day, and a fired fuse
never crashes again.  A retried payload therefore completes cleanly — and
because each day is a pure function of ``(seed, day)``, its result is
bit-identical to what an uninjected run computes.  Malformed-report faults
are *persistent* (the corruption is part of the day's input), which is the
point: they must flow through the quarantine layer, not a retry.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

import numpy as np

from ..core.types import HouseholdId, Report
from .errors import WorkerFailure
from .quarantine import AnyReport, RawReport

#: Distinct spawn-key tags so each fault type draws an independent stream.
_CRASH_KEY = 0xC4A5
_SLOW_KEY = 0x510E
_MALFORMED_KEY = 0xBAD1

#: Service-level fault tags (per *shard*, not per day).
_SLOW_SHARD_KEY = 0x51AD
_KILL_SHARD_KEY = 0xD1ED
_FLOOD_KEY = 0xF100

#: The corruption shapes ``corrupt_reports`` rotates through.
CORRUPTIONS = ("inverted-window", "nan-bound", "stretched-duration", "out-of-grid")


def _fault_rng(root: int, day: int, tag: int) -> np.random.Generator:
    """An independent generator keyed by (root, day, fault tag)."""
    return np.random.default_rng(np.random.SeedSequence(root, spawn_key=(tag, day)))


@lru_cache(maxsize=64)
def _flood_shapes(root: int, index: int, n: int, fraction: float) -> np.ndarray:
    """Per-row corruption shape codes for one flood shard (``-1`` = clean).

    The single source of flood randomness: one draw sequence keyed by
    ``(root, index)`` decides victims and shapes for the whole shard, so
    mass corruption applied to whole wire arrays
    (:meth:`ChaosInjector.corrupt_shard_reports`) and to interleaved
    stream chunks (:meth:`ChaosInjector.corrupt_stream_rows`) rewrites
    exactly the same rows the same way — streamed and batch chaos runs
    stay digest-identical.  Draw order is pinned: the skip of the
    planning draw, then one uniform per row, then one shape per victim.
    """
    rng = _fault_rng(root, index, _FLOOD_KEY)
    rng.random()  # skip the draw plan_service_faults consumed
    victims = np.flatnonzero(rng.random(n) < fraction)
    shapes = rng.integers(len(CORRUPTIONS), size=victims.shape[0])
    codes = np.full(n, -1, dtype=np.int64)
    codes[victims] = shapes
    codes.setflags(write=False)
    return codes


def _apply_corruption_shapes(
    codes: np.ndarray,
    begin: np.ndarray,
    end: np.ndarray,
    duration: np.ndarray,
) -> None:
    """Rewrite rows in place according to their :data:`CORRUPTIONS` codes."""
    for shape_index, shape in enumerate(CORRUPTIONS):
        rows = np.flatnonzero(codes == shape_index)
        if rows.size == 0:
            continue
        if shape == "inverted-window":
            begin[rows], end[rows] = end[rows], begin[rows] - 1
        elif shape == "nan-bound":
            begin[rows] = float("nan")
        elif shape == "stretched-duration":
            duration[rows] = duration[rows] + 25
        else:  # out-of-grid
            begin[rows] = begin[rows] - 40
            end[rows] = end[rows] + 40


@dataclass(frozen=True)
class ChaosPlan:
    """Which days fail, and how — a pure function of (root, rates).

    Built by :func:`plan_faults`; picklable, so it travels into workers.
    """

    root: int
    crash_days: FrozenSet[int] = frozenset()
    slow_days: FrozenSet[int] = frozenset()
    malformed_days: FrozenSet[int] = frozenset()

    @property
    def affected_days(self) -> FrozenSet[int]:
        """Days whose *inputs* differ from a clean run (crashes do not)."""
        return self.malformed_days


def plan_faults(
    root: int,
    days: int,
    crash_rate: float = 0.0,
    slow_rate: float = 0.0,
    malformed_rate: float = 0.0,
) -> ChaosPlan:
    """Draw the seed-keyed fault plan for a run of ``days`` days."""
    for name, rate in (
        ("crash_rate", crash_rate),
        ("slow_rate", slow_rate),
        ("malformed_rate", malformed_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
    crash = frozenset(
        day
        for day in range(days)
        if crash_rate > 0.0 and _fault_rng(root, day, _CRASH_KEY).random() < crash_rate
    )
    slow = frozenset(
        day
        for day in range(days)
        if slow_rate > 0.0 and _fault_rng(root, day, _SLOW_KEY).random() < slow_rate
    )
    malformed = frozenset(
        day
        for day in range(days)
        if malformed_rate > 0.0
        and _fault_rng(root, day, _MALFORMED_KEY).random() < malformed_rate
    )
    return ChaosPlan(
        root=root, crash_days=crash, slow_days=slow, malformed_days=malformed
    )


@dataclass(frozen=True)
class ServiceChaosPlan:
    """Which *shards* of a service run fail, and how.

    The service-layer twin of :class:`ChaosPlan`: a pure function of
    ``(root, rates)`` over shard indices instead of day indices.  Built by
    :func:`plan_service_faults`; picklable, so it travels into workers.

    ``kill_after`` arms the supervisor-kill fuse: once that many shards
    have settled, the service is interrupted exactly once (exercising
    journal resume).  ``None`` disarms it.
    """

    root: int
    slow_shards: FrozenSet[int] = frozenset()
    kill_shards: FrozenSet[int] = frozenset()
    flood_shards: FrozenSet[int] = frozenset()
    kill_after: Optional[int] = None


def plan_service_faults(
    root: int,
    shards: int,
    slow_rate: float = 0.0,
    kill_rate: float = 0.0,
    flood_rate: float = 0.0,
    kill_after: Optional[int] = None,
) -> ServiceChaosPlan:
    """Draw the seed-keyed fault plan for a service run of ``shards`` shards.

    ``slow_rate`` marks shards whose worker stalls (exercising the
    per-shard deadline), ``kill_rate`` shards whose worker SIGKILLs itself
    (exercising pool replacement), ``flood_rate`` shards whose report
    stream arrives mass-corrupted (exercising the quarantine at flood
    scale).  Each fault draws from its own keyed substream, so plans are
    exactly as reproducible as a clean run.
    """
    for name, rate in (
        ("slow_rate", slow_rate),
        ("kill_rate", kill_rate),
        ("flood_rate", flood_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
    slow = frozenset(
        index
        for index in range(shards)
        if slow_rate > 0.0
        and _fault_rng(root, index, _SLOW_SHARD_KEY).random() < slow_rate
    )
    kill = frozenset(
        index
        for index in range(shards)
        if kill_rate > 0.0
        and _fault_rng(root, index, _KILL_SHARD_KEY).random() < kill_rate
    )
    flood = frozenset(
        index
        for index in range(shards)
        if flood_rate > 0.0
        and _fault_rng(root, index, _FLOOD_KEY).random() < flood_rate
    )
    return ServiceChaosPlan(
        root=root,
        slow_shards=slow,
        kill_shards=kill,
        flood_shards=flood,
        kill_after=kill_after,
    )


@dataclass(frozen=True)
class ChaosInjector:
    """Executes a :class:`ChaosPlan` inside day workers.

    Args:
        plan: The seed-keyed fault plan.
        fault_dir: Directory for the crash fuse markers; must be shared by
            every worker process (it is — workers inherit the path).
        kill: When true, a crash fault hard-kills the worker process with
            ``SIGKILL`` (exercising ``BrokenProcessPool`` recovery); when
            false it raises :class:`WorkerFailure` (exercising the retry
            path).  Only use ``kill=True`` with ``workers > 1`` — in
            serial mode it would take down the driver itself.
        slow_s: How long a slow-task fault sleeps.
        service_plan: Optional shard-level fault plan for the service
            layer (:func:`plan_service_faults`); without one, every
            service hook is a no-op.
    """

    plan: ChaosPlan
    fault_dir: str
    kill: bool = False
    slow_s: float = 0.2
    service_plan: Optional[ServiceChaosPlan] = None

    def before_day(self, day: int) -> None:
        """Fire this day's crash/slow faults, if any (called by workers)."""
        if day in self.plan.slow_days:
            time.sleep(self.slow_s)
        if day in self.plan.crash_days and self._blow_fuse(day):
            if self.kill:  # pragma: no cover - dies before coverage flushes
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerFailure(index=day, attempt=1, cause="chaos-injected crash")

    def _blow_fuse(self, day: int) -> bool:
        """Atomically consume the day's one-shot crash fuse."""
        return self._fire(f"crash-day-{day}.fired")

    def _fire(self, marker_name: str) -> bool:
        """Atomically consume a named one-shot fuse (shared fault_dir)."""
        os.makedirs(self.fault_dir, exist_ok=True)
        marker = os.path.join(self.fault_dir, marker_name)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    # ----------------------------------------------------- service layer

    def before_shard(self, index: int) -> None:
        """Fire shard-level faults inside a service worker.

        *Slow shards* stall on **every** attempt — unlike day crashes
        there is no fuse, so with a per-shard deadline below ``slow_s``
        the shard exhausts its retries and must settle on a degraded tier
        (the point: a sick shard is served, never dropped).  *Kill shards*
        are transient, fused like day crashes: the first attempt dies
        (``SIGKILL`` when ``kill`` is set, :class:`WorkerFailure`
        otherwise) and the retry completes bit-identically.
        """
        plan = self.service_plan
        if plan is None:
            return
        if index in plan.slow_shards:
            time.sleep(self.slow_s)
        if index in plan.kill_shards and self._fire(f"kill-shard-{index}.fired"):
            if self.kill:  # pragma: no cover - dies before coverage flushes
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerFailure(
                index=index, attempt=1, cause="chaos-injected shard kill"
            )

    def corrupt_shard_reports(
        self,
        index: int,
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        fraction: float = 0.3,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mass-corrupt a flood shard's report arrays (malformed flood).

        On shards in the plan's ``flood_shards``, a deterministic
        ``fraction`` of rows is rewritten with the :data:`CORRUPTIONS`
        shapes (vectorized); other shards pass through untouched.  Flood
        corruption is persistent — it is part of the shard's input and
        must flow through the columnar quarantine, not a retry.
        """
        plan = self.service_plan
        if plan is None or index not in plan.flood_shards or begin.shape[0] == 0:
            return begin, end, duration
        begin = np.array(begin, dtype=float)
        end = np.array(end, dtype=float)
        duration = np.array(duration, dtype=float)
        codes = _flood_shapes(plan.root, index, begin.shape[0], fraction)
        _apply_corruption_shapes(codes, begin, end, duration)
        return begin, end, duration

    def corrupt_stream_rows(
        self,
        index: int,
        size: int,
        rows: np.ndarray,
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        fraction: float = 0.3,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Corrupt a flood shard's rows *mid-stream*, chunk by chunk.

        ``rows`` are the chunk's global row indices within a shard of
        ``size`` households; ``begin``/``end``/``duration`` are the
        chunk-local wire values for exactly those rows.  Victims and
        shapes come from the same per-shard draw
        (:func:`_flood_shapes`) that :meth:`corrupt_shard_reports` uses,
        so a report is corrupted identically whether its shard floods in
        one whole-array pass or spread across interleaved micro-batches —
        the streamed chaos run settles digest-identical to the batch one.
        """
        plan = self.service_plan
        if plan is None or index not in plan.flood_shards or rows.shape[0] == 0:
            return begin, end, duration
        begin = np.array(begin, dtype=float)
        end = np.array(end, dtype=float)
        duration = np.array(duration, dtype=float)
        codes = _flood_shapes(plan.root, index, size, fraction)[rows]
        _apply_corruption_shapes(codes, begin, end, duration)
        return begin, end, duration

    def supervisor_kill_due(self, settled: int) -> bool:
        """One-shot supervisor-kill fuse: trip once ``settled`` shards done.

        The service checks this after journaling each settlement; the
        single ``True`` (guarded by a fuse marker, so resumes never
        re-trip) tells it to die with its journal intact — the resume
        half of the chaos acceptance gate.
        """
        plan = self.service_plan
        if plan is None or plan.kill_after is None or settled < plan.kill_after:
            return False
        return self._fire("supervisor-kill.fired")

    def corrupt_reports(
        self, day: int, reports: Mapping[HouseholdId, Report]
    ) -> Dict[HouseholdId, AnyReport]:
        """Deterministically corrupt one household's report on a faulty day.

        Non-faulty days pass through untouched.  The victim and corruption
        shape derive from the (root, day) substream, so the same seed
        always corrupts the same report the same way.
        """
        if day not in self.plan.malformed_days or not reports:
            return dict(reports)
        rng = _fault_rng(self.plan.root, day, _MALFORMED_KEY)
        rng.random()  # skip the draw plan_faults consumed for this day
        ids = sorted(reports)
        victim = ids[int(rng.integers(len(ids)))]
        shape = CORRUPTIONS[int(rng.integers(len(CORRUPTIONS)))]
        report = reports[victim]
        window = report.preference.window
        duration = report.preference.duration
        if shape == "inverted-window":
            raw = RawReport(victim, window.end, window.start - 1, duration)
        elif shape == "nan-bound":
            raw = RawReport(victim, float("nan"), window.end, duration)
        elif shape == "stretched-duration":
            raw = RawReport(victim, window.start, window.end, duration + 25)
        else:  # out-of-grid
            raw = RawReport(victim, window.start - 40, window.end + 40, duration)
        corrupted: Dict[HouseholdId, AnyReport] = dict(reports)
        corrupted[victim] = raw
        return corrupted


@dataclass
class _NullInjector:
    """Stand-in when chaos is off: every hook is a no-op."""

    plan: ChaosPlan = field(default_factory=lambda: ChaosPlan(root=0))

    def before_day(self, day: int) -> None:
        pass

    def corrupt_reports(
        self, day: int, reports: Mapping[HouseholdId, Report]
    ) -> Dict[HouseholdId, AnyReport]:
        return dict(reports)

    def before_shard(self, index: int) -> None:
        pass

    def corrupt_shard_reports(
        self,
        index: int,
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        fraction: float = 0.3,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return begin, end, duration

    def corrupt_stream_rows(
        self,
        index: int,
        size: int,
        rows: np.ndarray,
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        fraction: float = 0.3,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return begin, end, duration

    def supervisor_kill_due(self, settled: int) -> bool:
        return False
