"""Day-level checkpointing for multi-day studies (JSONL, crash-safe).

A 10k-day study killed at day 7 000 should not recompute days 0–6 999.
Because every simulated day is a pure function of ``(seed, day)`` (see
:mod:`repro.sim.rng`), a day's result can be persisted as it completes and
replayed verbatim on resume — the merged output is identical to an
uninterrupted run at the same seed.

The store is an append-only JSONL file: one ``{"key": ..., "payload": ...}``
line per completed unit of work, written as a single ``write()`` call and
flushed to disk, so a kill can at worst truncate the final line.  Loading
tolerates (and drops) such a truncated tail; everything before it is
intact.  Keys are free-form strings (``"day-3"``, ``"n20-day7"``) so one
store can checkpoint a population sweep as well as a flat day loop.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from .errors import CheckpointError

#: Format version embedded in every checkpoint line.
CHECKPOINT_SCHEMA_VERSION = 1


def day_key(day: int, prefix: str = "") -> str:
    """Canonical checkpoint key for one simulated day."""
    return f"{prefix}day-{day}" if prefix else f"day-{day}"


class CheckpointStore:
    """Append-only JSONL store of completed work units.

    Args:
        path: Checkpoint file; created on first append.
        fresh: When true, any existing file is discarded at construction
            (a non-resume run must not silently splice in stale results).
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = path
        if fresh and os.path.exists(path):
            os.remove(path)
        self._completed: Optional[Dict[str, Dict[str, Any]]] = None

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """All persisted payloads by key (cached after the first read)."""
        if self._completed is None:
            self._completed = self._load()
        return self._completed

    def _load(self) -> Dict[str, Dict[str, Any]]:
        records: Dict[str, Dict[str, Any]] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return records
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A kill mid-write truncates at most the final line;
                    # drop it and let the resume recompute that unit.
                    continue
                if not isinstance(record, dict) or "key" not in record:
                    raise CheckpointError(
                        f"malformed checkpoint record in {self.path!r}: {line[:80]}"
                    )
                records[str(record["key"])] = record.get("payload", {})
        return records

    def append(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist one completed unit; durable once this returns."""
        record = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        if self._completed is not None:
            self._completed[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self.completed()

    def __len__(self) -> int:
        return len(self.completed())
