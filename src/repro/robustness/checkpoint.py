"""Day-level checkpointing for multi-day studies (JSONL, crash-safe).

A 10k-day study killed at day 7 000 should not recompute days 0–6 999.
Because every simulated day is a pure function of ``(seed, day)`` (see
:mod:`repro.sim.rng`), a day's result can be persisted as it completes and
replayed verbatim on resume — the merged output is identical to an
uninterrupted run at the same seed.

The store is an append-only JSONL file: one ``{"key": ..., "payload": ...}``
line per completed unit of work, written as a single ``O_APPEND`` write and
fsync'd, so a kill can at worst truncate the final line.  Loading tolerates
such a torn tail — the partial line is dropped *and truncated from the
file*, so the next append starts on a clean line boundary instead of
concatenating onto the garbage.  A bad line with intact records *after* it
cannot come from a kill mid-append and is treated as real corruption
(:class:`~repro.robustness.errors.CheckpointError`) rather than silently
skipped.  Keys are free-form strings (``"day-3"``, ``"n20-day7"``) so one
store can checkpoint a population sweep as well as a flat day loop.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any, Dict, Optional

from .errors import CheckpointError

_logger = logging.getLogger(__name__)

#: Format version embedded in every checkpoint line.
CHECKPOINT_SCHEMA_VERSION = 1


def day_key(day: int, prefix: str = "") -> str:
    """Canonical checkpoint key for one simulated day."""
    return f"{prefix}day-{day}" if prefix else f"day-{day}"


class CheckpointStore:
    """Append-only JSONL store of completed work units.

    Args:
        path: Checkpoint file; created on first append.
        fresh: When true, any existing file is discarded at construction
            (a non-resume run must not silently splice in stale results).
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = path
        if fresh and os.path.exists(path):
            os.remove(path)
        self._completed: Optional[Dict[str, Dict[str, Any]]] = None

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """All persisted payloads by key (cached after the first read)."""
        if self._completed is None:
            self._completed = self._load()
        return self._completed

    def _load(self) -> Dict[str, Dict[str, Any]]:
        records: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return records
        offset = 0  # byte offset of the line being parsed
        truncate_at: Optional[int] = None
        for chunk in blob.split(b"\n"):
            line_start, offset = offset, offset + len(chunk) + 1
            is_tail = offset > len(blob)  # last chunk: no newline followed
            line = chunk.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                torn = is_tail  # complete writes always end in a newline
            except ValueError:
                record, torn = None, True
            if torn:
                if is_tail:
                    # A kill mid-append truncates at most the final line;
                    # drop it (the resume recomputes that unit) and trim
                    # the file so the next append starts a clean line.
                    truncate_at = line_start
                    break
                raise CheckpointError(
                    f"corrupt checkpoint line mid-file in {self.path!r} "
                    f"(not a torn tail): {line[:80]}"
                )
            if not isinstance(record, dict) or "key" not in record:
                raise CheckpointError(
                    f"malformed checkpoint record in {self.path!r}: {line[:80]}"
                )
            records[str(record["key"])] = record.get("payload", {})
        if truncate_at is not None:
            self._truncate(truncate_at)
        return records

    def _truncate(self, size: int) -> None:
        """Trim a torn trailing line off the file (best effort)."""
        try:
            with open(self.path, "rb+") as handle:
                handle.truncate(size)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - read-only media etc.
            _logger.warning(
                "could not truncate torn checkpoint tail in %r", self.path
            )
        else:
            _logger.warning(
                "dropped a torn trailing checkpoint line in %r "
                "(kill mid-append); that unit will be recomputed",
                self.path,
            )

    def append(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist one completed unit; durable once this returns.

        The record travels as one ``O_APPEND`` write — atomic with respect
        to concurrent appenders and kills — followed by an fsync, so a
        crash can at worst leave a torn final line (which :meth:`_load`
        drops and truncates).
        """
        record = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        if self._completed is not None:
            self._completed[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self.completed()

    def __len__(self) -> int:
        return len(self.completed())
