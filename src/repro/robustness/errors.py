"""Error taxonomy for the fault-tolerant mechanism pipeline.

A production center distinguishes *whose* fault a failure is before it
decides how to degrade: a malformed report is the participant's problem
(quarantine it), an infeasible schedule or exhausted solve budget is the
solver's (fall back a tier), and a crashed or hung worker is the runtime's
(retry the payload).  Every failure mode the pipeline handles has one
exception class here, each carrying a distinct process exit code so shell
drivers can branch on *why* a run died without parsing tracebacks.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base of every recoverable failure in the mechanism pipeline.

    Attributes:
        exit_code: Process exit status the CLI maps this failure to.
    """

    exit_code: int = 10


class InvalidReportError(ReproError):
    """A preference report failed validation at the trust boundary.

    Args:
        household_id: The reporting household.
        reason: Machine-readable reason slug (e.g. ``"inverted-window"``).
        detail: Human-readable one-liner for logs and CLI messages.
    """

    exit_code = 11

    def __init__(self, household_id: str, reason: str, detail: str = "") -> None:
        self.household_id = household_id
        self.reason = reason
        self.detail = detail
        message = f"invalid report from {household_id!r}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class InfeasibleAllocationError(ReproError):
    """A solver returned a schedule violating its own problem constraints."""

    exit_code = 12

    def __init__(self, allocator_name: str, detail: str = "") -> None:
        self.allocator_name = allocator_name
        self.detail = detail
        message = f"allocator {allocator_name!r} returned an infeasible allocation"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class SolverBudgetError(ReproError):
    """No allocator tier produced a usable schedule within its budget."""

    exit_code = 13

    def __init__(self, detail: str = "") -> None:
        self.detail = detail
        super().__init__(detail or "solver budget exhausted with no usable allocation")


class WorkerFailure(ReproError):
    """A parallel worker crashed, hung, or raised while running a payload.

    Args:
        index: Index of the failed payload in the task list.
        attempt: 1-based attempt number that failed.
        cause: Short description of the underlying failure.
    """

    exit_code = 14

    def __init__(self, index: int, attempt: int = 1, cause: str = "crashed") -> None:
        self.index = index
        self.attempt = attempt
        self.cause = cause
        super().__init__(f"worker failed on payload {index} (attempt {attempt}): {cause}")


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or inconsistent with the run."""

    exit_code = 15


class ServiceOverloadError(ReproError):
    """The shard service's ingestion queue hit its high watermark.

    Backpressure, not failure: the submission was *not* accepted and can
    be retried after ``retry_after_s`` — by then the service expects to
    have drained back below its low watermark.

    Args:
        retry_after_s: Suggested client wait before resubmitting.
        depth: Queue depth at the moment of rejection.
        capacity: The queue's high watermark.
    """

    exit_code = 16

    def __init__(
        self, retry_after_s: float, depth: int = 0, capacity: int = 0
    ) -> None:
        self.retry_after_s = float(retry_after_s)
        self.depth = depth
        self.capacity = capacity
        super().__init__(
            f"ingestion queue saturated ({depth}/{capacity}); "
            f"retry after {self.retry_after_s:.2f}s"
        )


class ServiceInterrupted(ReproError):
    """The shard service was stopped with shards still unsettled.

    Every settled shard is already journaled; re-running against the same
    journal with ``resume=True`` replays them byte-identically and
    settles only the remainder.

    Args:
        settled: Shards journaled before the interruption.
        pending: Shards still owed a settlement.
    """

    exit_code = 17

    def __init__(self, settled: int, pending: int, cause: str = "interrupted") -> None:
        self.settled = settled
        self.pending = pending
        self.cause = cause
        super().__init__(
            f"service {cause} with {pending} shard(s) unsettled "
            f"({settled} journaled; resume to finish)"
        )


def exit_code_for(error: BaseException) -> Optional[int]:
    """The CLI exit code for ``error``, or ``None`` for non-repro errors."""
    if isinstance(error, ReproError):
        return error.exit_code
    return None
