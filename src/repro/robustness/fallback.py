"""Solver guardrails: a fallback chain wrapping any sequence of allocators.

The exact branch-and-bound solver is the best allocator when it finishes,
but at fig6 scale it can exhaust its budget, raise out of a cornered
search, or (for a hypothetical buggy solver) return a schedule violating
its own constraints.  :class:`FallbackAllocator` makes any allocator chain
safe to run unattended: each tier gets a wall-clock budget, every returned
schedule is re-validated against the problem, and a tier that raises,
returns an infeasible allocation, or blows its budget hands the day to the
next tier (typically B&B → greedy → random).  The served result records
which tier produced it and the full trail of tier attempts, so studies can
report how often each guardrail fired.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..allocation.base import (
    AllocationProblem,
    AllocationResult,
    Allocator,
    ColumnarAllocationResult,
)
from .errors import SolverBudgetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..allocation.arrays import CompiledProblem
    from ..pricing.base import PricingModel


@dataclass(frozen=True)
class TierRecord:
    """One tier's attempt at a solve: who ran, what happened, how long."""

    tier: int
    allocator: str
    status: str  # "served" | "error" | "infeasible" | "served-over-budget"
    wall_time_s: float
    detail: str = ""

    def as_payload(self) -> Dict[str, Any]:
        """JSON-safe dict for the audit log."""
        return {
            "tier": self.tier,
            "allocator": self.allocator,
            "status": self.status,
            "wall_time_s": self.wall_time_s,
            "detail": self.detail,
        }


class FallbackAllocator(Allocator):
    """Run a chain of allocators, degrading one tier at a time.

    Args:
        tiers: Allocators in preference order; the first usable result
            wins.  Tier 0 is the "primary" — a day served by any later
            tier counts as degraded.
        tier_budget_s: Per-solve wall-clock budget.  Tiers exposing a
            ``time_limit_s`` knob (the anytime B&B) have it clamped to
            this budget at construction, so they cut themselves off; tiers
            without one cannot be preempted mid-solve, so for them the
            budget is checked after the fact and a completed-but-late
            result is still served (recorded as ``served-over-budget``).

    Raises:
        SolverBudgetError: From :meth:`solve` when every tier fails.
    """

    name = "fallback"

    def __init__(
        self,
        tiers: Sequence[Allocator],
        tier_budget_s: Optional[float] = None,
    ) -> None:
        if not tiers:
            raise ValueError("fallback chain needs at least one allocator")
        if tier_budget_s is not None and tier_budget_s <= 0:
            raise ValueError(f"tier budget must be positive, got {tier_budget_s}")
        self.tiers = list(tiers)
        self.tier_budget_s = tier_budget_s
        if tier_budget_s is not None:
            for allocator in self.tiers:
                limit = getattr(allocator, "time_limit_s", None)
                if hasattr(allocator, "time_limit_s") and (
                    limit is None or limit > tier_budget_s
                ):
                    allocator.time_limit_s = tier_budget_s

    @staticmethod
    def default_chain(
        tier_budget_s: float = 10.0, seed: Optional[int] = None
    ) -> "FallbackAllocator":
        """The standard production chain: B&B → greedy → random."""
        from ..allocation.greedy import GreedyFlexibilityAllocator
        from ..allocation.optimal import BranchAndBoundAllocator
        from ..allocation.random_alloc import RandomAllocator

        return FallbackAllocator(
            tiers=[
                BranchAndBoundAllocator(time_limit_s=tier_budget_s, seed=seed),
                GreedyFlexibilityAllocator(seed=seed),
                RandomAllocator(seed=seed),
            ],
            tier_budget_s=tier_budget_s,
        )

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        rng = rng if rng is not None else random.Random()
        trail: Tuple[TierRecord, ...] = ()
        for tier, allocator in enumerate(self.tiers):
            started_at = time.perf_counter()
            try:
                result = allocator.solve(problem, rng)
            except Exception as exc:  # any tier failure degrades, never aborts
                trail += (
                    TierRecord(
                        tier=tier,
                        allocator=allocator.name,
                        status="error",
                        wall_time_s=time.perf_counter() - started_at,
                        detail=f"{type(exc).__name__}: {exc}",
                    ),
                )
                continue
            wall = time.perf_counter() - started_at
            # Post-solve check: never trust a schedule, even from our own
            # solvers — an infeasible s_i would corrupt every settlement
            # equation downstream.
            if not problem.is_feasible(result.allocation):
                trail += (
                    TierRecord(
                        tier=tier,
                        allocator=allocator.name,
                        status="infeasible",
                        wall_time_s=wall,
                        detail="allocation violates window/duration constraints",
                    ),
                )
                continue
            status = "served"
            if self.tier_budget_s is not None and wall > self.tier_budget_s:
                status = "served-over-budget"
            result.served_tier = tier
            result.fallback_trail = trail + (
                TierRecord(
                    tier=tier,
                    allocator=allocator.name,
                    status=status,
                    wall_time_s=wall,
                ),
            )
            return result
        raise SolverBudgetError(
            f"all {len(self.tiers)} allocator tiers failed: "
            + "; ".join(f"{r.allocator}={r.status}" for r in trail)
        )

    def solve_columnar(
        self,
        compiled: "CompiledProblem",
        pricing: "PricingModel",
        rng: Optional[random.Random] = None,
    ) -> ColumnarAllocationResult:
        """The chain's columnar kernel: degrade tier by tier, array-native.

        Each tier's own ``solve_columnar`` runs directly (the greedy tier
        stays vectorized at city scale instead of bridging through a
        million objects), with the same guardrails as :meth:`solve`: a
        tier that raises or returns starts violating the compiled windows
        hands the shard to the next tier, and the served result carries
        ``served_tier`` and the full trail.
        """
        rng = rng if rng is not None else random.Random()
        trail: Tuple[TierRecord, ...] = ()
        for tier, allocator in enumerate(self.tiers):
            started_at = time.perf_counter()
            try:
                result = allocator.solve_columnar(compiled, pricing, rng)
            except Exception as exc:  # any tier failure degrades, never aborts
                trail += (
                    TierRecord(
                        tier=tier,
                        allocator=allocator.name,
                        status="error",
                        wall_time_s=time.perf_counter() - started_at,
                        detail=f"{type(exc).__name__}: {exc}",
                    ),
                )
                continue
            wall = time.perf_counter() - started_at
            starts = result.starts
            bad = (starts < compiled.win_start) | (
                starts + compiled.duration > compiled.win_end
            )
            if bool(np.any(bad)):
                trail += (
                    TierRecord(
                        tier=tier,
                        allocator=allocator.name,
                        status="infeasible",
                        wall_time_s=wall,
                        detail="allocation violates window/duration constraints",
                    ),
                )
                continue
            status = "served"
            if self.tier_budget_s is not None and wall > self.tier_budget_s:
                status = "served-over-budget"
            result.served_tier = tier
            result.fallback_trail = trail + (
                TierRecord(
                    tier=tier,
                    allocator=allocator.name,
                    status=status,
                    wall_time_s=wall,
                ),
            )
            return result
        raise SolverBudgetError(
            f"all {len(self.tiers)} allocator tiers failed on the columnar "
            "path: " + "; ".join(f"{r.allocator}={r.status}" for r in trail)
        )
