"""Report validation and quarantine: the mechanism's trust boundary.

Reports arrive from participants over the wire, so the center cannot
assume they are well-formed: windows come inverted or off the 24-hour
grid, durations disagree with the household's metered appliance, bounds
arrive as NaN.  The domain types (:class:`repro.core.types.Preference`)
refuse to even construct such values, which protects the math but — used
directly — turns one bad participant into an exception that kills the
whole neighborhood day.

This module screens reports *before* they reach the mechanism, under one
of three policies:

* ``reject`` — raise :class:`~repro.robustness.errors.InvalidReportError`
  on the first malformed report (strict mode: bad input is an operator
  problem).
* ``clamp`` — deterministically repair the report onto the grid (swap
  inverted bounds, clip to ``[0, 24]``, restore the metered duration,
  widen a too-short window) and schedule the repaired version.
* ``exclude`` — drop the offending household for the day and run the
  mechanism over the survivors; Theorem 1's budget balance holds over any
  subset because Eq. 7 splits the realized cost of exactly the households
  being settled.

Every non-trivial decision is recorded as a structured
:class:`QuarantineDecision` suitable for the audit log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.columnar import ColumnarDayBatch, ColumnarNeighborhood, ColumnarReports
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import HouseholdId, HouseholdType, Neighborhood, Preference, Report
from .errors import InvalidReportError

#: The supported quarantine policies.
POLICIES: Tuple[str, ...] = ("reject", "clamp", "exclude")


@dataclass(frozen=True)
class RawReport:
    """An unvalidated report as it arrives from the wire.

    Unlike :class:`~repro.core.types.Report`, nothing is checked at
    construction: bounds may be floats, NaN, inverted or off-grid.  The
    quarantine layer is the only component that should touch these.
    """

    household_id: HouseholdId
    begin: Any
    end: Any
    duration: Any

    @staticmethod
    def from_report(report: Report) -> "RawReport":
        """Wrap an already-typed report (always structurally valid)."""
        return RawReport(
            household_id=report.household_id,
            begin=report.preference.window.start,
            end=report.preference.window.end,
            duration=report.preference.duration,
        )

    def as_payload(self) -> Dict[str, Any]:
        """JSON-safe view for audit records (NaN rendered as a string)."""

        def _safe(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return repr(value)
            if isinstance(value, float) and not math.isfinite(value):
                return repr(value)
            return value

        return {
            "household_id": self.household_id,
            "begin": _safe(self.begin),
            "end": _safe(self.end),
            "duration": _safe(self.duration),
        }


#: Anything the quarantine accepts as one household's submission.
AnyReport = Union[Report, RawReport]


def _as_grid_int(value: Any) -> Optional[int]:
    """``value`` as an exact integer, or ``None`` when it is not one."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value) or value != int(value):
            return None
        return int(value)
    return None


def validate_raw_report(raw: RawReport, household: HouseholdType) -> Report:
    """Check one raw report against the grid and the household's type.

    Returns:
        The typed, validated :class:`Report`.

    Raises:
        InvalidReportError: With a machine-readable ``reason`` slug when
            any constraint fails.
    """
    hid = raw.household_id
    if hid != household.household_id:
        raise InvalidReportError(hid, "unknown-household", "no such household")
    begin = _as_grid_int(raw.begin)
    end = _as_grid_int(raw.end)
    if begin is None or end is None:
        raise InvalidReportError(
            hid, "non-integer-bound", f"bounds ({raw.begin!r}, {raw.end!r})"
        )
    duration = _as_grid_int(raw.duration)
    if duration is None or duration < 1:
        raise InvalidReportError(hid, "bad-duration", f"duration {raw.duration!r}")
    if duration != household.duration:
        raise InvalidReportError(
            hid,
            "duration-mismatch",
            f"reported {duration}h, metered duration is {household.duration}h",
        )
    if end < begin:
        raise InvalidReportError(hid, "inverted-window", f"[{begin}, {end})")
    if begin < 0 or end > HOURS_PER_DAY:
        raise InvalidReportError(
            hid, "out-of-grid", f"[{begin}, {end}) outside [0, {HOURS_PER_DAY}]"
        )
    if end - begin < duration:
        raise InvalidReportError(
            hid,
            "window-too-short",
            f"window [{begin}, {end}) cannot fit duration {duration}h",
        )
    return Report(hid, Preference(Interval(begin, end), duration))


def clamp_raw_report(raw: RawReport, household: HouseholdType) -> Report:
    """Deterministically repair a raw report onto the grid.

    The repaired report always has the household's metered duration.
    Non-numeric or NaN bounds are beyond repair, so they fall back to the
    household's true window (the center's best stand-in for intent).
    """
    duration = household.duration
    begin = _as_grid_int(raw.begin)
    end = _as_grid_int(raw.end)
    if begin is None and isinstance(raw.begin, float) and math.isfinite(raw.begin):
        begin = int(round(raw.begin))
    if end is None and isinstance(raw.end, float) and math.isfinite(raw.end):
        end = int(round(raw.end))
    if begin is None or end is None:
        window = household.true_preference.window
        return Report(raw.household_id, Preference(window, duration))
    if end < begin:
        begin, end = end, begin
    begin = min(max(begin, 0), HOURS_PER_DAY)
    end = min(max(end, 0), HOURS_PER_DAY)
    if end - begin < duration:
        end = min(begin + duration, HOURS_PER_DAY)
        begin = end - duration
    return Report(raw.household_id, Preference(Interval(begin, end), duration))


def malformed_mask(
    begin: np.ndarray,
    end: np.ndarray,
    duration: np.ndarray,
    metered: np.ndarray,
) -> np.ndarray:
    """Boolean mask of wire rows that would fail report validation.

    The union of :func:`validate_raw_report`'s failure conditions,
    vectorized — one pass over float wire arrays, no per-row Python work.
    (NaN compares unequal to everything, so ``x != trunc(x)`` also catches
    it; ``~isfinite`` keeps the intent explicit.)  Shared by
    :meth:`Quarantine.screen_columnar` at settlement and by the streaming
    ingestor's flush-time admission screen, so both flag exactly the same
    rows.
    """
    with np.errstate(invalid="ignore"):
        return (
            ~np.isfinite(begin)
            | (begin != np.trunc(begin))
            | ~np.isfinite(end)
            | (end != np.trunc(end))
            | ~np.isfinite(duration)
            | (duration != np.trunc(duration))
            | (duration < 1)
            | (duration != metered)
            | (end < begin)
            | (begin < 0)
            | (end > HOURS_PER_DAY)
            | (end - begin < duration)
        )


@dataclass(frozen=True)
class QuarantineDecision:
    """One screened report: what came in, what was decided, and why."""

    household_id: HouseholdId
    action: str  # "accepted" | "clamped" | "excluded"
    reason: Optional[str] = None
    original: Optional[Dict[str, Any]] = None
    repaired: Optional[Dict[str, Any]] = None

    def as_payload(self) -> Dict[str, Any]:
        """JSON-safe dict for the audit log."""
        payload: Dict[str, Any] = {
            "household_id": self.household_id,
            "action": self.action,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.original is not None:
            payload["original"] = self.original
        if self.repaired is not None:
            payload["repaired"] = self.repaired
        return payload


@dataclass
class QuarantineResult:
    """Outcome of screening one day's reports.

    ``decisions`` holds one record per *quarantined* report (clamped or
    excluded); cleanly accepted reports are not individually recorded, so
    screening a large clean neighborhood stays allocation-free.
    """

    accepted: Dict[HouseholdId, Report]
    decisions: List[QuarantineDecision] = field(default_factory=list)
    excluded: Dict[HouseholdId, str] = field(default_factory=dict)

    @property
    def n_quarantined(self) -> int:
        """How many reports were repaired or dropped."""
        return len(self.decisions)


@dataclass
class ColumnarQuarantineResult:
    """Outcome of screening a columnar day's reports.

    ``accepted`` holds the surviving rows (repaired in place under the
    ``clamp`` policy) aligned with ``neighborhood.take(kept)``; ``kept``
    is the boolean row mask over the *input* rows.  ``decisions`` and
    ``excluded`` match the object screen's records exactly.
    """

    accepted: ColumnarReports
    kept: np.ndarray
    decisions: List[QuarantineDecision] = field(default_factory=list)
    excluded: Dict[HouseholdId, str] = field(default_factory=dict)

    @property
    def n_quarantined(self) -> int:
        """How many reports were repaired or dropped."""
        return len(self.decisions)


class Quarantine:
    """Screens a day's reports under a configurable policy.

    Args:
        policy: ``"reject"``, ``"clamp"`` or ``"exclude"`` (see module
            docstring).

    The screen is idempotent: reports that already pass validation are
    returned unchanged under every policy, so screening clean (or
    previously clamped) reports twice is a no-op.
    """

    def __init__(self, policy: str = "reject") -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.policy = policy

    def screen(
        self,
        neighborhood: Neighborhood,
        reports: Mapping[HouseholdId, AnyReport],
    ) -> QuarantineResult:
        """Validate every report; repair or drop per the policy.

        Raises:
            InvalidReportError: Under the ``reject`` policy, on the first
                malformed report.  Unknown households are dropped (never
                clamped — there is no type to repair toward) under the
                other policies.
        """
        accepted: Dict[HouseholdId, Report] = {}
        decisions: List[QuarantineDecision] = []
        excluded: Dict[HouseholdId, str] = {}
        households = neighborhood.households
        for hid, submitted in reports.items():
            # Fast path: a typed Report is structurally valid by
            # construction (Interval/Preference enforce the grid), so only
            # identity and the metered duration remain to check.  This
            # keeps the screen's cost negligible against a settlement.
            if isinstance(submitted, Report):
                household = households.get(hid)
                if (
                    household is not None
                    and submitted.household_id == hid
                    and submitted.preference.duration == household.duration
                ):
                    accepted[hid] = submitted
                    continue
                raw = RawReport.from_report(submitted)
            else:
                raw = submitted
            household = neighborhood.households.get(hid)
            if household is None or raw.household_id != hid:
                error: Optional[InvalidReportError] = InvalidReportError(
                    str(hid), "unknown-household", "no such household"
                )
                report = None
            else:
                try:
                    report = validate_raw_report(raw, household)
                    error = None
                except InvalidReportError as exc:
                    report = None
                    error = exc
            if error is None:
                accepted[hid] = report
                continue
            if self.policy == "reject":
                raise error
            if self.policy == "clamp" and household is not None:
                repaired = clamp_raw_report(raw, household)
                accepted[hid] = repaired
                decisions.append(
                    QuarantineDecision(
                        household_id=hid,
                        action="clamped",
                        reason=error.reason,
                        original=raw.as_payload(),
                        repaired={
                            "begin": repaired.preference.window.start,
                            "end": repaired.preference.window.end,
                            "duration": repaired.preference.duration,
                        },
                    )
                )
                continue
            excluded[hid] = error.reason
            decisions.append(
                QuarantineDecision(
                    household_id=hid,
                    action="excluded",
                    reason=error.reason,
                    original=raw.as_payload(),
                )
            )
        return QuarantineResult(accepted=accepted, decisions=decisions, excluded=excluded)

    def screen_columnar(
        self,
        neighborhood: ColumnarNeighborhood,
        begin: np.ndarray,
        end: np.ndarray,
        duration: Optional[np.ndarray] = None,
    ) -> ColumnarQuarantineResult:
        """Screen a day's reports given as parallel numeric arrays.

        ``begin``/``end`` (and optionally ``duration``, defaulting to the
        metered durations) are float arrays aligned with ``neighborhood``'s
        rows — the wire format of the columnar path, where junk shows up
        as NaN/inf, non-integral or out-of-range *numbers*.  Non-numeric
        junk (strings, bools) is an object-path concern; a columnar
        submission is numeric by construction, and unknown households
        cannot occur because rows are positional.

        The clean rows are validated with boolean masks mirroring
        :func:`validate_raw_report`'s checks — one vectorized pass, no
        per-row Python work.  Rows failing any mask are delegated to the
        scalar :func:`validate_raw_report` / :func:`clamp_raw_report`, so
        reasons, repairs and :class:`QuarantineDecision` records are
        exactly the object screen's (pinned by the equivalence suite).
        """
        begin = np.asarray(begin, dtype=float)
        end = np.asarray(end, dtype=float)
        metered = neighborhood.duration
        n = len(neighborhood)
        if begin.shape[0] != n or end.shape[0] != n:
            raise ValueError("report arrays are not aligned with the neighborhood")
        if duration is None:
            duration = metered.astype(float)
        else:
            duration = np.asarray(duration, dtype=float)
            if duration.shape[0] != n:
                raise ValueError("duration array is not aligned with the neighborhood")

        bad = malformed_mask(begin, end, duration, metered)
        keep = ~bad
        out_begin = np.where(keep, begin, 0).astype(np.intp)
        out_end = np.where(keep, end, 0).astype(np.intp)

        decisions: List[QuarantineDecision] = []
        excluded: Dict[HouseholdId, str] = {}
        for i in np.flatnonzero(bad).tolist():
            hid = neighborhood.ids[i]
            household = HouseholdType(
                household_id=hid,
                true_preference=Preference(
                    Interval(
                        int(neighborhood.true_start[i]), int(neighborhood.true_end[i])
                    ),
                    int(metered[i]),
                ),
                valuation_factor=float(neighborhood.valuation[i]),
                rating_kw=float(neighborhood.rating[i]),
            )
            raw = RawReport(hid, float(begin[i]), float(end[i]), float(duration[i]))
            try:
                validate_raw_report(raw, household)
                raise AssertionError(
                    f"mask flagged a valid report for {hid!r}"
                )  # pragma: no cover - masks mirror the scalar checks
            except InvalidReportError as error:
                if self.policy == "reject":
                    raise
                if self.policy == "clamp":
                    repaired = clamp_raw_report(raw, household)
                    out_begin[i] = repaired.preference.window.start
                    out_end[i] = repaired.preference.window.end
                    keep[i] = True
                    decisions.append(
                        QuarantineDecision(
                            household_id=hid,
                            action="clamped",
                            reason=error.reason,
                            original=raw.as_payload(),
                            repaired={
                                "begin": repaired.preference.window.start,
                                "end": repaired.preference.window.end,
                                "duration": repaired.preference.duration,
                            },
                        )
                    )
                else:
                    excluded[hid] = error.reason
                    decisions.append(
                        QuarantineDecision(
                            household_id=hid,
                            action="excluded",
                            reason=error.reason,
                            original=raw.as_payload(),
                        )
                    )

        idx = np.flatnonzero(keep)
        accepted = ColumnarReports(
            ids=tuple(neighborhood.ids[i] for i in idx.tolist()),
            start=out_begin[idx],
            end=out_end[idx],
            duration=metered[idx].copy(),
        )
        return ColumnarQuarantineResult(
            accepted=accepted, kept=keep, decisions=decisions, excluded=excluded
        )

    def screen_columnar_batch(
        self,
        batch: ColumnarDayBatch,
        begin: np.ndarray,
        end: np.ndarray,
        duration: Optional[np.ndarray] = None,
    ) -> List[ColumnarQuarantineResult]:
        """Screen D stacked days' wire arrays in one malformed-mask pass.

        ``begin``/``end`` (and optionally ``duration``) are stacked
        day-major, aligned with ``batch``'s rows.  One vectorized
        :func:`malformed_mask` covers all D days; days with no flagged
        rows — the overwhelming majority — are accepted with a fast
        all-rows path whose output equals :meth:`screen_columnar`'s
        clean-day result, and days with flagged rows delegate to the
        per-day screen so decisions, repairs and exclusion records stay
        exactly the per-day path's (pinned by the equivalence suite).
        Under ``reject`` the first dirty day raises, like the per-day
        loop would.
        """
        begin = np.asarray(begin, dtype=float)
        end = np.asarray(end, dtype=float)
        total = batch.total
        if begin.shape[0] != total or end.shape[0] != total:
            raise ValueError("report arrays are not aligned with the day batch")
        metered = batch.duration
        if duration is None:
            duration = metered.astype(float)
        else:
            duration = np.asarray(duration, dtype=float)
            if duration.shape[0] != total:
                raise ValueError(
                    "duration array is not aligned with the day batch"
                )

        bad = malformed_mask(begin, end, duration, metered)
        results: List[ColumnarQuarantineResult] = []
        for k in range(batch.n_days):
            rows = batch.day_slice(k)
            if not bool(bad[rows].any()):
                day_metered = metered[rows]
                accepted = ColumnarReports(
                    ids=batch.ids[k],
                    start=begin[rows].astype(np.intp),
                    end=end[rows].astype(np.intp),
                    duration=day_metered.copy(),
                )
                results.append(
                    ColumnarQuarantineResult(
                        accepted=accepted,
                        kept=np.ones(len(day_metered), dtype=bool),
                    )
                )
                continue
            results.append(
                self.screen_columnar(
                    batch.neighborhood(k),
                    begin[rows],
                    end[rows],
                    duration[rows],
                )
            )
        return results
