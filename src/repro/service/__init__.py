"""Supervised city-scale shard service.

The long-lived layer above the columnar mechanism: shards (columnar
days) enter through a bounded backpressured queue, settle on a
supervised worker pool with deadlines, jittered retries and pool
replacement, degrade per-shard through circuit breakers onto a fallback
tier when sick, and journal every settlement so a killed service resumes
byte-identically.  See ``docs/robustness.md`` ("Service layer").
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .city import sample_shard, serve_city, shard_sizes, stream_arrival_order
from .queue import BoundedIngestQueue
from .service import META_KEY, ServiceResult, ShardService, shard_key
from .shard import (
    ShardJob,
    ShardSettlementRecord,
    record_from_outcome,
    settle_shard,
    settlement_digest,
)
from .stream import (
    ColumnarReportBuilder,
    ReportChunk,
    ShardAssembler,
    StreamIngestor,
    StreamStats,
    parse_canonical_ids,
)
from .supervisor import ShardCompletion, ShardSupervisor

__all__ = [
    "BoundedIngestQueue",
    "CLOSED",
    "CircuitBreaker",
    "ColumnarReportBuilder",
    "HALF_OPEN",
    "META_KEY",
    "OPEN",
    "ReportChunk",
    "ServiceResult",
    "ShardAssembler",
    "ShardCompletion",
    "ShardJob",
    "ShardService",
    "ShardSettlementRecord",
    "ShardSupervisor",
    "StreamIngestor",
    "StreamStats",
    "parse_canonical_ids",
    "record_from_outcome",
    "sample_shard",
    "serve_city",
    "settle_shard",
    "settlement_digest",
    "shard_key",
    "shard_sizes",
    "stream_arrival_order",
]
