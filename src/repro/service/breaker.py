"""Per-shard circuit breakers: stop hammering a shard that keeps failing.

Retries handle *transient* faults (a worker SIGKILLed mid-solve reruns
bit-identically); a shard that fails **every** attempt — a stall baked
into its input, a poisoned report stream — would, under retries alone,
consume a full deadline-times-retries budget on every resubmission
forever.  The breaker is the memory the retry loop lacks: after
``failure_threshold`` consecutive failures it *opens* and the service
stops offering the shard to the primary pool, routing it straight to the
degraded inline path instead.  After ``cooldown_s`` the breaker goes
*half-open* and admits exactly one probe; a success closes it, another
failure re-opens it for a fresh cooldown.

The clock is injectable so state transitions are testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

#: The three classic breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """A consecutive-failure breaker with a cooldown-gated probe.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown_s: How long an open breaker blocks before admitting a
            half-open probe.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown cannot be negative, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, cooldown expiry applied lazily."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
        return self._state

    @property
    def failures(self) -> int:
        return self._failures

    def allow_primary(self) -> bool:
        """Whether the primary pool may attempt the shard right now.

        Closed: always.  Open: no, until the cooldown elapses.
        Half-open: one probe — this call admits it and subsequent calls
        refuse until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            self._state = OPEN  # the probe is in flight; block others
            self._opened_at = self._clock()
            return True
        return False

    def record_failure(self) -> None:
        """Count one failed attempt; trip at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()

    def record_success(self) -> None:
        """A served attempt resets the breaker entirely."""
        self._failures = 0
        self._state = CLOSED
