"""The city driver: shard a metropolis and push it through the service.

:func:`serve_city` is the 1M-household entry point behind the
``city`` CLI subcommand and the ``city_*`` benchmarks: it samples one
columnar shard population per shard index from keyed RNG substreams
(each shard is a pure function of ``(root, index)``, independent of
scheduling), submits them through the service's backpressured queue —
pumping the service to drain instead of sleeping whenever it pushes
back — and drains to settlement.  With a chaos plan attached the same
driver doubles as the acceptance harness: flood shards get their wire
arrays mass-corrupted at ingestion, slow/kill shards misbehave inside
the workers, and the supervisor-kill fuse interrupts the run mid-drain
to exercise journal resume.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..io.audit import AuditLog
from ..robustness.checkpoint import CheckpointStore
from ..robustness.errors import ServiceOverloadError
from ..sim.parallel import DEFAULT_BACKOFF_S, DEFAULT_JITTER
from ..sim.profiles import ProfileGenerator, ProfileGeneratorConfig
from ..sim.rng import make_day_rngs, root_entropy, spawn_seed
from .service import ServiceResult, ShardService
from .stream import ReportChunk

#: Spawn-key tag of the per-shard report *arrival order* substream —
#: distinct from the shard's sampling substream (``spawn_key=(index,)``)
#: so shuffling arrivals can never perturb the sampled population.
_STREAM_ORDER_TAG = 0x53545245414D


def shard_sizes(n: int, shards: int) -> list:
    """Split ``n`` households into ``shards`` near-equal positive slices."""
    if n < 1:
        raise ValueError(f"city size must be >= 1, got {n}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n)
    edges = [n * i // shards for i in range(shards + 1)]
    return [edges[i + 1] - edges[i] for i in range(shards)]


def sample_shard(
    root: int,
    index: int,
    size: int,
    generator: Optional[ProfileGenerator] = None,
):
    """Shard ``index``'s columnar neighborhood and allocator seed.

    Drawn from the shard's keyed substream
    (:func:`~repro.sim.rng.make_day_rngs` keyed by ``(root, index)``), so
    the shard's population is identical no matter when — or in which
    service life — it is sampled.  Ids are prefixed per shard to stay
    city-unique.
    """
    generator = generator if generator is not None else ProfileGenerator()
    py_rng, np_rng = make_day_rngs(root, index)
    profiles = generator.sample_population_columnar(
        np_rng, size, id_prefix=f"s{index}-hh"
    )
    return profiles.to_neighborhood("wide"), spawn_seed(py_rng)


def stream_arrival_order(root: int, index: int, size: int) -> np.ndarray:
    """Shard ``index``'s deterministic streamed-arrival permutation.

    A pure function of ``(root, index)`` on its own keyed substream, so
    the stream scenario is reproducible yet genuinely out-of-order with
    respect to row order.
    """
    seq = np.random.SeedSequence(root, spawn_key=(index, _STREAM_ORDER_TAG))
    return np.random.default_rng(seq).permutation(size)


def _serve_city_stream(
    service: ShardService,
    root: int,
    sizes: List[int],
    generator: ProfileGenerator,
    journal: Optional[CheckpointStore],
    chaos: Optional[Any],
    chunk_rows: int,
) -> ServiceResult:
    """Feed the city to the service as an interleaved report stream.

    Every open shard is registered up front (journal-replayed shards are
    skipped without sampling), then report chunks are dealt round-robin
    across shards in each shard's shuffled arrival order — the most
    adversarial interleaving the router must reassemble exactly.  Chaos
    flood corruption is applied *per chunk* via
    ``corrupt_stream_rows``, which draws the same seed-keyed corruption
    shapes as the batch path's whole-shard corruption.
    """
    if chunk_rows < 1:
        raise ValueError(f"stream chunk must be >= 1, got {chunk_rows}")
    streams = []
    for index, size in enumerate(sizes):
        if journal is not None and service.journal_has(index):
            service.register_stream_shard(index, None)
            continue
        neighborhood, shard_seed = sample_shard(root, index, size, generator)
        service.register_stream_shard(
            index, neighborhood, seed=shard_seed, assume_canonical_ids=True
        )
        begin, end, duration = neighborhood.truthful_wire()
        streams.append((
            index,
            np.asarray(neighborhood.ids),
            begin,
            end,
            duration,
            stream_arrival_order(root, index, size),
        ))
    cursors = [0] * len(streams)
    live = deque(range(len(streams)))
    while live:
        k = live.popleft()
        index, ids, begin, end, duration, order = streams[k]
        at = cursors[k]
        rows = order[at : at + chunk_rows]
        cursors[k] = at + rows.shape[0]
        if cursors[k] < order.shape[0]:
            live.append(k)
        chunk_begin = begin[rows]
        chunk_end = end[rows]
        chunk_duration = duration[rows]
        if chaos is not None:
            chunk_begin, chunk_end, chunk_duration = chaos.corrupt_stream_rows(
                index, order.shape[0], rows, chunk_begin, chunk_end, chunk_duration
            )
        chunk = ReportChunk(
            ids=ids[rows],
            begin=chunk_begin,
            end=chunk_end,
            duration=chunk_duration,
        )
        while True:
            try:
                service.submit_reports(chunk)
                break
            except ServiceOverloadError:
                # Same discipline as the batch path: drain, don't sleep.
                service.pump(block=True)
    incomplete = service.finish_streams()
    if incomplete:
        # The generator above sends every row exactly once, so this can
        # only mean rows were rejected/lost — fail loudly, not partially.
        raise RuntimeError(
            f"streamed city left shards incomplete: {incomplete}"
        )
    return service.drain()


def serve_city(
    n: int,
    shards: int,
    workers: Optional[int] = 1,
    seed: Optional[int] = 2017,
    mechanism: Optional[EnkiMechanism] = None,
    config: Optional[ProfileGeneratorConfig] = None,
    queue_capacity: int = 64,
    low_watermark: Optional[int] = None,
    deadline_s: Optional[float] = None,
    retries: int = 2,
    cooldown_s: float = 30.0,
    backoff_s: float = DEFAULT_BACKOFF_S,
    jitter: float = DEFAULT_JITTER,
    journal: Optional[CheckpointStore] = None,
    audit: Optional[AuditLog] = None,
    chaos: Optional[Any] = None,
    stream: bool = False,
    stream_chunk: int = 4096,
) -> ServiceResult:
    """Settle a city of ``n`` households as ``shards`` supervised shards.

    With ``stream=True`` the city arrives as an interleaved, out-of-order
    report stream in ``stream_chunk``-row chunks (see
    :func:`_serve_city_stream`) instead of whole-shard arrays — the
    settlement is digest-identical either way.

    Raises:
        ServiceInterrupted: The chaos supervisor-kill fuse fired; the
            journal holds every shard settled so far, and re-running with
            the same ``journal`` resumes byte-identically.
    """
    root = root_entropy(seed)
    generator = ProfileGenerator(config)
    sizes = shard_sizes(n, shards)
    meta = {"root": root, "n": n, "shards": len(sizes)}
    with ShardService(
        mechanism=mechanism,
        workers=workers,
        queue_capacity=queue_capacity,
        low_watermark=low_watermark,
        deadline_s=deadline_s,
        retries=retries,
        cooldown_s=cooldown_s,
        backoff_s=backoff_s,
        jitter=jitter,
        journal=journal,
        journal_meta=meta,
        audit=audit,
        chaos=chaos,
    ) as service:
        if stream:
            return _serve_city_stream(
                service, root, sizes, generator, journal, chaos, stream_chunk
            )
        for index, size in enumerate(sizes):
            if journal is not None and service.journal_has(index):
                # Resume fast path: replay without sampling or packing.
                service.submit_shard(index, None)  # type: ignore[arg-type]
                continue
            neighborhood, shard_seed = sample_shard(root, index, size, generator)
            begin, end, duration = neighborhood.truthful_wire()
            if chaos is not None:
                begin, end, duration = chaos.corrupt_shard_reports(
                    index, begin, end, duration
                )
            while True:
                try:
                    service.submit_shard(
                        index,
                        neighborhood,
                        begin=begin,
                        end=end,
                        duration=duration,
                        seed=shard_seed,
                    )
                    break
                except ServiceOverloadError:
                    # Backpressure: drain the service instead of sleeping
                    # — the productive response to "come back later".
                    service.pump(block=True)
        return service.drain()
