"""The city driver: shard a metropolis and push it through the service.

:func:`serve_city` is the 1M-household entry point behind the
``city`` CLI subcommand and the ``city_*`` benchmarks: it samples one
columnar shard population per shard index from keyed RNG substreams
(each shard is a pure function of ``(root, index)``, independent of
scheduling), submits them through the service's backpressured queue —
pumping the service to drain instead of sleeping whenever it pushes
back — and drains to settlement.  With a chaos plan attached the same
driver doubles as the acceptance harness: flood shards get their wire
arrays mass-corrupted at ingestion, slow/kill shards misbehave inside
the workers, and the supervisor-kill fuse interrupts the run mid-drain
to exercise journal resume.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core.mechanism import EnkiMechanism
from ..io.audit import AuditLog
from ..robustness.checkpoint import CheckpointStore
from ..robustness.errors import ServiceOverloadError
from ..sim.parallel import DEFAULT_BACKOFF_S, DEFAULT_JITTER
from ..sim.profiles import ProfileGenerator, ProfileGeneratorConfig
from ..sim.rng import make_day_rngs, root_entropy, spawn_seed
from .service import ServiceResult, ShardService


def shard_sizes(n: int, shards: int) -> list:
    """Split ``n`` households into ``shards`` near-equal positive slices."""
    if n < 1:
        raise ValueError(f"city size must be >= 1, got {n}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n)
    edges = [n * i // shards for i in range(shards + 1)]
    return [edges[i + 1] - edges[i] for i in range(shards)]


def sample_shard(
    root: int,
    index: int,
    size: int,
    generator: Optional[ProfileGenerator] = None,
):
    """Shard ``index``'s columnar neighborhood and allocator seed.

    Drawn from the shard's keyed substream
    (:func:`~repro.sim.rng.make_day_rngs` keyed by ``(root, index)``), so
    the shard's population is identical no matter when — or in which
    service life — it is sampled.  Ids are prefixed per shard to stay
    city-unique.
    """
    generator = generator if generator is not None else ProfileGenerator()
    py_rng, np_rng = make_day_rngs(root, index)
    profiles = generator.sample_population_columnar(
        np_rng, size, id_prefix=f"s{index}-hh"
    )
    return profiles.to_neighborhood("wide"), spawn_seed(py_rng)


def serve_city(
    n: int,
    shards: int,
    workers: Optional[int] = 1,
    seed: Optional[int] = 2017,
    mechanism: Optional[EnkiMechanism] = None,
    config: Optional[ProfileGeneratorConfig] = None,
    queue_capacity: int = 64,
    low_watermark: Optional[int] = None,
    deadline_s: Optional[float] = None,
    retries: int = 2,
    cooldown_s: float = 30.0,
    backoff_s: float = DEFAULT_BACKOFF_S,
    jitter: float = DEFAULT_JITTER,
    journal: Optional[CheckpointStore] = None,
    audit: Optional[AuditLog] = None,
    chaos: Optional[Any] = None,
) -> ServiceResult:
    """Settle a city of ``n`` households as ``shards`` supervised shards.

    Raises:
        ServiceInterrupted: The chaos supervisor-kill fuse fired; the
            journal holds every shard settled so far, and re-running with
            the same ``journal`` resumes byte-identically.
    """
    root = root_entropy(seed)
    generator = ProfileGenerator(config)
    sizes = shard_sizes(n, shards)
    meta = {"root": root, "n": n, "shards": len(sizes)}
    with ShardService(
        mechanism=mechanism,
        workers=workers,
        queue_capacity=queue_capacity,
        low_watermark=low_watermark,
        deadline_s=deadline_s,
        retries=retries,
        cooldown_s=cooldown_s,
        backoff_s=backoff_s,
        jitter=jitter,
        journal=journal,
        journal_meta=meta,
        audit=audit,
        chaos=chaos,
    ) as service:
        for index, size in enumerate(sizes):
            if journal is not None and service.journal_has(index):
                # Resume fast path: replay without sampling or packing.
                service.submit_shard(index, None)  # type: ignore[arg-type]
                continue
            neighborhood, shard_seed = sample_shard(root, index, size, generator)
            begin = neighborhood.true_start.astype(float)
            end = neighborhood.true_end.astype(float)
            duration = neighborhood.duration.astype(float)
            if chaos is not None:
                begin, end, duration = chaos.corrupt_shard_reports(
                    index, begin, end, duration
                )
            while True:
                try:
                    service.submit_shard(
                        index,
                        neighborhood,
                        begin=begin,
                        end=end,
                        duration=duration,
                        seed=shard_seed,
                    )
                    break
                except ServiceOverloadError:
                    # Backpressure: drain the service instead of sleeping
                    # — the productive response to "come back later".
                    service.pump(block=True)
        return service.drain()
