"""Bounded ingestion queue with watermark-hysteresis backpressure.

The shard service must never buffer unboundedly: a city feeding days
faster than the pool settles them would otherwise grow the parent's heap
until the OS kills it — the least graceful degradation there is.
:class:`BoundedIngestQueue` instead *rejects* work at a high watermark
with :class:`~repro.robustness.errors.ServiceOverloadError` carrying a
``retry_after_s`` hint, and — crucially — keeps rejecting until the queue
has drained below a *low* watermark.  The gap between the two watermarks
is hysteresis: without it a saturated service would flap between "one
slot free, accept" and "full, reject" on every settlement, and a retrying
client would burn its retries on a queue that frees exactly one slot at a
time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from ..robustness.errors import ServiceOverloadError

_T = TypeVar("_T")

#: Fallback retry hint when the queue has not drained anything yet.
DEFAULT_RETRY_AFTER_S = 0.1


class BoundedIngestQueue(Generic[_T]):
    """FIFO queue that applies backpressure instead of growing.

    Args:
        capacity: High watermark — the submission that would push depth
            past this is rejected.
        low_watermark: Depth the queue must drain to before it accepts
            again after a rejection (default ``capacity // 2``, at least
            one below capacity).  Equal watermarks disable hysteresis.
        retry_after_s: Base of the ``retry_after_s`` hint carried by
            rejections; scaled by how far above the low watermark the
            queue currently sits, so deeply-backed-up services ask
            clients to stay away longer.
    """

    def __init__(
        self,
        capacity: int,
        low_watermark: Optional[int] = None,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if low_watermark is None:
            low_watermark = max(0, min(capacity - 1, capacity // 2))
        if not 0 <= low_watermark <= capacity:
            raise ValueError(
                f"low watermark must be in [0, {capacity}], got {low_watermark}"
            )
        if retry_after_s <= 0:
            raise ValueError(f"retry_after_s must be positive, got {retry_after_s}")
        self.capacity = capacity
        self.low_watermark = low_watermark
        self.retry_after_s = retry_after_s
        self._items: Deque[_T] = deque()
        self._accepting = True
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def accepting(self) -> bool:
        """Whether the next :meth:`submit` would be admitted."""
        return self._accepting and len(self._items) < self.capacity

    def check_admission(self) -> None:
        """Raise the rejection a :meth:`submit` would raise right now.

        A no-op while the queue is accepting.  Callers with expensive
        payload construction (the service packs a shared-memory segment
        per shard) probe admission first so a rejected submission costs
        nothing.

        Raises:
            ServiceOverloadError: The queue is at its high watermark, or
                still draining toward its low watermark after a previous
                rejection.
        """
        if self.accepting:
            return
        self._accepting = False  # latch: drain to low watermark first
        self.rejections += 1
        backlog = max(1, len(self._items) - self.low_watermark)
        raise ServiceOverloadError(
            retry_after_s=self.retry_after_s * backlog,
            depth=len(self._items),
            capacity=self.capacity,
        )

    def submit(self, item: _T) -> None:
        """Enqueue ``item``, or reject it with backpressure.

        Raises:
            ServiceOverloadError: See :meth:`check_admission`; the
                submission was **not** accepted — resubmit after the
                error's ``retry_after_s``.
        """
        self.check_admission()
        self._items.append(item)

    def pop(self) -> _T:
        """Dequeue the oldest item (FIFO); re-arm admission once drained."""
        item = self._items.popleft()
        if not self._accepting and len(self._items) <= self.low_watermark:
            self._accepting = True
        return item
