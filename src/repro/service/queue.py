"""Bounded ingestion queue with watermark-hysteresis backpressure.

The shard service must never buffer unboundedly: a city feeding days
faster than the pool settles them would otherwise grow the parent's heap
until the OS kills it — the least graceful degradation there is.
:class:`BoundedIngestQueue` instead *rejects* work at a high watermark
with :class:`~repro.robustness.errors.ServiceOverloadError` carrying a
``retry_after_s`` hint, and — crucially — keeps rejecting until the queue
has drained below a *low* watermark.  The gap between the two watermarks
is hysteresis: without it a saturated service would flap between "one
slot free, accept" and "full, reject" on every settlement, and a retrying
client would burn its retries on a queue that frees exactly one slot at a
time.

The ``retry_after_s`` hint scales with the *observed drain rate*: the
queue keeps an exponentially-weighted moving average of the interval
between recent pops and multiplies it by the backlog that must drain
before admission re-arms.  A service settling shards in milliseconds
hands out millisecond hints even when deeply backed up; one grinding
through multi-second shards asks clients to stay away proportionally
longer.  Until the first drain interval is observed (a cold queue has no
rate to measure) the hint falls back to ``retry_after_s × backlog``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from ..robustness.errors import ServiceOverloadError

_T = TypeVar("_T")

#: Fallback retry hint when the queue has not drained anything yet.
DEFAULT_RETRY_AFTER_S = 0.1

#: EWMA weight of the newest observed drain interval.
DRAIN_EWMA_ALPHA = 0.3

#: Floor on rate-based hints: a queue draining "instantly" still asks
#: clients to back off for one scheduling quantum rather than zero.
MIN_RETRY_AFTER_S = 1e-3


class BoundedIngestQueue(Generic[_T]):
    """FIFO queue that applies backpressure instead of growing.

    Args:
        capacity: High watermark — the submission that would push depth
            past this is rejected.
        low_watermark: Depth the queue must drain to before it accepts
            again after a rejection (default ``capacity // 2``, at least
            one below capacity).  Equal watermarks disable hysteresis.
        retry_after_s: Base of the ``retry_after_s`` hint carried by
            rejections *before any drain has been observed*; once pops
            start the hint tracks the EWMA drain interval instead.
        clock: Monotonic time source for the drain-rate estimator
            (injectable for tests).
    """

    def __init__(
        self,
        capacity: int,
        low_watermark: Optional[int] = None,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if low_watermark is None:
            low_watermark = max(0, min(capacity - 1, capacity // 2))
        if not 0 <= low_watermark <= capacity:
            raise ValueError(
                f"low watermark must be in [0, {capacity}], got {low_watermark}"
            )
        if retry_after_s <= 0:
            raise ValueError(f"retry_after_s must be positive, got {retry_after_s}")
        self.capacity = capacity
        self.low_watermark = low_watermark
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._items: Deque[_T] = deque()
        self._accepting = True
        self._last_pop_at: Optional[float] = None
        self._drain_interval_s: Optional[float] = None
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def accepting(self) -> bool:
        """Whether the next :meth:`submit` would be admitted."""
        return self._accepting and len(self._items) < self.capacity

    @property
    def drain_interval_s(self) -> Optional[float]:
        """EWMA seconds between recent pops (``None`` before two pops)."""
        return self._drain_interval_s

    def retry_hint(self, backlog: int) -> float:
        """Suggested client wait for ``backlog`` items to drain.

        Rate-based once the drain estimator has a sample — the expected
        time for the backlog to clear at the observed settlement rate —
        with a fixed-per-item fallback while the queue is still cold.
        """
        backlog = max(1, backlog)
        if self._drain_interval_s is not None:
            return max(self._drain_interval_s * backlog, MIN_RETRY_AFTER_S)
        return self.retry_after_s * backlog

    def check_admission(self, extra_backlog: int = 0) -> None:
        """Raise the rejection a :meth:`submit` would raise right now.

        A no-op while the queue is accepting.  Callers with expensive
        payload construction (the service packs a shared-memory segment
        per shard) probe admission first so a rejected submission costs
        nothing.  ``extra_backlog`` folds caller-held backlog (the stream
        ingestor's completed-but-unsubmitted shards) into the reported
        depth and the retry hint.

        Raises:
            ServiceOverloadError: The queue is at its high watermark, or
                still draining toward its low watermark after a previous
                rejection.
        """
        if self.accepting:
            return
        self._accepting = False  # latch: drain to low watermark first
        self.rejections += 1
        backlog = max(1, len(self._items) - self.low_watermark) + max(
            0, extra_backlog
        )
        raise ServiceOverloadError(
            retry_after_s=self.retry_hint(backlog),
            depth=len(self._items) + max(0, extra_backlog),
            capacity=self.capacity,
        )

    def submit(self, item: _T) -> None:
        """Enqueue ``item``, or reject it with backpressure.

        Raises:
            ServiceOverloadError: See :meth:`check_admission`; the
                submission was **not** accepted — resubmit after the
                error's ``retry_after_s``.
        """
        self.check_admission()
        self._items.append(item)

    def pop(self) -> _T:
        """Dequeue the oldest item (FIFO); re-arm admission once drained.

        Each pop feeds the drain-rate estimator: the interval since the
        previous pop enters the EWMA that rate-based retry hints use.
        """
        item = self._items.popleft()
        now = self._clock()
        if self._last_pop_at is not None:
            interval = max(0.0, now - self._last_pop_at)
            if self._drain_interval_s is None:
                self._drain_interval_s = interval
            else:
                self._drain_interval_s += DRAIN_EWMA_ALPHA * (
                    interval - self._drain_interval_s
                )
        self._last_pop_at = now
        if not self._accepting and len(self._items) <= self.low_watermark:
            self._accepting = True
        return item
