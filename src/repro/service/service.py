"""The supervised shard service: ingest, settle, degrade, journal, resume.

:class:`ShardService` is the long-lived layer that turns the columnar
mechanism into something a city can feed continuously:

* **Ingestion** goes through a :class:`~repro.service.queue.
  BoundedIngestQueue` — a saturated service pushes back with
  :class:`~repro.robustness.errors.ServiceOverloadError` instead of
  buffering without bound.
* **Settlement** runs on a :class:`~repro.service.supervisor.
  ShardSupervisor` pool (shards travel by PR 6's shared-memory day
  transport), with deadlines, jittered retries and pool replacement.
* **Degradation** is per-shard: a :class:`~repro.service.breaker.
  CircuitBreaker` trips after repeated failures and the shard settles
  *inline* on the degraded chain — clamp quarantine in front of a
  :class:`~repro.robustness.fallback.FallbackAllocator` (greedy →
  random) — recorded with ``served_tier >= 1`` and the reason.  A sick
  shard is always settled on *some* tier; it is never silently dropped.
* **Journaling**: every settlement is appended to a
  :class:`~repro.robustness.checkpoint.CheckpointStore` keyed by shard;
  a killed service resumed against the same journal replays those
  records verbatim (byte-identical digests) and settles only the rest.

Theorem 1's weak budget balance is per-day arithmetic (Eq. 7), so it
holds for every settled shard regardless of which tier served it or how
many households the quarantine removed — each record carries its own
``budget_balanced`` witness.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..allocation.greedy import GreedyFlexibilityAllocator
from ..allocation.random_alloc import RandomAllocator
from ..core.columnar import ColumnarNeighborhood
from ..core.mechanism import EnkiMechanism
from ..io.audit import AuditEvent, AuditLog
from ..robustness.checkpoint import CheckpointStore
from ..robustness.errors import CheckpointError, ServiceInterrupted
from ..robustness.fallback import FallbackAllocator
from ..robustness.quarantine import Quarantine
from ..sim.parallel import DEFAULT_BACKOFF_S, DEFAULT_JITTER
from ..sim.shm import SharedArena
from .breaker import CircuitBreaker
from .queue import BoundedIngestQueue
from .shard import (
    ShardJob,
    ShardSettlementRecord,
    record_from_outcome,
    settle_shard,
)
from .stream import RawReport, ReportChunk, StreamIngestor, StreamStats
from .supervisor import ShardCompletion, ShardSupervisor

#: Journal key of the run-identity guard record.
META_KEY = "service-meta"


def shard_key(index: int) -> str:
    """The journal key for shard ``index``."""
    return f"shard-{index}"


@dataclass
class ServiceResult:
    """What a drained service hands back."""

    records: Dict[int, ShardSettlementRecord]
    degraded: Tuple[int, ...]
    replayed: Tuple[int, ...]
    overload_rejections: int
    pool_replacements: int
    wall_time_s: float

    @property
    def settled(self) -> int:
        return len(self.records)

    @property
    def n_households(self) -> int:
        return sum(record.n_input for record in self.records.values())

    def all_budget_balanced(self) -> bool:
        """Theorem 1 held on every settled shard."""
        return all(record.budget_balanced for record in self.records.values())


class ShardService:
    """Supervised settlement of many columnar days ("shards").

    Args:
        mechanism: The primary mechanism; default :class:`EnkiMechanism`.
        workers: Worker processes for the primary pool (1 = inline).
        queue_capacity / low_watermark: Ingestion backpressure watermarks
            (:class:`BoundedIngestQueue`).
        deadline_s: Per-shard wall-clock deadline on the primary pool.
        retries: Primary re-attempts before a shard is handed to the
            degraded path.
        failure_threshold: Consecutive failed *attempts* that trip a
            shard's circuit breaker; default ``retries + 1`` so the
            breaker opens exactly when the supervisor gives up.
        cooldown_s: Breaker cooldown before a half-open probe.
        journal: Optional :class:`CheckpointStore`; every settlement is
            appended under :func:`shard_key` and replayed on resubmission.
        journal_meta: Run-identity payload pinned into the journal under
            :data:`META_KEY`; a resumed journal whose meta differs raises
            :class:`CheckpointError` (resuming someone else's journal
            would silently mix two cities).
        audit: Optional :class:`AuditLog` receiving ``shard_settled`` /
            ``shard_degraded`` / ``shard_failure`` / ``service_overload``
            events (the event's ``day`` field carries the shard index).
        chaos: Optional :class:`~repro.robustness.chaos.ChaosInjector`
            with a service plan; workers fire its shard hooks and the
            service honours ``supervisor_kill_due`` by raising
            :class:`ServiceInterrupted` mid-drain (journal intact).
        clock: Monotonic time source for the breakers (injectable).
    """

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        workers: Optional[int] = 1,
        queue_capacity: int = 64,
        low_watermark: Optional[int] = None,
        deadline_s: Optional[float] = None,
        retries: int = 2,
        failure_threshold: Optional[int] = None,
        cooldown_s: float = 30.0,
        backoff_s: float = DEFAULT_BACKOFF_S,
        jitter: float = DEFAULT_JITTER,
        journal: Optional[CheckpointStore] = None,
        journal_meta: Optional[Dict[str, Any]] = None,
        audit: Optional[AuditLog] = None,
        chaos: Optional[Any] = None,
        clock=time.monotonic,
    ) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.chaos = chaos
        self.journal = journal
        self.audit = audit
        self._clock = clock
        self._failure_threshold = (
            failure_threshold if failure_threshold is not None else retries + 1
        )
        self._cooldown_s = cooldown_s
        self._queue: BoundedIngestQueue[ShardJob] = BoundedIngestQueue(
            queue_capacity, low_watermark
        )
        self._supervisor = ShardSupervisor(
            settle_shard,
            workers=workers,
            deadline_s=deadline_s,
            retries=retries,
            backoff_s=backoff_s,
            jitter=jitter,
        )
        self._arena = SharedArena(prefix="svc")
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._jobs: Dict[int, ShardJob] = {}
        self._records: Dict[int, ShardSettlementRecord] = {}
        self._degraded: List[int] = []
        self._replayed: List[int] = []
        self._submitted = 0
        self._started_at = time.perf_counter()
        self._degraded_mechanism: Optional[EnkiMechanism] = None
        self._stream: Optional[StreamIngestor] = None
        if journal is not None and journal_meta is not None:
            self._pin_meta(journal, dict(journal_meta))

    @staticmethod
    def _pin_meta(journal: CheckpointStore, meta: Dict[str, Any]) -> None:
        existing = journal.completed().get(META_KEY)
        if existing is None:
            journal.append(META_KEY, meta)
        elif existing != meta:
            raise CheckpointError(
                f"journal belongs to a different run: expected {meta}, "
                f"found {existing}"
            )

    # --------------------------------------------------------- lifecycle

    def __enter__(self) -> "ShardService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the pool and the shared-memory day segments."""
        self._supervisor.close()
        self._arena.dispose()

    # --------------------------------------------------------- ingestion

    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    @property
    def pending(self) -> int:
        """Shards accepted but not yet settled."""
        return self._submitted - len(self._records)

    @property
    def settled(self) -> int:
        return len(self._records)

    def journal_has(self, index: int) -> bool:
        """Whether the journal already holds shard ``index``'s settlement."""
        return self.journal is not None and shard_key(index) in self.journal

    def submit_shard(
        self,
        index: int,
        neighborhood: ColumnarNeighborhood,
        begin: Optional[np.ndarray] = None,
        end: Optional[np.ndarray] = None,
        duration: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> bool:
        """Offer one shard for settlement.

        ``begin``/``end``/``duration`` are the raw wire report arrays
        (truthful true windows when omitted).  Returns ``True`` when the
        shard was replayed from the journal (already settled in a prior
        life), ``False`` when it was accepted for fresh settlement.

        Raises:
            ServiceOverloadError: Backpressure — the shard was **not**
                accepted; pump the service (or wait ``retry_after_s``)
                and resubmit.
        """
        if index in self._records or index in self._jobs:
            raise ValueError(f"shard {index} already submitted")
        if self.journal is not None:
            payload = self.journal.completed().get(shard_key(index))
            if payload is not None:
                record = ShardSettlementRecord.from_payload(payload)
                self._records[index] = record
                self._replayed.append(index)
                self._submitted += 1
                return True
        try:
            # Probe admission before packing: a rejected submission must
            # not leave a shared-memory segment behind.
            self._queue.check_admission()
        except Exception:
            self._log("service_overload", index, {
                "depth": self._queue.depth,
                "capacity": self._queue.capacity,
            })
            raise
        if begin is None:
            begin = neighborhood.true_start.astype(float)
        if end is None:
            end = neighborhood.true_end.astype(float)
        if duration is None:
            duration = neighborhood.duration.astype(float)
        job = ShardJob(
            index=index,
            day=self._arena.pack_day(neighborhood),
            seed=seed,
            begin=np.asarray(begin, dtype=float),
            end=np.asarray(end, dtype=float),
            duration=np.asarray(duration, dtype=float),
        )
        self._queue.submit(job)
        self._jobs[index] = job
        self._submitted += 1
        return False

    # ------------------------------------------------- streamed ingestion

    def _stream_ingestor(self) -> StreamIngestor:
        if self._stream is None:
            self._stream = StreamIngestor(
                queue=self._queue,
                enqueue=self._enqueue_stream_job,
                on_event=self._log,
                clock=self._clock,
            )
        return self._stream

    def _enqueue_stream_job(self, index: int, job: ShardJob) -> None:
        """Hand a completed streamed shard to the queue (may push back)."""
        try:
            self._queue.submit(job)
        except Exception:
            self._log("service_overload", index, {
                "depth": self._queue.depth,
                "capacity": self._queue.capacity,
                "stream": True,
            })
            raise
        self._jobs[index] = job
        self._submitted += 1

    @property
    def stream_stats(self) -> Optional[StreamStats]:
        """Counters of the streaming ingestor (``None`` if never streamed)."""
        return self._stream.stats if self._stream is not None else None

    def register_stream_shard(
        self,
        index: int,
        neighborhood: Optional[ColumnarNeighborhood],
        seed: int = 0,
        assume_canonical_ids: bool = False,
    ) -> bool:
        """Open shard ``index`` for report-stream ingestion.

        Packs the shard's day segment (with embedded report columns) up
        front so streamed rows scatter straight into shared memory, and
        registers the shard's id space with the router.  The shard is
        *not* counted as submitted until its last report arrives and the
        sealed job enters the queue — an incomplete stream never blocks
        :meth:`drain`.

        ``assume_canonical_ids`` lets a caller that *generated* the ids
        (the city driver) vouch for the canonical ``s<index>-hh<row>``
        scheme and skip the verifying parse; leave it off for ids of
        unknown provenance.

        Returns ``True`` when the shard was replayed from the journal
        (rows streamed for it will be dropped as already-settled),
        ``False`` when it is open for ingestion.  A replayed shard may be
        registered with ``neighborhood=None`` to skip sampling entirely.
        """
        if index in self._records or index in self._jobs:
            raise ValueError(f"shard {index} already submitted")
        ingestor = self._stream_ingestor()
        if self.journal is not None:
            payload = self.journal.completed().get(shard_key(index))
            if payload is not None:
                record = ShardSettlementRecord.from_payload(payload)
                self._records[index] = record
                self._replayed.append(index)
                self._submitted += 1
                ingestor.register_replayed(
                    index,
                    None if neighborhood is None else neighborhood.ids,
                )
                return True
        if neighborhood is None:
            raise ValueError(
                f"shard {index} is not in the journal; a neighborhood is "
                "required to open it for streaming"
            )
        job = ShardJob(
            index=index,
            day=self._arena.pack_day(neighborhood, report_columns=True),
            seed=seed,
        )
        ingestor.register(
            index, job, neighborhood.ids, assume_canonical_ids=assume_canonical_ids
        )
        return False

    def submit_reports(
        self, reports: Union[RawReport, ReportChunk, Iterable[RawReport]]
    ) -> int:
        """Ingest streamed reports (one, an iterable, or a columnar chunk).

        Reports coalesce in the ingestor's columnar micro-batch buffer
        and are routed to their registered shards on flush; a shard whose
        last row arrives is sealed and queued exactly as a batch
        :meth:`submit_shard` would have queued it.  Returns how many
        reports were ingested.

        Raises:
            ServiceOverloadError: Backpressure (queue depth plus sealed
                shards awaiting a slot) — **nothing** from this call was
                ingested; pump the service and resubmit the same payload.
        """
        return self._stream_ingestor().submit(reports)

    def flush_reports(self) -> None:
        """Force the ingestor's buffered micro-batch out (e.g. on idle)."""
        if self._stream is not None:
            self._stream.flush()

    def finish_streams(self) -> Tuple[int, ...]:
        """Close streamed ingestion: flush, queue every sealed shard.

        Pumps the service as needed until no sealed shard is stuck behind
        backpressure.  Returns the indices of registered shards still
        missing rows — those stay unsettled (their segments are released
        with the service); an empty tuple means every streamed shard made
        it into the settlement pipeline.
        """
        if self._stream is None:
            return ()
        self._stream.flush(reason="final")
        while self._stream.ready_backlog:
            self.pump(block=True)
            self._stream.drain_ready()
        return self._stream.incomplete()

    # ------------------------------------------------------- settlement

    def _breaker(self, index: int) -> CircuitBreaker:
        breaker = self._breakers.get(index)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._failure_threshold,
                cooldown_s=self._cooldown_s,
                clock=self._clock,
            )
            self._breakers[index] = breaker
        return breaker

    @property
    def _max_inflight(self) -> int:
        return max(2, 2 * self._supervisor.workers)

    def pump(self, block: bool = False) -> int:
        """Advance the service one scheduling round.

        Moves queued shards onto the pool (or straight to the degraded
        path when their breaker is open), collects pool completions, and
        settles/journals them.  Returns how many shards reached a
        terminal record during this call.
        """
        before = len(self._records)
        while len(self._queue) and self._supervisor.load < self._max_inflight:
            job = self._queue.pop()
            if self._breaker(job.index).allow_primary():
                self._supervisor.submit(
                    job.index, (job, self.mechanism, self.chaos)
                )
            else:
                self._settle_degraded(job, cause="circuit-breaker open", attempts=0)
        for completion in self._supervisor.step(block=block):
            self._on_completion(completion)
        return len(self._records) - before

    def drain(self) -> ServiceResult:
        """Settle everything accepted so far and return the result."""
        while self.pending > 0:
            made_progress = self.pump(block=True) > 0
            if (
                not made_progress
                and not len(self._queue)
                and self._supervisor.idle
            ):
                # Nothing queued, nothing in flight, yet shards are owed:
                # only open breakers can be holding jobs back — force the
                # degraded path rather than spin.
                for index in sorted(self._jobs):
                    self._settle_degraded(
                        self._jobs[index], cause="circuit-breaker open", attempts=0
                    )
        return ServiceResult(
            records=dict(self._records),
            degraded=tuple(sorted(self._degraded)),
            replayed=tuple(sorted(self._replayed)),
            overload_rejections=self._queue.rejections,
            pool_replacements=self._supervisor.pool_replacements,
            wall_time_s=time.perf_counter() - self._started_at,
        )

    def _on_completion(self, completion: ShardCompletion) -> None:
        breaker = self._breaker(completion.key)
        if completion.ok:
            breaker.record_success()
            record = completion.value.with_attempts(completion.attempts)
            self._finalize(completion.key, record, kind="shard_settled")
            return
        for _ in range(max(1, completion.attempts)):
            breaker.record_failure()
        self._log("shard_failure", completion.key, {
            "attempts": completion.attempts,
            "cause": completion.cause,
        })
        job = self._jobs[completion.key]
        self._settle_degraded(
            job,
            cause=f"retries exhausted: {completion.cause}",
            attempts=completion.attempts,
        )

    def _degraded_chain(self) -> EnkiMechanism:
        """The inline degraded-tier mechanism (built once, reused).

        Clamp quarantine in front of a greedy → random fallback chain:
        whatever poisoned the primary path — malformed floods included —
        the shard still settles, on a cheaper tier, with the clamp
        repairing what it can.  Seeded deterministically so degraded
        settlements are reproducible across runs and resumes.
        """
        if self._degraded_mechanism is None:
            self._degraded_mechanism = EnkiMechanism(
                pricing=self.mechanism.pricing,
                allocator=FallbackAllocator(
                    tiers=[
                        GreedyFlexibilityAllocator(seed=0),
                        RandomAllocator(seed=0),
                    ]
                ),
                k=self.mechanism.k,
                xi=self.mechanism.xi,
                quarantine=Quarantine("clamp"),
            )
        return self._degraded_mechanism

    def _settle_degraded(self, job: ShardJob, cause: str, attempts: int) -> None:
        """Settle a sick shard inline on the degraded chain — never drop it."""
        started_at = time.perf_counter()
        mechanism = self._degraded_chain()
        begin, end, duration = job.wire_arrays()
        outcome = mechanism.run_day_columnar_raw(
            job.day.neighborhood(),
            begin,
            end,
            duration,
            rng=random.Random(job.seed),
        )
        record = record_from_outcome(
            shard_id=job.index,
            n_input=len(job.day),
            outcome=outcome,
            wall_time_s=time.perf_counter() - started_at,
            # Tier 0 is the primary pool; the fallback chain's tiers sit
            # below it, so its tier t serves as overall tier 1 + t.
            served_tier_offset=1,
            degraded=cause,
        ).with_attempts(attempts + 1)
        self._degraded.append(job.index)
        self._finalize(job.index, record, kind="shard_degraded")

    def _finalize(
        self, index: int, record: ShardSettlementRecord, kind: str
    ) -> None:
        if self.journal is not None:
            self.journal.append(shard_key(index), record.as_payload())
        self._records[index] = record
        self._jobs.pop(index, None)
        self._log(kind, index, record.as_payload())
        if self.chaos is not None and self.chaos.supervisor_kill_due(
            len(self._records)
        ):
            raise ServiceInterrupted(
                settled=len(self._records),
                pending=self.pending,
                cause="chaos supervisor kill",
            )

    def _log(self, kind: str, index: int, payload: Dict[str, Any]) -> None:
        if self.audit is not None:
            self.audit.append(AuditEvent(kind=kind, day=index, payload=payload))
