"""Shard jobs and settlement records: the units the service moves around.

A *shard* is one :class:`~repro.core.columnar.ColumnarNeighborhood` day
— a slice of the city — travelling as a :class:`ShardJob`: a
shared-memory day descriptor (PR 6's zero-copy transport), the raw wire
report arrays, and the shard's keyed seed.  The worker settles it and
sends back a :class:`ShardSettlementRecord` — a few hundred bytes of
summary plus a SHA-256 digest over the settled arrays — instead of the
megabytes of outcome, so the pipe stays thin at city scale and the
journal can replay a settlement byte-identically without storing it.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.mechanism import ColumnarDayOutcome, EnkiMechanism
from ..sim.shm import SharedColumnarDay


@dataclass(frozen=True)
class ShardJob:
    """One shard's inputs, picklable and small.

    ``begin``/``end``/``duration`` are the *raw* report arrays straight
    off the wire — float, aligned with the day's rows, possibly
    malformed (that is the quarantine's problem, not the transport's).
    The neighborhood itself travels by :class:`SharedColumnarDay`
    descriptor; only these three small vectors are pickled per task.

    Streamed shards leave all three as ``None``: their reports were
    scattered into the day segment's embedded ``rep_*`` columns by the
    ingestor, and :meth:`wire_arrays` reads them back as zero-copy views
    — the whole job then pickles to a few hundred bytes regardless of
    shard size.
    """

    index: int
    day: SharedColumnarDay
    seed: int
    begin: Optional[np.ndarray] = None
    end: Optional[np.ndarray] = None
    duration: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.day)

    def wire_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw report arrays, pickled or embedded in the day segment."""
        if self.begin is not None:
            assert self.end is not None and self.duration is not None
            return self.begin, self.end, self.duration
        return self.day.report_views()


@dataclass(frozen=True)
class ShardSettlementRecord:
    """The durable summary of one settled shard.

    ``served_tier`` is 0 for the primary mechanism's own allocator and
    ``1 + fallback tier`` for shards settled on the degraded path, with
    ``degraded`` naming why (empty string = healthy primary serve).
    ``digest`` is SHA-256 over the settled begin slots, consumption
    starts and payments — the byte-identity witness the resume test
    compares.  ``wall_time_s`` and ``attempts`` are operational noise:
    :meth:`fingerprint` excludes them so deterministic equality can be
    asserted across runs with different timing.
    """

    shard_id: int
    n_input: int
    n_settled: int
    n_quarantined: int
    served_tier: int
    allocator_name: str
    degraded: str
    total_cost: float
    revenue: float
    peak_kw: float
    budget_balanced: bool
    digest: str
    wall_time_s: float
    attempts: int = 1

    def fingerprint(self) -> Tuple:
        """Everything deterministic — record equality minus timing."""
        return (
            self.shard_id,
            self.n_input,
            self.n_settled,
            self.n_quarantined,
            self.served_tier,
            self.allocator_name,
            self.degraded,
            self.total_cost,
            self.revenue,
            self.peak_kw,
            self.budget_balanced,
            self.digest,
        )

    def as_payload(self) -> Dict[str, Any]:
        """JSON-safe dict for the journal and audit log."""
        return {
            "shard_id": self.shard_id,
            "n_input": self.n_input,
            "n_settled": self.n_settled,
            "n_quarantined": self.n_quarantined,
            "served_tier": self.served_tier,
            "allocator_name": self.allocator_name,
            "degraded": self.degraded,
            "total_cost": self.total_cost,
            "revenue": self.revenue,
            "peak_kw": self.peak_kw,
            "budget_balanced": self.budget_balanced,
            "digest": self.digest,
            "wall_time_s": self.wall_time_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ShardSettlementRecord":
        """Rebuild a record from its journal payload, verbatim."""
        return cls(
            shard_id=int(payload["shard_id"]),
            n_input=int(payload["n_input"]),
            n_settled=int(payload["n_settled"]),
            n_quarantined=int(payload["n_quarantined"]),
            served_tier=int(payload["served_tier"]),
            allocator_name=str(payload["allocator_name"]),
            degraded=str(payload["degraded"]),
            total_cost=float(payload["total_cost"]),
            revenue=float(payload["revenue"]),
            peak_kw=float(payload["peak_kw"]),
            budget_balanced=bool(payload["budget_balanced"]),
            digest=str(payload["digest"]),
            wall_time_s=float(payload["wall_time_s"]),
            attempts=int(payload["attempts"]),
        )

    def with_attempts(self, attempts: int) -> "ShardSettlementRecord":
        return replace(self, attempts=attempts)


def settlement_digest(outcome: ColumnarDayOutcome) -> str:
    """SHA-256 over the arrays that define a settlement's identity."""
    sha = hashlib.sha256()
    sha.update(np.ascontiguousarray(outcome.allocation_starts, np.int64).tobytes())
    sha.update(np.ascontiguousarray(outcome.consumption_starts, np.int64).tobytes())
    sha.update(np.ascontiguousarray(outcome.settlement.payments, np.float64).tobytes())
    return sha.hexdigest()


def record_from_outcome(
    shard_id: int,
    n_input: int,
    outcome: ColumnarDayOutcome,
    wall_time_s: float,
    served_tier_offset: int = 0,
    degraded: str = "",
) -> ShardSettlementRecord:
    """Summarize a settled columnar day into its durable record."""
    result = outcome.allocation_result
    settlement = outcome.settlement
    n_settled = len(outcome.neighborhood)
    revenue = float(settlement.payments.sum())
    return ShardSettlementRecord(
        shard_id=shard_id,
        n_input=n_input,
        n_settled=n_settled,
        n_quarantined=n_input - n_settled,
        served_tier=served_tier_offset + result.served_tier,
        allocator_name=result.allocator_name,
        degraded=degraded,
        total_cost=float(settlement.total_cost),
        revenue=revenue,
        # Theorem 1 (weak budget balance): payments cover the day's cost.
        budget_balanced=bool(revenue - float(settlement.total_cost) >= -1e-9),
        peak_kw=float(settlement.load_profile.peak_kw),
        digest=settlement_digest(outcome),
        wall_time_s=wall_time_s,
    )


def settle_shard(
    task: Tuple[ShardJob, EnkiMechanism, Optional[Any]],
) -> ShardSettlementRecord:
    """Settle one shard on the primary mechanism (module-level: picklable).

    Runs inside a pool worker (or inline for ``workers=1``): fires the
    chaos shard hooks, reconstructs the zero-copy neighborhood view from
    the shared segment, and drives the raw wire arrays through
    :meth:`~repro.core.mechanism.EnkiMechanism.run_day_columnar_raw`.
    Pure in ``(job, mechanism)`` — a retried shard settles
    bit-identically.
    """
    job, mechanism, injector = task
    started_at = time.perf_counter()
    if injector is not None:
        injector.before_shard(job.index)
    neighborhood = job.day.neighborhood()
    begin, end, duration = job.wire_arrays()
    outcome = mechanism.run_day_columnar_raw(
        neighborhood,
        begin,
        end,
        duration,
        rng=random.Random(job.seed),
    )
    return record_from_outcome(
        shard_id=job.index,
        n_input=len(job.day),
        outcome=outcome,
        wall_time_s=time.perf_counter() - started_at,
    )
