"""Streaming report ingestion: zero-copy columnar micro-batching.

The batch service ingests whole-shard arrays; real traffic arrives as
individual :class:`~repro.robustness.quarantine.RawReport`\\ s, interleaved
across shards and out of order.  This module turns that stream back into
the exact columnar shards the batch path produces — digest-identical
settlements — without ever building a per-report object graph:

* :class:`ColumnarReportBuilder` — a preallocated, growable
  structure-of-arrays append buffer.  ``append`` lowers one report's
  fields straight into dtype-stable float64 arrays (Python-object cost
  paid once, at the rim); ``append_columnar`` ingests a whole
  :class:`ReportChunk` at array-slice cost.  The buffer is the
  micro-batch: nothing downstream sees individual reports.
* A vectorized **shard router** — canonical city ids
  (``s<shard>-hh<row>``, zero-padded rows) are parsed by a columnar
  state machine over the id characters (no per-row Python, no regex),
  yielding ``(shard, row)`` for every report in a batch at once.  The
  parse is *verifying*: digit counts and leading-zero checks prove the
  id reconstructs exactly, so a lookalike id can never misroute.
  Exotic ids fall back to a per-shard dictionary built at registration.
* :class:`ShardAssembler` — one per registered shard: scatters routed
  micro-batch rows directly into the shard's shared-memory day segment
  (the ``rep_*`` columns :meth:`~repro.sim.shm.SharedArena.pack_day`
  preallocates), deduplicates, counts flush-time admission suspects via
  the same :func:`~repro.robustness.quarantine.malformed_mask` the
  settlement quarantine applies, and seals when every row has arrived.
* :class:`StreamIngestor` — the coalescer: flushes the builder on a
  size watermark, an age deadline, or shard completion; hands sealed
  shards to the service queue as :class:`~repro.service.shard.ShardJob`
  descriptors whose reports live *inside* the day segment (nothing is
  pickled per task, nothing is copied after the scatter).

Backpressure composes with the bounded queue: when sealed shards are
ready but the queue refuses them, the next ``submit`` call is rejected
**before ingesting anything** with a
:class:`~repro.robustness.errors.ServiceOverloadError` whose depth and
retry hint cover queue depth *plus* the ready backlog — a rejected call
ingested zero reports, so the client can resubmit the same chunk after
pumping, with no loss and no duplication.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..robustness.errors import ServiceOverloadError
from ..robustness.quarantine import RawReport, malformed_mask
from .queue import BoundedIngestQueue
from .shard import ShardJob

#: Builder occupancy that triggers a size-watermark flush.
DEFAULT_FLUSH_ROWS = 8192

#: Seconds the oldest buffered report may wait before an age flush.
DEFAULT_FLUSH_AGE_S = 0.25

#: Character codes the id parser matches against.
_ORD_S, _ORD_DASH, _ORD_H, _ORD_0, _ORD_9 = 115, 45, 104, 48, 57


def _wire_value(value: Any) -> float:
    """Lower one report field to its float64 wire form.

    Numeric values pass through; everything else — strings, bools, None,
    objects — becomes NaN, which the downstream quarantine flags exactly
    like the object path's scalar validator rejects non-numeric bounds.
    """
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        return float("nan")
    return float(value)


@dataclass(frozen=True)
class ReportChunk:
    """A pre-columnar slice of the report stream (the bulk wire format).

    ``ids[i]``'s report is ``(begin[i], end[i], duration[i])``.  Chunks
    may interleave shards and arrive in any row order; the router sorts
    it out.  ``ids`` is ideally a numpy unicode array (zero conversion on
    ingest); any sequence of strings is accepted.
    """

    ids: Union[np.ndarray, Sequence[str]]
    begin: np.ndarray
    end: np.ndarray
    duration: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)


class ColumnarReportBuilder:
    """Growable SoA append buffer lowering reports into wire arrays.

    The numeric columns are preallocated float64 arrays that double in
    capacity as needed — an ``append`` amortizes to one scalar store per
    field, an ``append_columnar`` to one array copy per field.  Ids are
    kept as the parts they arrived in (arrays from chunks, a list for
    scalar appends) and concatenated once per drain.

    :meth:`drain` returns *views* of the internal buffers and resets the
    row count; the views are valid until the next append, which is all a
    synchronous flush needs — steady-state ingestion allocates nothing
    per batch.
    """

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(1, int(capacity))
        self._begin = np.empty(capacity, dtype=np.float64)
        self._end = np.empty(capacity, dtype=np.float64)
        self._duration = np.empty(capacity, dtype=np.float64)
        self._id_parts: List[Any] = []
        self._scalar_ids: Optional[List[str]] = None
        self._n = 0
        self._first_at: Optional[float] = None

    def __len__(self) -> int:
        return self._n

    @property
    def occupancy(self) -> int:
        return self._n

    def age_s(self, now: float) -> float:
        """Seconds the oldest buffered report has waited (0 when empty)."""
        if self._first_at is None:
            return 0.0
        return max(0.0, now - self._first_at)

    def _ensure(self, need: int) -> None:
        have = self._begin.shape[0]
        if need <= have:
            return
        grown = max(need, 2 * have)
        for name in ("_begin", "_end", "_duration"):
            old = getattr(self, name)
            new = np.empty(grown, dtype=np.float64)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def _stamp(self, now: Optional[float]) -> None:
        if self._first_at is None and now is not None:
            self._first_at = now

    def append(self, report: RawReport, now: Optional[float] = None) -> None:
        """Lower one raw report into the buffer (the per-report rim)."""
        if self._scalar_ids is None:
            self._scalar_ids = []
            self._id_parts.append(self._scalar_ids)
        self._scalar_ids.append(str(report.household_id))
        i = self._n
        self._ensure(i + 1)
        self._begin[i] = _wire_value(report.begin)
        self._end[i] = _wire_value(report.end)
        self._duration[i] = _wire_value(report.duration)
        self._n = i + 1
        self._stamp(now)

    def append_columnar(
        self,
        ids: Union[np.ndarray, Sequence[str]],
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        now: Optional[float] = None,
    ) -> int:
        """Bulk-lower a chunk; returns how many rows were buffered."""
        begin = np.asarray(begin, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        k = begin.shape[0]
        if end.shape[0] != k or duration.shape[0] != k or len(ids) != k:
            raise ValueError("chunk arrays are not aligned")
        if k == 0:
            return 0
        if isinstance(ids, np.ndarray) and ids.dtype.kind == "U":
            ids_arr: Any = ids
        else:
            ids_arr = np.asarray(ids, dtype=np.str_)
        self._id_parts.append(ids_arr)
        self._scalar_ids = None
        i = self._n
        self._ensure(i + k)
        self._begin[i : i + k] = begin
        self._end[i : i + k] = end
        self._duration[i : i + k] = duration
        self._n = i + k
        self._stamp(now)
        return k

    def drain(
        self,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Hand the buffered micro-batch over and reset.

        Returns ``(ids, begin, end, duration)`` — the numeric arrays are
        views of the internal buffers, valid until the next append — or
        ``None`` when the buffer is empty.
        """
        n = self._n
        if n == 0:
            return None
        parts = [
            part if isinstance(part, np.ndarray) else np.asarray(part, dtype=np.str_)
            for part in self._id_parts
        ]
        ids = parts[0] if len(parts) == 1 else np.concatenate(parts)
        out = (ids, self._begin[:n], self._end[:n], self._duration[:n])
        self._n = 0
        self._id_parts = []
        self._scalar_ids = None
        self._first_at = None
        return out


def parse_canonical_ids(
    ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized verifying parse of canonical ``s<shard>-hh<row>`` ids.

    Runs a columnar state machine over the id characters (the unicode
    array viewed as a code-point matrix): per character column, a handful
    of vectorized compares advance every row's phase at once — no per-row
    Python, no regex.  Returns ``(shard, row, row_digits, ok)`` where
    ``ok`` marks rows whose id is *exactly* canonical: leading ``s``,
    shard digits with no leading zero (except ``0`` itself), the literal
    ``-hh``, row digits, then nothing but padding.  Combined with the
    registration-recorded row width, ``ok`` proves the id reconstructs
    verbatim — a lookalike (wrong zero-padding, stray suffix) parses as
    not-ok and falls back to dictionary routing instead of misrouting.
    """
    n = ids.shape[0]
    shard = np.zeros(n, dtype=np.int64)
    row = np.zeros(n, dtype=np.int64)
    row_d = np.zeros(n, dtype=np.int16)
    if n == 0 or ids.dtype.kind != "U":
        return shard, row, row_d, np.zeros(n, dtype=bool)
    width = ids.dtype.itemsize // 4
    if width < 6:  # shortest canonical id is "s0-hh0"
        return shard, row, row_d, np.zeros(n, dtype=bool)
    chars = np.ascontiguousarray(ids).view(np.uint32).reshape(n, width)
    ok = chars[:, 0] == _ORD_S
    # Phases: 0 shard digits, 1/2 expecting 'h', 3 row digits, 4 padding.
    phase = np.zeros(n, dtype=np.int8)
    shard_d = np.zeros(n, dtype=np.int16)
    lead_zero = chars[:, 1] == _ORD_0
    for col in range(1, width):
        c = chars[:, col]
        digit = (c >= _ORD_0) & (c <= _ORD_9)
        value = (c - _ORD_0).astype(np.int64)
        p0 = phase == 0
        p1 = phase == 1
        p2 = phase == 2
        p3 = phase == 3
        p4 = phase == 4
        in_shard = p0 & digit
        in_row = p3 & digit
        shard = np.where(in_shard, shard * 10 + value, shard)
        row = np.where(in_row, row * 10 + value, row)
        shard_d = shard_d + in_shard
        row_d = row_d + in_row
        dash = c == _ORD_DASH
        nul = c == 0
        bad = (
            (p0 & ~digit & ~dash)
            | ((p1 | p2) & (c != _ORD_H))
            | (p3 & ~digit & ~nul)
            | (p4 & ~nul)
        )
        ok &= ~bad
        phase = phase + (p0 & dash) + p1 + p2 + (p3 & nul)
    ok &= (shard_d >= 1) & (row_d >= 1) & (phase >= 3)
    ok &= ~(lead_zero & (shard_d > 1))
    return shard, row, row_d, ok


class ShardAssembler:
    """Scatter target for one registered shard's streamed reports.

    Writes routed rows straight into the writable ``rep_*`` views of the
    shard's shared-memory day segment — after the scatter there is no
    further copy anywhere: the worker settles the same bytes.  Tracks
    fill state for exactly-once semantics (within-batch and cross-batch
    duplicates are dropped, first write wins) and counts flush-time
    admission *suspects* — rows the settlement quarantine will flag,
    detected here with the same vectorized
    :func:`~repro.robustness.quarantine.malformed_mask`.
    """

    def __init__(self, index: int, job: ShardJob, width: int) -> None:
        self.index = index
        self.job = job
        self.n = len(job.day)
        #: Zero-padded row-digit count of canonical ids; 0 = dict-routed.
        self.width = width
        self._begin, self._end, self._duration = job.day.writable_report_views()
        self._metered = job.day.column("duration")
        self._filled = np.zeros(self.n, dtype=bool)
        self.count = 0
        self.duplicates = 0
        self.suspects = 0
        self.sealed = False

    @property
    def complete(self) -> bool:
        return self.count == self.n

    def scatter(
        self,
        rows: np.ndarray,
        begin: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
    ) -> int:
        """Write a routed micro-batch slice; returns rows newly filled."""
        if self.sealed:
            raise RuntimeError(f"shard {self.index} is sealed")
        unique_rows, first_seen = np.unique(rows, return_index=True)
        fresh = ~self._filled[unique_rows]
        keep = unique_rows[fresh]
        src = first_seen[fresh]
        self.duplicates += int(rows.shape[0] - keep.shape[0])
        if keep.shape[0] == 0:
            return 0
        kept_begin = begin[src]
        kept_end = end[src]
        kept_duration = duration[src]
        self._begin[keep] = kept_begin
        self._end[keep] = kept_end
        self._duration[keep] = kept_duration
        self._filled[keep] = True
        self.count += int(keep.shape[0])
        self.suspects += int(
            np.count_nonzero(
                malformed_mask(
                    kept_begin, kept_end, kept_duration, self._metered[keep]
                )
            )
        )
        return int(keep.shape[0])

    def seal(self) -> None:
        """Freeze the shard: its job is queue-bound, late rows bounce."""
        self.sealed = True


@dataclass
class StreamStats:
    """Operational counters for one ingestor's lifetime."""

    reports_in: int = 0
    chunks_in: int = 0
    flushes: int = 0
    flush_reasons: Dict[str, int] = field(default_factory=dict)
    shards_completed: int = 0
    unknown_rejected: int = 0
    duplicates: int = 0
    late_rows: int = 0
    replay_dropped: int = 0
    suspects: int = 0


class StreamIngestor:
    """The adaptive micro-batch coalescer in front of the shard queue.

    Owns the append buffer, the shard router and the per-shard
    assemblers.  Flush discipline mirrors the ingest queue's hysteresis
    thinking: a *size watermark* bounds per-flush latency, an *age
    deadline* bounds how stale a trickle can get, and *shard completion*
    flushes eagerly so a finished shard reaches the supervisor without
    waiting for unrelated traffic.

    Args:
        queue: The service's bounded queue (admission accounting and
            drain-rate retry hints are shared with the batch path).
        enqueue: Callback handing a sealed shard's job to the service;
            raises :class:`ServiceOverloadError` on refusal.
        on_event: Optional audit hook ``(kind, shard_index, payload)``.
        flush_rows: Size watermark.
        flush_age_s: Age deadline (``None`` disables age flushes).
        clock: Monotonic time source (injectable).
    """

    def __init__(
        self,
        queue: BoundedIngestQueue,
        enqueue: Callable[[int, ShardJob], None],
        on_event: Optional[Callable[[str, int, Dict[str, Any]], None]] = None,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        flush_age_s: Optional[float] = DEFAULT_FLUSH_AGE_S,
        clock=time.monotonic,
    ) -> None:
        if flush_rows < 1:
            raise ValueError(f"flush_rows must be >= 1, got {flush_rows}")
        self._queue = queue
        self._enqueue = enqueue
        self._on_event = on_event
        self.flush_rows = flush_rows
        self.flush_age_s = flush_age_s
        self._clock = clock
        self._builder = ColumnarReportBuilder(capacity=flush_rows)
        self._assemblers: Dict[int, ShardAssembler] = {}
        self._replayed: Set[int] = set()
        self._ready: Deque[int] = deque()
        # Registration lookup arrays indexed by shard: expected row count
        # (0 = unregistered) and canonical row width (0 = dict-routed).
        self._reg_n = np.zeros(0, dtype=np.int64)
        self._reg_w = np.zeros(0, dtype=np.int64)
        self._fallback: Dict[str, Tuple[int, int]] = {}
        self.stats = StreamStats()

    # ------------------------------------------------------ registration

    def _grow_registry(self, index: int) -> None:
        if index < self._reg_n.shape[0]:
            return
        grown_n = np.zeros(index + 1, dtype=np.int64)
        grown_w = np.zeros(index + 1, dtype=np.int64)
        grown_n[: self._reg_n.shape[0]] = self._reg_n
        grown_w[: self._reg_w.shape[0]] = self._reg_w
        self._reg_n = grown_n
        self._reg_w = grown_w

    def _register_id_space(
        self, index: int, ids: Sequence[str], assume_canonical: bool
    ) -> int:
        """Record how shard ``index``'s ids route; returns canonical width.

        With ``assume_canonical`` the caller vouches the ids are the
        generated ``s<index>-hh<row>`` scheme (the city driver constructs
        them itself); otherwise one vectorized parse verifies it, and
        non-canonical shards get a dictionary instead.
        """
        n = len(ids)
        width = len(str(max(1, n) - 1))
        if not assume_canonical:
            arr = np.asarray(ids)
            shard, row, row_d, ok = parse_canonical_ids(arr)
            canonical = (
                bool(ok.all())
                and bool((shard == index).all())
                and bool((row_d == row_d[0]).all())
                and np.array_equal(row, np.arange(n, dtype=np.int64))
            )
            if not canonical:
                for row_index, household_id in enumerate(ids):
                    self._fallback[str(household_id)] = (index, row_index)
                width = 0
            else:
                width = int(row_d[0])
        self._grow_registry(index)
        self._reg_n[index] = n
        self._reg_w[index] = width
        return width

    def register(
        self,
        index: int,
        job: ShardJob,
        ids: Sequence[str],
        assume_canonical_ids: bool = False,
    ) -> None:
        """Open shard ``index`` for streamed ingestion."""
        if index in self._assemblers or index in self._replayed:
            raise ValueError(f"shard {index} already registered")
        if not job.day.has_reports:
            raise ValueError(
                f"shard {index}'s day was packed without report columns"
            )
        width = self._register_id_space(index, ids, assume_canonical_ids)
        self._assemblers[index] = ShardAssembler(index, job, width)

    def register_replayed(
        self, index: int, ids: Optional[Sequence[str]] = None
    ) -> None:
        """Mark shard ``index`` journal-replayed: its rows drop silently.

        With ``ids`` the shard's id space still routes (arriving rows are
        counted as ``replay_dropped``); without it the replay fast path
        skipped sampling, so stray rows for the shard — which a resumed
        driver does not send — are rejected as unknown instead.
        """
        if index in self._assemblers or index in self._replayed:
            raise ValueError(f"shard {index} already registered")
        self._replayed.add(index)
        if ids is not None:
            self._register_id_space(index, ids, assume_canonical=False)

    # -------------------------------------------------------- ingestion

    @property
    def ready_backlog(self) -> int:
        """Sealed shards waiting for a queue slot."""
        return len(self._ready)

    def occupancy(self) -> int:
        """Reports buffered but not yet flushed."""
        return len(self._builder)

    def incomplete(self) -> Tuple[int, ...]:
        """Registered shards still missing rows (post-flush view)."""
        return tuple(
            sorted(
                index
                for index, assembler in self._assemblers.items()
                if not assembler.sealed
            )
        )

    def _overload(self) -> ServiceOverloadError:
        backlog = max(1, self._queue.depth - self._queue.low_watermark) + len(
            self._ready
        )
        return ServiceOverloadError(
            retry_after_s=self._queue.retry_hint(backlog),
            depth=self._queue.depth + len(self._ready),
            capacity=self._queue.capacity,
        )

    def submit(
        self, reports: Union[RawReport, ReportChunk, Iterable[RawReport]]
    ) -> int:
        """Ingest a report, a chunk, or an iterable of reports.

        All-or-nothing per call: if backpressure applies (sealed shards
        are stuck behind a saturated queue), the call raises **before**
        buffering anything, so resubmitting the same payload after
        pumping neither loses nor duplicates a report.

        Raises:
            ServiceOverloadError: Combined builder/queue backpressure;
                nothing from this call was ingested.
        """
        self.drain_ready()
        if self._ready:
            raise self._overload()
        now = self._clock()
        if isinstance(reports, ReportChunk):
            accepted = self._builder.append_columnar(
                reports.ids, reports.begin, reports.end, reports.duration, now=now
            )
            self.stats.chunks_in += 1
        elif isinstance(reports, RawReport):
            self._builder.append(reports, now=now)
            accepted = 1
        else:
            accepted = 0
            for report in reports:
                self._builder.append(report, now=now)
                accepted += 1
        self.stats.reports_in += accepted
        if len(self._builder) >= self.flush_rows:
            self.flush(reason="size")
        elif (
            self.flush_age_s is not None
            and len(self._builder)
            and self._builder.age_s(self._clock()) >= self.flush_age_s
        ):
            self.flush(reason="age")
        return accepted

    # ------------------------------------------------------ micro-batch

    def flush(self, reason: str = "explicit") -> None:
        """Route and scatter the buffered micro-batch (synchronous)."""
        drained = self._builder.drain()
        if drained is None:
            self.drain_ready()
            return
        ids, begin, end, duration = drained
        self.stats.flushes += 1
        self.stats.flush_reasons[reason] = (
            self.stats.flush_reasons.get(reason, 0) + 1
        )
        shard, row, row_d, ok = parse_canonical_ids(ids)
        capacity = self._reg_n.shape[0]
        if capacity:
            clipped = np.clip(shard, 0, capacity - 1)
            routed = (
                ok
                & (shard < capacity)
                & (self._reg_n[clipped] > 0)
                & (row < self._reg_n[clipped])
                & (row_d == self._reg_w[clipped])
            )
        else:
            routed = np.zeros(ids.shape[0], dtype=bool)
        misses = np.flatnonzero(~routed)
        if misses.size:
            unknown = 0
            for i in misses.tolist():
                hit = self._fallback.get(ids[i])
                if hit is None:
                    unknown += 1
                    continue
                shard[i], row[i] = hit
                routed[i] = True
            if unknown:
                self.stats.unknown_rejected += unknown
                self._event(
                    "stream_reports_rejected",
                    -1,
                    {"count": unknown, "reason": "unknown-household"},
                )
        for index in np.unique(shard[routed]).tolist():
            mask = routed & (shard == index)
            count = int(np.count_nonzero(mask))
            if index in self._replayed:
                self.stats.replay_dropped += count
                continue
            assembler = self._assemblers[index]
            if assembler.sealed:
                self.stats.late_rows += count
                self._event(
                    "stream_reports_rejected",
                    index,
                    {"count": count, "reason": "shard-sealed"},
                )
                continue
            before_duplicates = assembler.duplicates
            assembler.scatter(row[mask], begin[mask], end[mask], duration[mask])
            self.stats.duplicates += assembler.duplicates - before_duplicates
            if assembler.complete:
                assembler.seal()
                self._ready.append(index)
                self.stats.shards_completed += 1
                self.stats.suspects += assembler.suspects
                self._event(
                    "stream_shard_complete",
                    index,
                    {
                        "rows": assembler.n,
                        "suspect_rows": assembler.suspects,
                        "duplicate_rows": assembler.duplicates,
                    },
                )
        self.drain_ready()

    def drain_ready(self) -> None:
        """Offer sealed shards to the queue until it pushes back."""
        while self._ready:
            index = self._ready[0]
            try:
                self._enqueue(index, self._assemblers[index].job)
            except ServiceOverloadError:
                return
            self._ready.popleft()

    def _event(self, kind: str, index: int, payload: Dict[str, Any]) -> None:
        if self._on_event is not None:
            self._on_event(kind, index, payload)
