"""Worker-pool supervision: deadlines, retries, and pool replacement.

:func:`~repro.sim.parallel.map_tasks` is a *batch* primitive — it owns a
fixed payload list and, when retries run out, re-runs payloads inline so
the batch always completes.  A long-lived service needs the opposite
shape: shards arrive incrementally, each has a wall-clock deadline, and a
shard that exhausts its retries must be *surfaced* (so the service can
route it to the degraded tier), never silently re-run on the primary
path it already failed.  :class:`ShardSupervisor` is that shape: an
incremental submit/step loop over one owned
:class:`~concurrent.futures.ProcessPoolExecutor` that

* retries failed attempts with the shared jittered exponential backoff
  (:func:`~repro.sim.parallel.backoff_delay`),
* kills and replaces the pool on ``BrokenProcessPool`` (a SIGKILLed
  worker) without losing any in-flight shard,
* enforces a per-shard deadline: breachers burn an attempt, innocent
  bystanders are resubmitted without penalty, and
* reports every terminal outcome as a :class:`ShardCompletion` — value
  or cause, plus the attempt count — leaving policy to the caller.

``workers=1`` runs inline in the calling process with the same retry
and (post-hoc) deadline accounting, so a serial service degrades the
same shards a parallel one does.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..kernels import warm_kernels
from ..sim.parallel import (
    DEFAULT_BACKOFF_S,
    DEFAULT_JITTER,
    DEFAULT_RETRIES,
    _kill_pool,
    backoff_delay,
    resolve_workers,
)


@dataclass
class ShardCompletion:
    """One shard's terminal outcome at the supervisor level.

    ``value`` is the worker's return on success and ``None`` on failure,
    in which case ``cause`` says why the *last* attempt failed.
    ``attempts`` counts every attempt made, successful one included.
    """

    key: int
    value: Optional[Any]
    attempts: int
    cause: str = ""

    @property
    def ok(self) -> bool:
        return self.cause == ""


@dataclass
class _Entry:
    """Book-keeping for one submitted shard."""

    key: int
    payload: Any
    attempt: int = 1
    started_at: float = 0.0
    ready_at: float = 0.0
    causes: List[str] = field(default_factory=list)


class ShardSupervisor:
    """Supervises shard attempts on an owned worker pool.

    Args:
        fn: Module-level (picklable) worker function of one payload.
        workers: Pool size (see :func:`~repro.sim.parallel.
            resolve_workers`); ``1`` runs inline.
        deadline_s: Per-shard wall-clock deadline.  In pool mode a breach
            kills the worker processes (a hung solve cannot be preempted
            politely) and costs the breaching shard one attempt; inline
            it is checked after the call returns.  ``None`` disables it.
        retries: Re-attempts after the first failure before the shard is
            surfaced as failed.
        backoff_s / jitter: Retry pacing, shared with
            :func:`~repro.sim.parallel.map_tasks`.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: Optional[int] = 1,
        deadline_s: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        jitter: float = DEFAULT_JITTER,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries cannot be negative, got {retries}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        self.fn = fn
        self.workers = resolve_workers(workers)
        self.deadline_s = deadline_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.jitter = jitter
        self.pool_replacements = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[Future, _Entry] = {}
        self._backlog: List[_Entry] = []
        self._completions: List[ShardCompletion] = []

    @property
    def load(self) -> int:
        """Shards the supervisor currently owns (in flight or backing off)."""
        return len(self._inflight) + len(self._backlog)

    @property
    def idle(self) -> bool:
        return self.load == 0

    # ------------------------------------------------------------ pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Warm the JIT kernel cache in the parent first — forked
            # workers inherit it, and the degraded tier (which settles
            # sick shards inline in this process) never pays a compile
            # mid-incident.  Then once per worker, not per shard.
            warm_kernels()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=warm_kernels
            )
        return self._pool

    def _replace_pool(self) -> None:
        """Kill the current pool's processes and forget it (lazily rebuilt)."""
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None
            self.pool_replacements += 1

    def close(self) -> None:
        """Shut the pool down; in-flight futures are abandoned."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------ submission

    def submit(self, key: int, payload: Any) -> None:
        """Accept a shard for settlement (first attempt dispatches now)."""
        entry = _Entry(key=key, payload=payload)
        if self.workers <= 1:
            self._run_inline(entry)
        else:
            self._dispatch(entry)

    def _dispatch(self, entry: _Entry) -> None:
        while True:
            entry.started_at = time.monotonic()
            try:
                future = self._ensure_pool().submit(self.fn, entry.payload)
            except BrokenProcessPool:
                # A worker died and the executor noticed before we did:
                # submit() itself refuses.  Charge the shards that were in
                # flight on the broken pool (their futures are dead),
                # rebuild, and dispatch this entry — which was never
                # accepted, so it is not charged — on the fresh pool.
                survivors = list(self._inflight.values())
                self._inflight.clear()
                self._replace_pool()
                for other in survivors:
                    self._fail_attempt(other, "process pool broke (worker died)")
                continue
            break
        self._inflight[future] = entry

    def _run_inline(self, entry: _Entry) -> None:
        """Serial mode: the whole retry loop, synchronously."""
        while True:
            started_at = time.monotonic()
            cause = ""
            value = None
            try:
                value = self.fn(entry.payload)
            except Exception as exc:
                cause = f"{type(exc).__name__}: {exc}"
            elapsed = time.monotonic() - started_at
            if (
                cause == ""
                and self.deadline_s is not None
                and elapsed > self.deadline_s
            ):
                # Inline there is no way to preempt, so the deadline is
                # enforced after the fact — the attempt still burns.
                cause = f"deadline exceeded ({elapsed:.3f}s > {self.deadline_s}s)"
            if cause == "":
                self._completions.append(
                    ShardCompletion(entry.key, value, entry.attempt)
                )
                return
            entry.causes.append(cause)
            if entry.attempt > self.retries:
                self._completions.append(
                    ShardCompletion(entry.key, None, entry.attempt, cause)
                )
                return
            time.sleep(backoff_delay(entry.attempt, self.backoff_s, self.jitter))
            entry.attempt += 1

    # ------------------------------------------------------- main loop

    def step(self, block: bool = True) -> List[ShardCompletion]:
        """Advance the supervisor and return newly-terminal shards.

        Dispatches backed-off retries whose delay has elapsed, waits for
        (``block=True``) or polls (``block=False``) the pool, applies
        deadline and crash handling, and drains the completion buffer.
        """
        now = time.monotonic()
        for entry in [e for e in self._backlog if e.ready_at <= now]:
            self._backlog.remove(entry)
            self._dispatch(entry)
        if self._inflight:
            self._await_pool(block)
        elif self._backlog and block:
            # Nothing in flight: sleep out the nearest backoff so a
            # blocking step always makes progress.
            delay = min(e.ready_at for e in self._backlog) - now
            if delay > 0:
                time.sleep(delay)
            return self.step(block=False)
        completions, self._completions = self._completions, []
        return completions

    def _await_pool(self, block: bool) -> None:
        timeout: Optional[float] = 0.0
        if block:
            timeout = None
            if self.deadline_s is not None:
                nearest = min(e.started_at for e in self._inflight.values())
                timeout = max(0.0, nearest + self.deadline_s - time.monotonic())
            if self._backlog:
                ready = min(e.ready_at for e in self._backlog) - time.monotonic()
                ready = max(0.0, ready)
                timeout = ready if timeout is None else min(timeout, ready)
        done, _ = wait(self._inflight, timeout=timeout, return_when=FIRST_COMPLETED)
        broken = False
        for future in done:
            entry = self._inflight.pop(future)
            try:
                value = future.result()
            except BrokenProcessPool:
                broken = True
                self._fail_attempt(entry, "process pool broke (worker died)")
            except Exception as exc:
                self._fail_attempt(entry, f"{type(exc).__name__}: {exc}")
            else:
                self._completions.append(
                    ShardCompletion(entry.key, value, entry.attempt)
                )
        if broken:
            # The pool is unusable: every other in-flight shard failed
            # with it.  Replace the pool and charge them all one attempt
            # (there is no telling whose worker died).
            survivors = list(self._inflight.values())
            self._inflight.clear()
            self._replace_pool()
            for entry in survivors:
                self._fail_attempt(entry, "process pool broke (worker died)")
            return
        self._check_deadlines()

    def _check_deadlines(self) -> None:
        if self.deadline_s is None or not self._inflight:
            return
        now = time.monotonic()
        breached = {
            future
            for future, entry in self._inflight.items()
            if now - entry.started_at > self.deadline_s and not future.done()
        }
        if not breached:
            return
        # A hung worker cannot be preempted politely: kill the pool's
        # processes.  Breachers burn an attempt; bystanders caught in the
        # same pool are resubmitted without penalty.
        bystanders = [
            entry
            for future, entry in self._inflight.items()
            if future not in breached and not future.done()
        ]
        breachers = [self._inflight[future] for future in breached]
        self._inflight.clear()
        self._replace_pool()
        for entry in breachers:
            self._fail_attempt(
                entry, f"deadline exceeded (no result within {self.deadline_s}s)"
            )
        for entry in bystanders:
            self._dispatch(entry)

    def _fail_attempt(self, entry: _Entry, cause: str) -> None:
        entry.causes.append(cause)
        if entry.attempt > self.retries:
            self._completions.append(
                ShardCompletion(entry.key, None, entry.attempt, cause)
            )
            return
        entry.ready_at = time.monotonic() + backoff_delay(
            entry.attempt, self.backoff_s, self.jitter
        )
        entry.attempt += 1
        self._backlog.append(entry)
