"""Simulation substrate: workloads, engines and metrics for Section VI."""

from .appliance_models import (
    STANDARD_ARCHETYPES,
    ApplianceArchetype,
    build_multi_appliance_population,
    population_statistics,
)
from .engine import (
    AllocatorDayRecord,
    ConsumptionPolicy,
    NeighborhoodSimulation,
    ReportPolicy,
    SocialWelfareStudy,
    follow_or_closest_policy,
    truthful_report_policy,
)
from .metrics import SeriesPoint, speedup_series, summarize_records
from .profiles import (
    ProfileGenerator,
    ProfileGeneratorConfig,
    UsageProfile,
    neighborhood_from_profiles,
)
from .results import format_table
from .rng import make_rngs, spawn_seed
from .season import DAYS_PER_WEEK, SeasonResult, SeasonSimulator, WeeklyKpis

__all__ = [
    "ApplianceArchetype",
    "STANDARD_ARCHETYPES",
    "build_multi_appliance_population",
    "population_statistics",
    "AllocatorDayRecord",
    "SocialWelfareStudy",
    "NeighborhoodSimulation",
    "ReportPolicy",
    "ConsumptionPolicy",
    "truthful_report_policy",
    "follow_or_closest_policy",
    "SeriesPoint",
    "summarize_records",
    "speedup_series",
    "ProfileGenerator",
    "ProfileGeneratorConfig",
    "UsageProfile",
    "neighborhood_from_profiles",
    "format_table",
    "make_rngs",
    "spawn_seed",
    "DAYS_PER_WEEK",
    "SeasonSimulator",
    "SeasonResult",
    "WeeklyKpis",
]
