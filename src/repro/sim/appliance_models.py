"""Realistic shiftable-appliance archetypes.

The paper motivates its abstract single-load model with "a notional
appliance" and cites EV charging as the natural application; its future
work plans "a variety of appliances" (Aksanli et al., ref [37]).  This
module provides a small library of shiftable appliance archetypes with
realistic ratings, durations and time windows, plus a builder that
assembles multi-appliance households for the
:mod:`repro.extensions.appliances` extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import Preference
from ..extensions.appliances import ApplianceRequest, MultiApplianceHousehold


@dataclass(frozen=True)
class ApplianceArchetype:
    """A class of shiftable appliance and its usage distribution.

    Attributes:
        name: Archetype label (also the appliance name in requests).
        rating_kw: Power draw while running.
        min_duration / max_duration: Contiguous run length in hours.
        earliest_start / latest_end: The admissible daily band.
        typical_window_hours: How wide the household's tolerance window is
            (drawn uniformly between duration and this).
        adoption_rate: Fraction of homes owning the appliance.
    """

    name: str
    rating_kw: float
    min_duration: int
    max_duration: int
    earliest_start: int
    latest_end: int
    typical_window_hours: int
    adoption_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rating_kw <= 0:
            raise ValueError(f"{self.name}: rating must be positive")
        if not 1 <= self.min_duration <= self.max_duration:
            raise ValueError(f"{self.name}: bad duration range")
        if not 0 <= self.earliest_start < self.latest_end <= HOURS_PER_DAY:
            raise ValueError(f"{self.name}: bad admissible band")
        if self.latest_end - self.earliest_start < self.max_duration:
            raise ValueError(f"{self.name}: band shorter than max duration")
        if self.typical_window_hours < self.max_duration:
            raise ValueError(f"{self.name}: typical window shorter than duration")
        if not 0.0 < self.adoption_rate <= 1.0:
            raise ValueError(f"{self.name}: adoption rate must be in (0, 1]")

    def sample_request(self, rng: np.random.Generator) -> ApplianceRequest:
        """Draw one day's request for this appliance."""
        duration = int(rng.integers(self.min_duration, self.max_duration + 1))
        band = self.latest_end - self.earliest_start
        width = int(
            rng.integers(duration, min(self.typical_window_hours, band) + 1)
        )
        start = int(
            rng.integers(self.earliest_start, self.latest_end - width + 1)
        )
        return ApplianceRequest(
            name=self.name,
            preference=Preference(Interval(start, start + width), duration),
            rating_kw=self.rating_kw,
        )


#: Level-2 EV charger: evening-to-night, long runs, high draw.
EV_CHARGER = ApplianceArchetype(
    name="ev",
    rating_kw=7.2,
    min_duration=2,
    max_duration=4,
    earliest_start=16,
    latest_end=24,
    typical_window_hours=8,
    adoption_rate=0.5,
)

#: Dishwasher: after meals, short run.
DISHWASHER = ApplianceArchetype(
    name="dishwasher",
    rating_kw=1.8,
    min_duration=1,
    max_duration=2,
    earliest_start=18,
    latest_end=24,
    typical_window_hours=5,
    adoption_rate=0.8,
)

#: Washing machine: daytime-flexible.
WASHER = ApplianceArchetype(
    name="washer",
    rating_kw=0.9,
    min_duration=1,
    max_duration=2,
    earliest_start=8,
    latest_end=22,
    typical_window_hours=8,
    adoption_rate=0.9,
)

#: Clothes dryer: follows the washer, higher draw.
DRYER = ApplianceArchetype(
    name="dryer",
    rating_kw=3.0,
    min_duration=1,
    max_duration=2,
    earliest_start=9,
    latest_end=23,
    typical_window_hours=7,
    adoption_rate=0.7,
)

#: Pool pump: long daytime run, very flexible.
POOL_PUMP = ApplianceArchetype(
    name="pool_pump",
    rating_kw=1.1,
    min_duration=3,
    max_duration=4,
    earliest_start=6,
    latest_end=20,
    typical_window_hours=12,
    adoption_rate=0.2,
)

#: Electric water heater (shiftable reheat cycle).
WATER_HEATER = ApplianceArchetype(
    name="water_heater",
    rating_kw=4.5,
    min_duration=1,
    max_duration=2,
    earliest_start=4,
    latest_end=23,
    typical_window_hours=6,
    adoption_rate=0.4,
)

#: The default archetype mix.
STANDARD_ARCHETYPES: Tuple[ApplianceArchetype, ...] = (
    EV_CHARGER,
    DISHWASHER,
    WASHER,
    DRYER,
    POOL_PUMP,
    WATER_HEATER,
)


def build_multi_appliance_population(
    rng: np.random.Generator,
    n_households: int,
    archetypes: Sequence[ApplianceArchetype] = STANDARD_ARCHETYPES,
    min_valuation: float = 1.0,
    max_valuation: float = 10.0,
    base_charge: float = 1.0,
    id_prefix: str = "home",
) -> List[MultiApplianceHousehold]:
    """Draw a neighborhood of multi-appliance homes.

    Each home owns each archetype independently with its adoption rate;
    homes that would end up empty get the most common archetype so every
    household participates.
    """
    if n_households < 1:
        raise ValueError(f"need at least one household, got {n_households}")
    fallback = max(archetypes, key=lambda a: a.adoption_rate)
    households: List[MultiApplianceHousehold] = []
    width = len(str(n_households - 1))
    for index in range(n_households):
        requests: List[ApplianceRequest] = []
        for archetype in archetypes:
            if rng.random() < archetype.adoption_rate:
                requests.append(archetype.sample_request(rng))
        if not requests:
            requests.append(fallback.sample_request(rng))
        households.append(
            MultiApplianceHousehold(
                household_id=f"{id_prefix}{index:0{width}d}",
                appliances=tuple(requests),
                valuation_factor=float(rng.uniform(min_valuation, max_valuation)),
                base_charge=base_charge,
            )
        )
    return households


def population_statistics(
    households: Sequence[MultiApplianceHousehold],
) -> Dict[str, float]:
    """Summary counts used by tests and examples."""
    total_appliances = sum(len(hh.appliances) for hh in households)
    by_name: Dict[str, int] = {}
    for household in households:
        for appliance in household.appliances:
            by_name[appliance.name] = by_name.get(appliance.name, 0) + 1
    stats: Dict[str, float] = {
        "households": float(len(households)),
        "appliances": float(total_appliances),
        "appliances_per_household": total_appliances / len(households),
    }
    for name, count in sorted(by_name.items()):
        stats[f"count_{name}"] = float(count)
    return stats
