"""Simulation engines for the Section VI studies.

Two drivers live here:

* :class:`SocialWelfareStudy` — the Figures 4-6 engine: for each day it
  samples a fresh population, gives every allocator the same truthful
  reports, and records peak-to-average ratio, neighborhood cost and
  scheduling time per allocator.
* :class:`NeighborhoodSimulation` — a general multi-day run of the full
  Enki mechanism with pluggable reporting/consumption policies, used by the
  incentive-compatibility experiment, the theory property checkers and the
  examples.

Both engines treat each simulated day as an independent task driven by its
own keyed RNG substream (:func:`repro.sim.rng.make_day_rngs`), so a run is
a pure function of ``(seed, day)`` per day.  The ``workers`` knob fans the
day loop across a process pool (:mod:`repro.sim.parallel`); parallel runs
are bit-identical to serial runs at the same seed because no generator
state crosses a day boundary.

Both engines also plug into the robustness stack: an optional report
``quarantine`` screens each day's submissions, an optional ``chaos``
injector exercises the failure paths deterministically, an optional
``checkpoint`` store persists each day as it completes (and lets a rerun
resume where a killed run stopped), and an optional ``audit`` log receives
structured records for every quarantined report, fallback-served solve and
recovered worker failure.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, fields as dataclass_fields
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..allocation.base import (
    AllocationProblem,
    Allocator,
    ColumnarAllocationResult,
)
from ..core.columnar import (
    ColumnarDayBatch,
    ColumnarNeighborhood,
    ColumnarReports,
)
from ..core.intervals import Interval
from ..core.mechanism import (
    ColumnarDayOutcome,
    DayOutcome,
    EnkiMechanism,
    closest_feasible_consumption,
)
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Report,
)
from ..io.audit import AuditEvent, AuditLog
from ..io.serialize import day_outcome_from_dict, day_outcome_to_dict
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from ..robustness.chaos import ChaosInjector
from ..robustness.checkpoint import CheckpointError, CheckpointStore, day_key
from ..robustness.quarantine import Quarantine
from .parallel import DEFAULT_RETRIES, map_tasks
from .profiles import ProfileGenerator, neighborhood_from_profiles
from .rng import make_day_rngs, root_entropy, spawn_seed
from .shm import SharedArena, SharedColumnarDay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..allocation.cache import AllocationCache


@dataclass(frozen=True)
class AllocatorDayRecord:
    """One allocator's performance on one simulated day.

    ``served_tier`` is non-zero when a fallback chain degraded past its
    primary solver for this day (see :mod:`repro.robustness.fallback`).
    ``cache_hit`` marks a day whose allocation was replayed from an
    :class:`~repro.allocation.cache.AllocationCache` instead of solved.
    """

    day: int
    n_households: int
    allocator: str
    par: float
    cost: float
    wall_time_s: float
    proven_optimal: bool
    nodes_explored: int
    served_tier: int = 0
    cache_hit: bool = False


_RECORD_FIELDS = frozenset(f.name for f in dataclass_fields(AllocatorDayRecord))


def _record_from_dict(document: Dict[str, Any]) -> AllocatorDayRecord:
    """Rebuild a checkpointed record, ignoring unknown/missing extras."""
    return AllocatorDayRecord(
        **{key: value for key, value in document.items() if key in _RECORD_FIELDS}
    )


#: A study worker's per-day result: records, quarantine decision payloads
#: and fallback-trail payloads (the latter two JSON-safe for checkpoints).
StudyDayResult = Tuple[List[AllocatorDayRecord], List[Dict], List[Dict]]


def _run_study_day(
    task: Tuple["SocialWelfareStudy", int, int, int],
) -> StudyDayResult:
    """One Figures 4-6 day: sample a population, run every allocator.

    Module-level so the parallel runtime can pickle it; ``task`` carries
    the study (its allocators, generator and pricing), the root entropy,
    the day index and the population size.
    """
    study, root, day, n_households = task
    if study.chaos is not None:
        study.chaos.before_day(day)
    py_rng, np_rng = make_day_rngs(root, day)
    if study.columnar:
        return _run_study_day_columnar(study, py_rng, np_rng, day, n_households)
    profiles = study.generator.sample_population(np_rng, n_households)
    neighborhood = neighborhood_from_profiles(profiles, study.true_preference)
    reports = {
        hh.household_id: Report(hh.household_id, hh.true_preference)
        for hh in neighborhood
    }
    quarantine_payloads: List[Dict] = []
    if study.chaos is not None:
        reports = study.chaos.corrupt_reports(day, reports)
    if study.quarantine is not None:
        screened = study.quarantine.screen(neighborhood, reports)
        reports = screened.accepted
        quarantine_payloads = [
            decision.as_payload()
            for decision in screened.decisions
            if decision.action != "accepted"
        ]
    problem = AllocationProblem.from_reports(
        reports, neighborhood.households, study.pricing
    )
    records: List[AllocatorDayRecord] = []
    fallback_payloads: List[Dict] = []
    for allocator in study.allocators:
        result = allocator.solve(problem, random.Random(spawn_seed(py_rng)))
        profile = LoadProfile.from_schedule(
            result.allocation, neighborhood.households
        )
        records.append(
            AllocatorDayRecord(
                day=day,
                n_households=n_households,
                allocator=allocator.name,
                par=profile.peak_to_average_ratio(),
                cost=result.cost,
                wall_time_s=result.wall_time_s,
                proven_optimal=result.proven_optimal,
                nodes_explored=result.nodes_explored,
                served_tier=result.served_tier,
                cache_hit=result.cache_hit,
            )
        )
        if result.served_tier > 0:
            fallback_payloads.append(
                {
                    "allocator": allocator.name,
                    "served_tier": result.served_tier,
                    "trail": [record.as_payload() for record in result.fallback_trail],
                }
            )
    return records, quarantine_payloads, fallback_payloads


def _run_study_day_columnar(
    study: "SocialWelfareStudy",
    py_rng: random.Random,
    np_rng,
    day: int,
    n_households: int,
) -> StudyDayResult:
    """The columnar (large-n) study day: no per-household objects.

    Sampling uses :meth:`ProfileGenerator.sample_population_columnar` —
    its own draw sequence on the day's keyed substream — so the columnar
    study's records are reproducible per ``(seed, day)`` and bit-identical
    across worker counts, but are *not* the object study's records at the
    same seed (see ``docs/performance.md``).
    """
    cols = study.generator.sample_population_columnar(np_rng, n_households)
    neighborhood = cols.to_neighborhood(study.true_preference)
    reports = ColumnarReports.truthful(neighborhood)
    quarantine_payloads: List[Dict] = []
    if study.quarantine is not None:
        screened = study.quarantine.screen_columnar(
            neighborhood,
            reports.start.astype(float),
            reports.end.astype(float),
            reports.duration.astype(float),
        )
        quarantine_payloads = [
            decision.as_payload()
            for decision in screened.decisions
            if decision.action != "accepted"
        ]
        neighborhood = neighborhood.take(screened.kept)
        reports = screened.accepted
    compiled = reports.compile(neighborhood, study.pricing)
    records: List[AllocatorDayRecord] = []
    fallback_payloads: List[Dict] = []
    for allocator in study.allocators:
        result = allocator.solve_columnar(
            compiled, study.pricing, random.Random(spawn_seed(py_rng))
        )
        profile = LoadProfile.from_arrays(
            result.starts, result.starts + compiled.duration, compiled.rating
        )
        records.append(
            AllocatorDayRecord(
                day=day,
                n_households=n_households,
                allocator=allocator.name,
                par=profile.peak_to_average_ratio(),
                cost=result.cost,
                wall_time_s=result.wall_time_s,
                proven_optimal=result.proven_optimal,
                nodes_explored=result.nodes_explored,
                served_tier=result.served_tier,
                cache_hit=result.cache_hit,
            )
        )
        if result.served_tier > 0:
            fallback_payloads.append(
                {
                    "allocator": allocator.name,
                    "served_tier": result.served_tier,
                    "trail": [record.as_payload() for record in result.fallback_trail],
                }
            )
    return records, quarantine_payloads, fallback_payloads


def _plan_batches(
    pending: Sequence[int],
    batch_days: int,
    chaos: Optional[ChaosInjector],
) -> List[List[int]]:
    """Chunk pending days into consecutive runs of at most ``batch_days``.

    Chaos crash days always become singleton chunks: a crash must fail
    (and retry, and be audited) at exactly the day granularity of the
    per-day oracle, so failure attribution — ``chunk[0]`` — names the
    crashing day and no sibling day's work rides on the doomed attempt.
    """
    crash = chaos.plan.crash_days if chaos is not None else frozenset()
    chunks: List[List[int]] = []
    current: List[int] = []
    for day in pending:
        if day in crash:
            if current:
                chunks.append(current)
                current = []
            chunks.append([day])
            continue
        if current and (len(current) >= batch_days or day != current[-1] + 1):
            chunks.append(current)
            current = []
        current.append(day)
    if current:
        chunks.append(current)
    return chunks


def _run_study_batch(
    task: Tuple["SocialWelfareStudy", int, List[int], int, Optional["AllocationCache"]],
) -> List[StudyDayResult]:
    """A chunk of Figures 4-6 columnar days as fused array passes.

    The batched twin of per-day :func:`_run_study_day_columnar` calls:
    every day still burns its own keyed substream (sampling draws and
    tie-break seeds are untouched, so outputs are bit-identical to the
    per-day path), but sampling shares one id tuple, screening runs as
    one malformed-mask pass, and greedy allocators place the whole chunk
    through one fused kernel sweep.  With an ``alloc_cache``, each day's
    allocation routes through the cache instead (hits replay stored
    results byte-identically; misses solve per day).
    """
    study, root, chunk, n_households, alloc_cache = task
    day_rngs: List[random.Random] = []
    np_rngs = []
    for day in chunk:
        if study.chaos is not None:
            study.chaos.before_day(day)
        py_rng, np_rng = make_day_rngs(root, day)
        day_rngs.append(py_rng)
        np_rngs.append(np_rng)
    neighborhoods = [
        cols.to_neighborhood(study.true_preference)
        for cols in study.generator.sample_population_columnar_batch(
            np_rngs, n_households
        )
    ]

    quarantine_payloads: List[List[Dict]] = [[] for _ in chunk]
    if study.quarantine is not None:
        batch = ColumnarDayBatch.from_neighborhoods(neighborhoods)
        screened_days = study.quarantine.screen_columnar_batch(
            batch,
            batch.true_start.astype(float),
            batch.true_end.astype(float),
            batch.duration.astype(float),
        )
        compiled_days = []
        for k, screened in enumerate(screened_days):
            quarantine_payloads[k] = [
                decision.as_payload()
                for decision in screened.decisions
                if decision.action != "accepted"
            ]
            kept_neighborhood = neighborhoods[k].take(screened.kept)
            compiled_days.append(
                screened.accepted.compile(kept_neighborhood, study.pricing)
            )
    else:
        compiled_days = [
            ColumnarReports.truthful(neighborhood).compile(
                neighborhood, study.pricing
            )
            for neighborhood in neighborhoods
        ]

    # Tie-break rngs are drawn in (day, allocator) order — exactly the
    # per-day path's draw order on each day's keyed substream — and are
    # drawn unconditionally, so cache hits never shift later draws.
    rngs_by_allocator: List[List[random.Random]] = [[] for _ in study.allocators]
    for py_rng in day_rngs:
        for slot in rngs_by_allocator:
            slot.append(random.Random(spawn_seed(py_rng)))

    results_by_allocator: List[List[ColumnarAllocationResult]] = []
    for allocator, rngs in zip(study.allocators, rngs_by_allocator):
        if alloc_cache is not None:
            results = [
                alloc_cache.solve_columnar(allocator, compiled, study.pricing, rng)
                for compiled, rng in zip(compiled_days, rngs)
            ]
        elif hasattr(allocator, "solve_columnar_batch"):
            results = allocator.solve_columnar_batch(
                compiled_days, study.pricing, rngs
            )
        else:
            results = [
                allocator.solve_columnar(compiled, study.pricing, rng)
                for compiled, rng in zip(compiled_days, rngs)
            ]
        results_by_allocator.append(results)

    out: List[StudyDayResult] = []
    for k, day in enumerate(chunk):
        compiled = compiled_days[k]
        records: List[AllocatorDayRecord] = []
        fallback_payloads: List[Dict] = []
        for allocator, results in zip(study.allocators, results_by_allocator):
            result = results[k]
            profile = LoadProfile.from_arrays(
                result.starts, result.starts + compiled.duration, compiled.rating
            )
            records.append(
                AllocatorDayRecord(
                    day=day,
                    n_households=n_households,
                    allocator=allocator.name,
                    par=profile.peak_to_average_ratio(),
                    cost=result.cost,
                    wall_time_s=result.wall_time_s,
                    proven_optimal=result.proven_optimal,
                    nodes_explored=result.nodes_explored,
                    served_tier=result.served_tier,
                    cache_hit=result.cache_hit,
                )
            )
            if result.served_tier > 0:
                fallback_payloads.append(
                    {
                        "allocator": allocator.name,
                        "served_tier": result.served_tier,
                        "trail": [
                            record.as_payload() for record in result.fallback_trail
                        ],
                    }
                )
        out.append((records, quarantine_payloads[k], fallback_payloads))
    return out


def _guard_checkpoint_meta(
    checkpoint: CheckpointStore, key: str, context: Dict[str, Any]
) -> None:
    """Refuse to resume a checkpoint written by a different run setup."""
    done = checkpoint.completed()
    if key in done:
        if done[key] != context:
            raise CheckpointError(
                f"checkpoint {checkpoint.path!r} was written by a different "
                f"run: recorded {done[key]}, this run is {context}"
            )
    else:
        checkpoint.append(key, context)


class SocialWelfareStudy:
    """Compare allocators on identical day-ahead instances (Figures 4-6).

    Args:
        allocators: The solvers to compare (e.g. Enki greedy vs optimal).
        generator: Usage-profile generator; Section VI defaults when omitted.
        pricing: Neighborhood pricing; quadratic sigma=0.3 when omitted.
        true_preference: Which window households report — the paper's
            social-welfare study has every household report its wide
            interval as its true preference.
        quarantine: Optional report screen applied to each day's reports
            before the allocators see them (required when ``chaos``
            injects malformed reports).
        chaos: Optional deterministic fault injector
            (:class:`repro.robustness.chaos.ChaosInjector`).
        columnar: Run each day on the columnar (structure-of-arrays) fast
            path: batched sampling, array allocation kernels, no
            per-household objects.  Same study semantics, its own sampling
            substream — records differ from the object path at the same
            seed but stay bit-identical across worker counts.
    """

    def __init__(
        self,
        allocators: Sequence[Allocator],
        generator: Optional[ProfileGenerator] = None,
        pricing: Optional[PricingModel] = None,
        true_preference: str = "wide",
        quarantine: Optional[Quarantine] = None,
        chaos: Optional[ChaosInjector] = None,
        columnar: bool = False,
    ) -> None:
        if not allocators:
            raise ValueError("need at least one allocator to study")
        names = [allocator.name for allocator in allocators]
        if len(set(names)) != len(names):
            raise ValueError(f"allocator names must be unique, got {names}")
        self.allocators = list(allocators)
        self.generator = generator if generator is not None else ProfileGenerator()
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.true_preference = true_preference
        self.quarantine = quarantine
        self.chaos = chaos
        self.columnar = columnar
        if (
            chaos is not None
            and chaos.plan.malformed_days
            and quarantine is None
        ):
            raise ValueError(
                "chaos injects malformed reports; configure a quarantine to "
                "absorb them (policy 'clamp' or 'exclude')"
            )
        if columnar and chaos is not None and chaos.plan.malformed_days:
            raise ValueError(
                "chaos report corruption operates on object reports; the "
                "columnar path cannot run days with malformed_days planned"
            )

    def run(
        self,
        n_households: int,
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
        checkpoint: Optional[CheckpointStore] = None,
        checkpoint_prefix: str = "",
        audit: Optional[AuditLog] = None,
        timeout_s: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        batch_days: int = 1,
        alloc_cache: Optional["AllocationCache"] = None,
    ) -> List[AllocatorDayRecord]:
        """Simulate ``days`` independent days with ``n_households`` each.

        Args:
            n_households: Population size sampled fresh every day.
            days: Number of independent day instances.
            seed: Master seed; day ``d`` draws from the keyed substream
                ``(seed, d)`` regardless of ``workers``.
            workers: Process count for the day fan-out; ``1`` (default)
                runs serially, ``0`` uses every core.  Results are
                bit-identical across worker counts.
            checkpoint: Persist each day's records as it completes; days
                already in the store are replayed instead of recomputed,
                so a killed run resumes where it stopped with identical
                final results.
            checkpoint_prefix: Key prefix inside the store (used by
                :meth:`sweep` to keep population sizes apart).
            audit: Structured event log; receives ``report_quarantined``,
                ``fallback_served`` and ``worker_failure`` events for the
                days computed in this call.
            timeout_s: Per-round stall detector for the parallel runtime
                (see :func:`repro.sim.parallel.map_tasks`).
            retries: Pool retry budget per failed day before inline rerun.
            batch_days: Columnar-only: run up to this many consecutive
                days per worker task as fused array passes
                (:func:`_run_study_batch`).  ``1`` (default) keeps the
                per-day oracle path; results are bit-identical either
                way (modulo per-call wall times).
            alloc_cache: Columnar-only: route every allocation through a
                digest-keyed :class:`~repro.allocation.cache.
                AllocationCache` — repeated instances replay stored
                results byte-identically instead of re-solving.
        """
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        if batch_days < 1:
            raise ValueError(f"batch_days must be >= 1, got {batch_days}")
        if (batch_days > 1 or alloc_cache is not None) and not self.columnar:
            raise ValueError(
                "batch_days > 1 and alloc_cache require the columnar path "
                "(construct the study with columnar=True)"
            )
        batched = self.columnar and (batch_days > 1 or alloc_cache is not None)
        root = root_entropy(seed)
        done: Dict[str, Dict[str, Any]] = {}
        if checkpoint is not None:
            _guard_checkpoint_meta(
                checkpoint,
                f"{checkpoint_prefix}meta",
                {"root": root, "days": days, "n_households": n_households},
            )
            done = checkpoint.completed()
        pending = [
            day for day in range(days) if day_key(day, checkpoint_prefix) not in done
        ]
        chunks = (
            _plan_batches(pending, batch_days, self.chaos)
            if batched
            else [[day] for day in pending]
        )

        def _append_day(day: int, value: StudyDayResult) -> None:
            records, quarantined, fallbacks = value
            checkpoint.append(
                day_key(day, checkpoint_prefix),
                {
                    "records": [asdict(record) for record in records],
                    "quarantine": quarantined,
                    "fallback": fallbacks,
                },
            )

        def _log_failure(failure) -> None:
            audit.append(
                AuditEvent(
                    kind="worker_failure",
                    day=chunks[failure.index][0],
                    payload={
                        "attempt": failure.attempt,
                        "cause": failure.cause,
                        "recovered": True,
                    },
                )
            )

        computed: Dict[int, StudyDayResult] = {}
        if batched:
            tasks_b = [
                (self, root, chunk, n_households, alloc_cache) for chunk in chunks
            ]

            def _persist_batch(index: int, value: List[StudyDayResult]) -> None:
                for day, day_result in zip(chunks[index], value):
                    _append_day(day, day_result)

            per_chunk = map_tasks(
                _run_study_batch,
                tasks_b,
                workers,
                timeout_s=timeout_s,
                retries=retries,
                on_result=_persist_batch if checkpoint is not None else None,
                on_failure=_log_failure if audit is not None else None,
            )
            for chunk, chunk_results in zip(chunks, per_chunk):
                computed.update(zip(chunk, chunk_results))
        else:
            tasks = [(self, root, day, n_households) for day in pending]

            def _persist(index: int, value: StudyDayResult) -> None:
                _append_day(pending[index], value)

            per_day = map_tasks(
                _run_study_day,
                tasks,
                workers,
                timeout_s=timeout_s,
                retries=retries,
                on_result=_persist if checkpoint is not None else None,
                on_failure=_log_failure if audit is not None else None,
            )
            computed = dict(zip(pending, per_day))

        out: List[AllocatorDayRecord] = []
        for day in range(days):
            if day in computed:
                records, quarantined, fallbacks = computed[day]
                if audit is not None:
                    for payload in quarantined:
                        audit.append(
                            AuditEvent(kind="report_quarantined", day=day, payload=payload)
                        )
                    for payload in fallbacks:
                        audit.append(
                            AuditEvent(kind="fallback_served", day=day, payload=payload)
                        )
            else:
                payload = done[day_key(day, checkpoint_prefix)]
                records = [_record_from_dict(doc) for doc in payload["records"]]
            out.extend(records)
        return out

    def sweep(
        self,
        populations: Sequence[int],
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
        checkpoint: Optional[CheckpointStore] = None,
        audit: Optional[AuditLog] = None,
        timeout_s: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        batch_days: int = 1,
        alloc_cache: Optional["AllocationCache"] = None,
    ) -> List[AllocatorDayRecord]:
        """Run the study across population sizes (the Figures 4-6 x-axis).

        With a ``checkpoint``, each population size keeps its own key
        prefix in the shared store, so a killed sweep resumes mid-sweep.
        ``batch_days``/``alloc_cache`` pass through to each :meth:`run`.
        """
        rng = random.Random(seed)
        records: List[AllocatorDayRecord] = []
        for n_households in populations:
            records.extend(
                self.run(
                    n_households,
                    days,
                    spawn_seed(rng),
                    workers=workers,
                    checkpoint=checkpoint,
                    checkpoint_prefix=f"n{n_households}-",
                    audit=audit,
                    timeout_s=timeout_s,
                    retries=retries,
                    batch_days=batch_days,
                    alloc_cache=alloc_cache,
                )
            )
        return records


#: Decides what a household reports on a given day.
ReportPolicy = Callable[[int, HouseholdType, random.Random], Report]

#: Decides what a household consumes given its report and allocation.
ConsumptionPolicy = Callable[
    [int, HouseholdType, Report, Interval, random.Random], Interval
]


def truthful_report_policy(
    day: int, household: HouseholdType, rng: random.Random
) -> Report:
    """Report the true preference every day."""
    return Report(household.household_id, household.true_preference)


def follow_or_closest_policy(
    day: int,
    household: HouseholdType,
    report: Report,
    allocation: Interval,
    rng: random.Random,
) -> Interval:
    """Follow the allocation if it fits the true window, else defect minimally."""
    true = household.true_preference
    return closest_feasible_consumption(true.window, true.duration, allocation)


def _run_simulation_day(
    task: Tuple["NeighborhoodSimulation", Neighborhood, int, int],
) -> DayOutcome:
    """One full mechanism day: report, allocate, consume, settle.

    Module-level so the parallel runtime can pickle it.  Custom policies
    must themselves be picklable (module-level functions or instances) to
    run with ``workers > 1``.
    """
    simulation, neighborhood, root, day = task
    if simulation.chaos is not None:
        simulation.chaos.before_day(day)
    rng, _ = make_day_rngs(root, day)
    reports: Dict[HouseholdId, Report] = {
        hh.household_id: simulation.report_policy(day, hh, rng)
        for hh in neighborhood
    }
    if simulation.chaos is not None:
        reports = simulation.chaos.corrupt_reports(day, reports)
    decisions: Tuple = ()
    screened = simulation.mechanism.screen_reports(neighborhood, reports)
    if screened is not None:
        reports = screened.accepted
        decisions = tuple(screened.decisions)
    allocation_result = simulation.mechanism.allocate(
        neighborhood, reports, random.Random(spawn_seed(rng)), pre_screened=True
    )
    # Excluded (quarantined) households have no allocation and consume
    # nothing through the mechanism that day.
    consumption: ConsumptionMap = {
        hh.household_id: simulation.consumption_policy(
            day,
            hh,
            reports[hh.household_id],
            allocation_result.allocation[hh.household_id],
            rng,
        )
        for hh in neighborhood
        if hh.household_id in allocation_result.allocation
    }
    settlement = simulation.mechanism.settle(
        neighborhood, reports, allocation_result.allocation, consumption
    )
    return DayOutcome(
        reports=reports,
        allocation_result=allocation_result,
        consumption=consumption,
        settlement=settlement,
        quarantine_decisions=decisions,
    )


def _run_simulation_day_columnar(
    task: Tuple["NeighborhoodSimulation", ColumnarNeighborhood, int, int],
) -> ColumnarDayOutcome:
    """One columnar mechanism day: truthful reports, closest consumption.

    The columnar twin of :func:`_run_simulation_day`, restricted to the
    default policies (enforced at construction) because custom policies
    are written against per-household objects.
    """
    simulation, neighborhood, root, day = task
    if simulation.chaos is not None:
        simulation.chaos.before_day(day)
    rng, _ = make_day_rngs(root, day)
    return simulation.mechanism.run_day_columnar(
        neighborhood, rng=random.Random(spawn_seed(rng))
    )


def _run_simulation_day_shm(
    task: Tuple["NeighborhoodSimulation", SharedColumnarDay, int, int],
) -> ColumnarDayOutcome:
    """The shared-memory twin of :func:`_run_simulation_day_columnar`.

    The task carries a :class:`~repro.sim.shm.SharedColumnarDay`
    descriptor (a few hundred bytes) instead of the neighborhood itself;
    the worker reconstructs zero-copy array views over the parent's
    shared segment.  Everything downstream is the same code, so outcomes
    are bit-identical to the pickle transport and to serial runs.
    """
    simulation, day, root, day_index = task
    if simulation.chaos is not None:
        simulation.chaos.before_day(day_index)
    rng, _ = make_day_rngs(root, day_index)
    return simulation.mechanism.run_day_columnar(
        day.neighborhood(), rng=random.Random(spawn_seed(rng))
    )


def _run_simulation_batch(
    task: Tuple["NeighborhoodSimulation", Any, int, List[int]],
) -> List[ColumnarDayOutcome]:
    """A chunk of columnar mechanism days through one fused batch run.

    The batched twin of :func:`_run_simulation_day_columnar`: each day
    still burns its own keyed substream (chaos firing and tie-break seed
    draw order unchanged), then the whole chunk flows through
    :meth:`~repro.core.mechanism.EnkiMechanism.run_days_columnar` — one
    screen, one compile, one fused placement sweep.  The neighborhood
    reference may be a :class:`~repro.sim.shm.SharedColumnarDay`
    descriptor, reconstructed here as zero-copy views.
    """
    simulation, neighborhood, root, chunk = task
    rngs: List[random.Random] = []
    for day in chunk:
        if simulation.chaos is not None:
            simulation.chaos.before_day(day)
        rng, _ = make_day_rngs(root, day)
        rngs.append(random.Random(spawn_seed(rng)))
    if isinstance(neighborhood, SharedColumnarDay):
        neighborhood = neighborhood.neighborhood()
    return simulation.mechanism.run_days_columnar(neighborhood, rngs)


def _solve_day_shard(
    task: Tuple[SharedColumnarDay, int, int, Allocator, Any, int],
) -> np.ndarray:
    """Solve one contiguous row shard of a shared columnar day.

    Compiles rows ``[lo, hi)`` straight from the shared segment (no copy)
    and runs the allocator's columnar kernel on that slice alone; returns
    the shard's begin-slot vector.
    """
    day, lo, hi, allocator, pricing, seed = task
    compiled = day.compile_rows(lo, hi, pricing)
    return allocator.solve_columnar(compiled, pricing, random.Random(seed)).starts


def run_columnar_day_sharded(
    mechanism: EnkiMechanism,
    neighborhood: ColumnarNeighborhood,
    shards: int,
    workers: Optional[int] = 1,
    rng: Optional[random.Random] = None,
) -> ColumnarDayOutcome:
    """One truthful columnar day with the allocation sharded across rows.

    The city-scale (1M-household) path: the day is packed once into
    shared memory, each worker compiles and solves a contiguous row slice
    independently, and the parent concatenates the begin slots, validates
    them and settles once through
    :meth:`~repro.core.mechanism.EnkiMechanism.finish_day_columnar`.

    Sharding changes the solution: each shard schedules against an empty
    profile, blind to the others, so the result is an approximation of
    the unsharded allocation (fine for the greedy allocator's throughput
    studies; meaningless for an exact solver).  It is deterministic given
    ``(neighborhood, shards, seed)`` — shard seeds are drawn from ``rng``
    in shard order up front — and therefore bit-identical across worker
    counts.  ``shards=1`` is exactly :meth:`~repro.core.mechanism.
    EnkiMechanism.run_day_columnar`.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if isinstance(neighborhood, Neighborhood):
        neighborhood = ColumnarNeighborhood.from_objects(neighborhood)
    rng = rng if rng is not None else random.Random(mechanism._seed)
    if shards == 1:
        return mechanism.run_day_columnar(neighborhood, rng=rng)

    started_at = time.perf_counter()
    reports = ColumnarReports.truthful(neighborhood)
    decisions: Tuple = ()
    kept = np.ones(len(neighborhood), dtype=bool)
    if mechanism.quarantine is not None:
        screened = mechanism.quarantine.screen_columnar(
            neighborhood,
            reports.start.astype(float),
            reports.end.astype(float),
            reports.duration.astype(float),
        )
        reports = screened.accepted
        kept = screened.kept
        decisions = tuple(screened.decisions)
        neighborhood = neighborhood.take(kept)
    n = len(neighborhood)
    shards = max(1, min(shards, n))
    seeds = [spawn_seed(rng) for _ in range(shards)]
    edges = [n * i // shards for i in range(shards + 1)]
    with SharedArena() as arena:
        day = arena.pack_day(neighborhood)
        tasks = [
            (day, edges[i], edges[i + 1], mechanism.allocator, mechanism.pricing,
             seeds[i])
            for i in range(shards)
        ]
        shard_starts = map_tasks(_solve_day_shard, tasks, workers=workers)
    starts = np.concatenate(shard_starts) if shard_starts else np.zeros(0, np.intp)
    profile = LoadProfile.from_arrays(
        starts, starts + neighborhood.duration, neighborhood.rating
    )
    result = ColumnarAllocationResult(
        starts=starts,
        cost=mechanism.pricing.cost(profile),
        wall_time_s=time.perf_counter() - started_at,
        allocator_name=f"{mechanism.allocator.name}+shard{shards}",
    )
    return mechanism.finish_day_columnar(
        neighborhood, reports, result, kept=kept, decisions=decisions
    )


class NeighborhoodSimulation:
    """Run the full Enki mechanism over multiple days with custom behaviour.

    Args:
        mechanism: The mechanism under study; a default
            :class:`EnkiMechanism` when omitted.  Configure its
            ``quarantine`` to screen reports (required when ``chaos``
            injects malformed ones).
        report_policy: What each household reports every day.
        consumption_policy: What each allocated household consumes.
        chaos: Optional deterministic fault injector.
        columnar: Run each day through
            :meth:`EnkiMechanism.run_day_columnar` — the structure-of-
            arrays fast path.  Requires the default (truthful /
            closest-feasible) policies, and :meth:`run` then returns
            :class:`~repro.core.mechanism.ColumnarDayOutcome` items.
    """

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        report_policy: ReportPolicy = truthful_report_policy,
        consumption_policy: ConsumptionPolicy = follow_or_closest_policy,
        chaos: Optional[ChaosInjector] = None,
        columnar: bool = False,
    ) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.report_policy = report_policy
        self.consumption_policy = consumption_policy
        self.chaos = chaos
        self.columnar = columnar
        if (
            chaos is not None
            and chaos.plan.malformed_days
            and self.mechanism.quarantine is None
        ):
            raise ValueError(
                "chaos injects malformed reports; configure the mechanism "
                "with a quarantine to absorb them"
            )
        if columnar:
            if (
                report_policy is not truthful_report_policy
                or consumption_policy is not follow_or_closest_policy
            ):
                raise ValueError(
                    "the columnar path supports only the default truthful/"
                    "closest-feasible policies (custom policies are written "
                    "against per-household objects)"
                )
            if chaos is not None and chaos.plan.malformed_days:
                raise ValueError(
                    "chaos report corruption operates on object reports; the "
                    "columnar path cannot run days with malformed_days planned"
                )

    def run(
        self,
        neighborhood: Neighborhood,
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
        checkpoint: Optional[CheckpointStore] = None,
        checkpoint_prefix: str = "",
        audit: Optional[AuditLog] = None,
        timeout_s: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        transport: str = "auto",
        batch_days: int = 1,
    ) -> List[DayOutcome]:
        """Simulate ``days`` settled days for a fixed neighborhood.

        Args:
            neighborhood: The households (fixed across days).
            days: Number of independent settled days.
            seed: Master seed; day ``d`` draws from substream ``(seed, d)``.
            workers: Process count for the day fan-out; ``1`` (default)
                runs serially.  Parallel output is bit-identical to serial.
            checkpoint: Persist each day's outcome as it completes and
                replay already-completed days on rerun (``--resume``).
            checkpoint_prefix: Key prefix inside the store.
            audit: Structured event log for quarantine/fallback/worker
                events.
            timeout_s: Stall detector for the parallel runtime.
            retries: Pool retry budget per failed day before inline rerun.
            transport: How columnar day tasks reach workers.  ``"shm"``
                packs the neighborhood once into a shared-memory segment
                and ships a tiny descriptor per day (zero-copy views in
                the workers); ``"pickle"`` serializes the neighborhood
                into every task (the pre-shm behaviour); ``"auto"``
                (default) picks ``"shm"`` whenever the columnar day loop
                fans out to workers.  Outcomes are bit-identical across
                transports.  Non-columnar runs must leave this ``"auto"``
                or ``"pickle"``.
            batch_days: Columnar-only: run up to this many consecutive
                days per worker task through the fused
                :meth:`~repro.core.mechanism.EnkiMechanism.
                run_days_columnar` batch (one screen, one compile, one
                placement sweep).  ``1`` (default) keeps the per-day
                path; outcomes are bit-identical either way (modulo
                per-call wall times).

        On the columnar path (``columnar=True``), ``neighborhood`` may be
        either representation (an object :class:`Neighborhood` is lowered
        once up front), the returned list holds
        :class:`~repro.core.mechanism.ColumnarDayOutcome` items, and
        checkpointing is not supported (outcomes are arrays, not the
        serialized object form).
        """
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        if batch_days < 1:
            raise ValueError(f"batch_days must be >= 1, got {batch_days}")
        if batch_days > 1 and not self.columnar:
            raise ValueError(
                "batch_days > 1 requires the columnar path (construct the "
                "simulation with columnar=True)"
            )
        if transport not in ("auto", "pickle", "shm"):
            raise ValueError(
                f"transport must be 'auto', 'pickle' or 'shm', got {transport!r}"
            )
        if transport == "shm" and not self.columnar:
            raise ValueError(
                "the shared-memory transport carries columnar arrays; "
                "construct the simulation with columnar=True"
            )
        if self.columnar:
            if checkpoint is not None:
                raise ValueError(
                    "checkpointing is not supported on the columnar path"
                )
            if isinstance(neighborhood, Neighborhood):
                neighborhood = ColumnarNeighborhood.from_objects(neighborhood)
        root = root_entropy(seed)
        done: Dict[str, Dict[str, Any]] = {}
        if checkpoint is not None:
            _guard_checkpoint_meta(
                checkpoint,
                f"{checkpoint_prefix}meta",
                {"root": root, "days": days, "n_households": len(neighborhood)},
            )
            done = checkpoint.completed()
        pending = [
            day for day in range(days) if day_key(day, checkpoint_prefix) not in done
        ]
        batched = self.columnar and batch_days > 1
        chunks = (
            _plan_batches(pending, batch_days, self.chaos)
            if batched
            else [[day] for day in pending]
        )
        day_fn: Callable = (
            _run_simulation_day_columnar if self.columnar else _run_simulation_day
        )
        day_ref: Any = neighborhood
        arena: Optional[SharedArena] = None
        if self.columnar and (
            transport == "shm"
            or (transport == "auto" and workers not in (None, 1))
        ):
            arena = SharedArena()
            day_ref = arena.pack_day(neighborhood)
            day_fn = _run_simulation_day_shm
        if batched:
            day_fn = _run_simulation_batch
            tasks = [(self, day_ref, root, chunk) for chunk in chunks]
        else:
            tasks = [(self, day_ref, root, day) for day in pending]

        def _persist(index: int, outcome: DayOutcome) -> None:
            checkpoint.append(
                day_key(pending[index], checkpoint_prefix),
                day_outcome_to_dict(outcome),
            )

        def _log_failure(failure) -> None:
            audit.append(
                AuditEvent(
                    kind="worker_failure",
                    day=chunks[failure.index][0],
                    payload={
                        "attempt": failure.attempt,
                        "cause": failure.cause,
                        "recovered": True,
                    },
                )
            )

        try:
            computed_list = map_tasks(
                day_fn,
                tasks,
                workers,
                timeout_s=timeout_s,
                retries=retries,
                on_result=_persist if checkpoint is not None else None,
                on_failure=_log_failure if audit is not None else None,
            )
        finally:
            if arena is not None:
                arena.dispose()
        if batched:
            computed = {}
            for chunk, chunk_outcomes in zip(chunks, computed_list):
                computed.update(zip(chunk, chunk_outcomes))
        else:
            computed = dict(zip(pending, computed_list))

        outcomes: List[DayOutcome] = []
        for day in range(days):
            if day in computed:
                outcome = computed[day]
                if audit is not None:
                    for decision in outcome.quarantine_decisions:
                        if decision.action != "accepted":
                            audit.append(
                                AuditEvent(
                                    kind="report_quarantined",
                                    day=day,
                                    payload=decision.as_payload(),
                                )
                            )
                    if outcome.allocation_result.served_tier > 0:
                        audit.append(
                            AuditEvent(
                                kind="fallback_served",
                                day=day,
                                payload={
                                    "served_tier": outcome.allocation_result.served_tier,
                                    "trail": [
                                        record.as_payload()
                                        for record in outcome.allocation_result.fallback_trail
                                    ],
                                },
                            )
                        )
            else:
                outcome = day_outcome_from_dict(
                    done[day_key(day, checkpoint_prefix)]
                )
            outcomes.append(outcome)
        return outcomes
