"""Simulation engines for the Section VI studies.

Two drivers live here:

* :class:`SocialWelfareStudy` — the Figures 4-6 engine: for each day it
  samples a fresh population, gives every allocator the same truthful
  reports, and records peak-to-average ratio, neighborhood cost and
  scheduling time per allocator.
* :class:`NeighborhoodSimulation` — a general multi-day run of the full
  Enki mechanism with pluggable reporting/consumption policies, used by the
  incentive-compatibility experiment, the theory property checkers and the
  examples.

Both engines treat each simulated day as an independent task driven by its
own keyed RNG substream (:func:`repro.sim.rng.make_day_rngs`), so a run is
a pure function of ``(seed, day)`` per day.  The ``workers`` knob fans the
day loop across a process pool (:mod:`repro.sim.parallel`); parallel runs
are bit-identical to serial runs at the same seed because no generator
state crosses a day boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..allocation.base import AllocationProblem, Allocator
from ..core.intervals import Interval
from ..core.mechanism import (
    DayOutcome,
    EnkiMechanism,
    closest_feasible_consumption,
)
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Report,
)
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .parallel import map_tasks
from .profiles import ProfileGenerator, neighborhood_from_profiles
from .rng import make_day_rngs, root_entropy, spawn_seed


@dataclass(frozen=True)
class AllocatorDayRecord:
    """One allocator's performance on one simulated day."""

    day: int
    n_households: int
    allocator: str
    par: float
    cost: float
    wall_time_s: float
    proven_optimal: bool
    nodes_explored: int


def _run_study_day(
    task: Tuple["SocialWelfareStudy", int, int, int],
) -> List[AllocatorDayRecord]:
    """One Figures 4-6 day: sample a population, run every allocator.

    Module-level so the parallel runtime can pickle it; ``task`` carries
    the study (its allocators, generator and pricing), the root entropy,
    the day index and the population size.
    """
    study, root, day, n_households = task
    py_rng, np_rng = make_day_rngs(root, day)
    profiles = study.generator.sample_population(np_rng, n_households)
    neighborhood = neighborhood_from_profiles(profiles, study.true_preference)
    reports = {
        hh.household_id: Report(hh.household_id, hh.true_preference)
        for hh in neighborhood
    }
    problem = AllocationProblem.from_reports(
        reports, neighborhood.households, study.pricing
    )
    records: List[AllocatorDayRecord] = []
    for allocator in study.allocators:
        result = allocator.solve(problem, random.Random(spawn_seed(py_rng)))
        profile = LoadProfile.from_schedule(
            result.allocation, neighborhood.households
        )
        records.append(
            AllocatorDayRecord(
                day=day,
                n_households=n_households,
                allocator=allocator.name,
                par=profile.peak_to_average_ratio(),
                cost=result.cost,
                wall_time_s=result.wall_time_s,
                proven_optimal=result.proven_optimal,
                nodes_explored=result.nodes_explored,
            )
        )
    return records


class SocialWelfareStudy:
    """Compare allocators on identical day-ahead instances (Figures 4-6).

    Args:
        allocators: The solvers to compare (e.g. Enki greedy vs optimal).
        generator: Usage-profile generator; Section VI defaults when omitted.
        pricing: Neighborhood pricing; quadratic sigma=0.3 when omitted.
        true_preference: Which window households report — the paper's
            social-welfare study has every household report its wide
            interval as its true preference.
    """

    def __init__(
        self,
        allocators: Sequence[Allocator],
        generator: Optional[ProfileGenerator] = None,
        pricing: Optional[PricingModel] = None,
        true_preference: str = "wide",
    ) -> None:
        if not allocators:
            raise ValueError("need at least one allocator to study")
        names = [allocator.name for allocator in allocators]
        if len(set(names)) != len(names):
            raise ValueError(f"allocator names must be unique, got {names}")
        self.allocators = list(allocators)
        self.generator = generator if generator is not None else ProfileGenerator()
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.true_preference = true_preference

    def run(
        self,
        n_households: int,
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
    ) -> List[AllocatorDayRecord]:
        """Simulate ``days`` independent days with ``n_households`` each.

        Args:
            n_households: Population size sampled fresh every day.
            days: Number of independent day instances.
            seed: Master seed; day ``d`` draws from the keyed substream
                ``(seed, d)`` regardless of ``workers``.
            workers: Process count for the day fan-out; ``1`` (default)
                runs serially, ``0`` uses every core.  Results are
                bit-identical across worker counts.
        """
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        root = root_entropy(seed)
        tasks = [(self, root, day, n_households) for day in range(days)]
        per_day = map_tasks(_run_study_day, tasks, workers)
        return [record for day_records in per_day for record in day_records]

    def sweep(
        self,
        populations: Sequence[int],
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
    ) -> List[AllocatorDayRecord]:
        """Run the study across population sizes (the Figures 4-6 x-axis)."""
        rng = random.Random(seed)
        records: List[AllocatorDayRecord] = []
        for n_households in populations:
            records.extend(
                self.run(n_households, days, spawn_seed(rng), workers=workers)
            )
        return records


#: Decides what a household reports on a given day.
ReportPolicy = Callable[[int, HouseholdType, random.Random], Report]

#: Decides what a household consumes given its report and allocation.
ConsumptionPolicy = Callable[
    [int, HouseholdType, Report, Interval, random.Random], Interval
]


def truthful_report_policy(
    day: int, household: HouseholdType, rng: random.Random
) -> Report:
    """Report the true preference every day."""
    return Report(household.household_id, household.true_preference)


def follow_or_closest_policy(
    day: int,
    household: HouseholdType,
    report: Report,
    allocation: Interval,
    rng: random.Random,
) -> Interval:
    """Follow the allocation if it fits the true window, else defect minimally."""
    true = household.true_preference
    return closest_feasible_consumption(true.window, true.duration, allocation)


def _run_simulation_day(
    task: Tuple["NeighborhoodSimulation", Neighborhood, int, int],
) -> DayOutcome:
    """One full mechanism day: report, allocate, consume, settle.

    Module-level so the parallel runtime can pickle it.  Custom policies
    must themselves be picklable (module-level functions or instances) to
    run with ``workers > 1``.
    """
    simulation, neighborhood, root, day = task
    rng, _ = make_day_rngs(root, day)
    reports: Dict[HouseholdId, Report] = {
        hh.household_id: simulation.report_policy(day, hh, rng)
        for hh in neighborhood
    }
    allocation_result = simulation.mechanism.allocate(
        neighborhood, reports, random.Random(spawn_seed(rng))
    )
    consumption: ConsumptionMap = {
        hh.household_id: simulation.consumption_policy(
            day,
            hh,
            reports[hh.household_id],
            allocation_result.allocation[hh.household_id],
            rng,
        )
        for hh in neighborhood
    }
    settlement = simulation.mechanism.settle(
        neighborhood, reports, allocation_result.allocation, consumption
    )
    return DayOutcome(
        reports=reports,
        allocation_result=allocation_result,
        consumption=consumption,
        settlement=settlement,
    )


class NeighborhoodSimulation:
    """Run the full Enki mechanism over multiple days with custom behaviour."""

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        report_policy: ReportPolicy = truthful_report_policy,
        consumption_policy: ConsumptionPolicy = follow_or_closest_policy,
    ) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.report_policy = report_policy
        self.consumption_policy = consumption_policy

    def run(
        self,
        neighborhood: Neighborhood,
        days: int,
        seed: Optional[int] = None,
        workers: Optional[int] = 1,
    ) -> List[DayOutcome]:
        """Simulate ``days`` settled days for a fixed neighborhood.

        Args:
            neighborhood: The households (fixed across days).
            days: Number of independent settled days.
            seed: Master seed; day ``d`` draws from substream ``(seed, d)``.
            workers: Process count for the day fan-out; ``1`` (default)
                runs serially.  Parallel output is bit-identical to serial.
        """
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        root = root_entropy(seed)
        tasks = [(self, neighborhood, root, day) for day in range(days)]
        return map_tasks(_run_simulation_day, tasks, workers)
