"""Simulation engines for the Section VI studies.

Two drivers live here:

* :class:`SocialWelfareStudy` — the Figures 4-6 engine: for each day it
  samples a fresh population, gives every allocator the same truthful
  reports, and records peak-to-average ratio, neighborhood cost and
  scheduling time per allocator.
* :class:`NeighborhoodSimulation` — a general multi-day run of the full
  Enki mechanism with pluggable reporting/consumption policies, used by the
  incentive-compatibility experiment, the theory property checkers and the
  examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..allocation.base import AllocationProblem, Allocator
from ..core.intervals import Interval
from ..core.mechanism import (
    DayOutcome,
    EnkiMechanism,
    closest_feasible_consumption,
)
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Report,
)
from ..pricing.base import PricingModel
from ..pricing.load_profile import LoadProfile
from ..pricing.quadratic import QuadraticPricing
from .profiles import ProfileGenerator, neighborhood_from_profiles
from .rng import make_rngs, spawn_seed


@dataclass(frozen=True)
class AllocatorDayRecord:
    """One allocator's performance on one simulated day."""

    day: int
    n_households: int
    allocator: str
    par: float
    cost: float
    wall_time_s: float
    proven_optimal: bool
    nodes_explored: int


class SocialWelfareStudy:
    """Compare allocators on identical day-ahead instances (Figures 4-6).

    Args:
        allocators: The solvers to compare (e.g. Enki greedy vs optimal).
        generator: Usage-profile generator; Section VI defaults when omitted.
        pricing: Neighborhood pricing; quadratic sigma=0.3 when omitted.
        true_preference: Which window households report — the paper's
            social-welfare study has every household report its wide
            interval as its true preference.
    """

    def __init__(
        self,
        allocators: Sequence[Allocator],
        generator: Optional[ProfileGenerator] = None,
        pricing: Optional[PricingModel] = None,
        true_preference: str = "wide",
    ) -> None:
        if not allocators:
            raise ValueError("need at least one allocator to study")
        names = [allocator.name for allocator in allocators]
        if len(set(names)) != len(names):
            raise ValueError(f"allocator names must be unique, got {names}")
        self.allocators = list(allocators)
        self.generator = generator if generator is not None else ProfileGenerator()
        self.pricing = pricing if pricing is not None else QuadraticPricing()
        self.true_preference = true_preference

    def run(self, n_households: int, days: int, seed: Optional[int] = None
            ) -> List[AllocatorDayRecord]:
        """Simulate ``days`` independent days with ``n_households`` each."""
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        py_rng, np_rng = make_rngs(seed)
        records: List[AllocatorDayRecord] = []
        for day in range(days):
            profiles = self.generator.sample_population(np_rng, n_households)
            neighborhood = neighborhood_from_profiles(profiles, self.true_preference)
            reports = {
                hh.household_id: Report(hh.household_id, hh.true_preference)
                for hh in neighborhood
            }
            problem = AllocationProblem.from_reports(
                reports, neighborhood.households, self.pricing
            )
            for allocator in self.allocators:
                result = allocator.solve(problem, random.Random(spawn_seed(py_rng)))
                profile = LoadProfile.from_schedule(
                    result.allocation, neighborhood.households
                )
                records.append(
                    AllocatorDayRecord(
                        day=day,
                        n_households=n_households,
                        allocator=allocator.name,
                        par=profile.peak_to_average_ratio(),
                        cost=result.cost,
                        wall_time_s=result.wall_time_s,
                        proven_optimal=result.proven_optimal,
                        nodes_explored=result.nodes_explored,
                    )
                )
        return records

    def sweep(
        self,
        populations: Sequence[int],
        days: int,
        seed: Optional[int] = None,
    ) -> List[AllocatorDayRecord]:
        """Run the study across population sizes (the Figures 4-6 x-axis)."""
        rng = random.Random(seed)
        records: List[AllocatorDayRecord] = []
        for n_households in populations:
            records.extend(self.run(n_households, days, spawn_seed(rng)))
        return records


#: Decides what a household reports on a given day.
ReportPolicy = Callable[[int, HouseholdType, random.Random], Report]

#: Decides what a household consumes given its report and allocation.
ConsumptionPolicy = Callable[
    [int, HouseholdType, Report, Interval, random.Random], Interval
]


def truthful_report_policy(
    day: int, household: HouseholdType, rng: random.Random
) -> Report:
    """Report the true preference every day."""
    return Report(household.household_id, household.true_preference)


def follow_or_closest_policy(
    day: int,
    household: HouseholdType,
    report: Report,
    allocation: Interval,
    rng: random.Random,
) -> Interval:
    """Follow the allocation if it fits the true window, else defect minimally."""
    true = household.true_preference
    return closest_feasible_consumption(true.window, true.duration, allocation)


class NeighborhoodSimulation:
    """Run the full Enki mechanism over multiple days with custom behaviour."""

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        report_policy: ReportPolicy = truthful_report_policy,
        consumption_policy: ConsumptionPolicy = follow_or_closest_policy,
    ) -> None:
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.report_policy = report_policy
        self.consumption_policy = consumption_policy

    def run(
        self,
        neighborhood: Neighborhood,
        days: int,
        seed: Optional[int] = None,
    ) -> List[DayOutcome]:
        """Simulate ``days`` settled days for a fixed neighborhood."""
        if days < 1:
            raise ValueError(f"days must be >= 1, got {days}")
        rng = random.Random(seed)
        outcomes: List[DayOutcome] = []
        for day in range(days):
            reports: Dict[HouseholdId, Report] = {
                hh.household_id: self.report_policy(day, hh, rng)
                for hh in neighborhood
            }
            allocation_result = self.mechanism.allocate(
                neighborhood, reports, random.Random(spawn_seed(rng))
            )
            consumption: ConsumptionMap = {
                hh.household_id: self.consumption_policy(
                    day,
                    hh,
                    reports[hh.household_id],
                    allocation_result.allocation[hh.household_id],
                    rng,
                )
                for hh in neighborhood
            }
            settlement = self.mechanism.settle(
                neighborhood, reports, allocation_result.allocation, consumption
            )
            outcomes.append(
                DayOutcome(
                    reports=reports,
                    allocation_result=allocation_result,
                    consumption=consumption,
                    settlement=settlement,
                )
            )
        return outcomes
