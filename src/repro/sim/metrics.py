"""Aggregation of simulation records into the paper's plotted series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..stats.descriptive import MeanCI, mean_ci
from .engine import AllocatorDayRecord


@dataclass(frozen=True)
class SeriesPoint:
    """One (population size, allocator) cell of a Figures 4-6 series."""

    n_households: int
    allocator: str
    par: MeanCI
    cost: MeanCI
    wall_time_s: MeanCI
    days: int
    proven_optimal_fraction: float


def summarize_records(
    records: Iterable[AllocatorDayRecord],
) -> List[SeriesPoint]:
    """Group day records by (n, allocator) and attach 95% CIs.

    Output is ordered by population size then allocator name — the order
    the figures plot their series in.
    """
    grouped: Dict[Tuple[int, str], List[AllocatorDayRecord]] = {}
    for record in records:
        grouped.setdefault((record.n_households, record.allocator), []).append(record)

    points: List[SeriesPoint] = []
    for (n_households, allocator), cell in sorted(grouped.items()):
        points.append(
            SeriesPoint(
                n_households=n_households,
                allocator=allocator,
                par=mean_ci([r.par for r in cell]),
                cost=mean_ci([r.cost for r in cell]),
                wall_time_s=mean_ci([r.wall_time_s for r in cell]),
                days=len(cell),
                proven_optimal_fraction=(
                    sum(1 for r in cell if r.proven_optimal) / len(cell)
                ),
            )
        )
    return points


def speedup_series(points: Sequence[SeriesPoint], fast: str, slow: str
                   ) -> List[Tuple[int, float]]:
    """Mean slowdown factor ``slow / fast`` per population size (Figure 6).

    The paper reports Optimal taking "around 600 times longer" than Enki
    past 40 households; this extracts exactly that ratio.
    """
    by_n: Dict[int, Dict[str, SeriesPoint]] = {}
    for point in points:
        by_n.setdefault(point.n_households, {})[point.allocator] = point
    series: List[Tuple[int, float]] = []
    for n_households in sorted(by_n):
        cell = by_n[n_households]
        if fast not in cell or slow not in cell:
            continue
        fast_time = cell[fast].wall_time_s.mean
        slow_time = cell[slow].wall_time_s.mean
        if fast_time <= 0:
            continue
        series.append((n_households, slow_time / fast_time))
    return series
