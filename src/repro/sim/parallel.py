"""Deterministic process-pool fan-out for embarrassingly parallel day loops.

Every Section VI/VII driver is a loop over *independent* simulated days:
each day samples a fresh population (or replays fixed households) from its
own keyed RNG substream (:func:`repro.sim.rng.make_day_rngs`), so day
instances share no state and can run on any worker in any order.  This
module provides the one primitive they all use:

:func:`map_tasks` — an order-preserving map over payloads that runs inline
for ``workers=1`` (the default everywhere, leaving existing behaviour and
seeds untouched) and fans out across a :class:`~concurrent.futures.
ProcessPoolExecutor` for ``workers>1``.  Because results come back in
submission order and each payload's computation is a pure function of the
payload (RNG substreams included), parallel output is bit-identical to
serial output — only wall-clock time changes.

Worker functions must be module-level (picklable) and payloads must pickle;
all engine day-workers in :mod:`repro.sim.engine` satisfy this.  Custom
report/consumption policies that are lambdas or closures only work in
serial mode.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_P = TypeVar("_P")
_R = TypeVar("_R")

#: Sentinel meaning "use every core the machine has".
ALL_CORES = 0


def available_cores() -> int:
    """Best-effort count of usable CPU cores (at least 1)."""
    try:
        return len(os.sched_getaffinity(0))  # respects cpusets/containers
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob to a concrete positive worker count.

    ``None`` and ``1`` mean serial; ``0`` (:data:`ALL_CORES`) and any
    negative value mean "all available cores"; anything else is taken
    literally (it may exceed the core count — the OS will time-slice).
    """
    if workers is None:
        return 1
    if workers <= 0:
        return available_cores()
    return int(workers)


def map_tasks(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[_R]:
    """Order-preserving map of ``fn`` over ``payloads``, optionally parallel.

    Args:
        fn: A module-level (picklable) worker function.
        payloads: Picklable task descriptions; one ``fn`` call each.
        workers: Worker processes (see :func:`resolve_workers`); ``1`` runs
            inline in this process with zero overhead.
        chunksize: Payloads per worker dispatch for ``workers > 1``.

    Returns:
        ``[fn(p) for p in payloads]`` — same values, same order, regardless
        of ``workers``.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    n_workers = min(n_workers, len(payloads))
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, payloads, chunksize=chunksize))
