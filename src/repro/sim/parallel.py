"""Deterministic, fault-tolerant process-pool fan-out for day loops.

Every Section VI/VII driver is a loop over *independent* simulated days:
each day samples a fresh population (or replays fixed households) from its
own keyed RNG substream (:func:`repro.sim.rng.make_day_rngs`), so day
instances share no state and can run on any worker in any order.  This
module provides the one primitive they all use:

:func:`map_tasks` — an order-preserving map over payloads that runs inline
for ``workers=1`` (the default everywhere, leaving existing behaviour and
seeds untouched) and fans out across a :class:`~concurrent.futures.
ProcessPoolExecutor` for ``workers>1``.  Because results are keyed by
payload index and each payload's computation is a pure function of the
payload (RNG substreams included), parallel output is bit-identical to
serial output — only wall-clock time changes.

The parallel path is hardened for unattended runs:

* **Crash recovery** — a worker that dies (``BrokenProcessPool``) or
  raises fails only its own payloads; those are retried in a fresh pool
  with exponential backoff, and after ``retries`` attempts re-run inline
  in the parent.  Purity makes every re-run bit-identical, and a payload
  whose function *deterministically* raises still surfaces its original
  exception from the inline run — same semantics as serial mode.
* **Stall detection** — with ``timeout_s`` set, a round in which *no*
  task completes for that long is declared hung: the worker processes are
  killed and the unfinished payloads recycled through the retry path.
  Set it comfortably above the slowest expected single task.
* **Streaming results** — ``on_result(index, value)`` fires as each
  payload first completes (completion order), enabling incremental
  checkpointing; ``on_failure(failure)`` reports every
  :class:`~repro.robustness.errors.WorkerFailure` for the audit trail.

Worker functions must be module-level (picklable) and payloads must pickle;
all engine day-workers in :mod:`repro.sim.engine` satisfy this.  Custom
report/consumption policies that are lambdas or closures only work in
serial mode.
"""

from __future__ import annotations

import logging
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..kernels import warm_kernels
from ..robustness.errors import WorkerFailure

_P = TypeVar("_P")
_R = TypeVar("_R")

_logger = logging.getLogger(__name__)

#: Sentinel meaning "use every core the machine has".
ALL_CORES = 0

#: Default number of *re*-tries a failed payload gets before running inline.
DEFAULT_RETRIES = 2

#: Default base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF_S = 0.05

#: Default retry-backoff jitter: each wait is stretched by up to this
#: fraction, drawn uniformly, so a fleet of retrying callers (the shard
#: service's supervisors) desynchronizes instead of thundering back into
#: a struggling pool in lockstep.  Timing-only — results are unaffected.
DEFAULT_JITTER = 0.5

#: Jitter source.  Timing-only randomness, deliberately *not* derived
#: from any simulation seed: retry pacing must never consume (or depend
#: on) the streams that make runs bit-identical.
_jitter_rng = random.Random()


def backoff_delay(
    attempt: int,
    backoff_s: float = DEFAULT_BACKOFF_S,
    jitter: float = DEFAULT_JITTER,
) -> float:
    """The wait before retry ``attempt`` (1-based): exponential + jitter.

    ``backoff_s * 2**(attempt-1)``, stretched by a uniform factor in
    ``[1, 1 + jitter]``.  Shared by :func:`map_tasks` and the shard
    supervisor so every retry loop in the runtime paces the same way.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    if jitter < 0:
        raise ValueError(f"jitter cannot be negative, got {jitter}")
    delay = backoff_s * (2 ** (attempt - 1))
    if jitter:
        delay *= 1.0 + jitter * _jitter_rng.random()
    return delay

#: Environment variable naming a directory for per-worker cProfile dumps.
#: Set by ``repro --profile`` with ``--workers > 1``; workers accumulate a
#: profile across their chunks and dump ``worker-<pid>.pstats`` at exit.
WORKER_PROFILE_DIR_ENV = "REPRO_WORKER_PROFILE_DIR"

#: Set once the single-visible-core warning has fired (per process).
_single_core_warned = False


def available_cores() -> int:
    """Cores this *process* may run on (affinity-visible; at least 1).

    This is what parallel speedup is bounded by — containers and cpusets
    routinely expose fewer cores than the machine has.  See
    :func:`logical_cores` for the machine-wide count.
    """
    try:
        return len(os.sched_getaffinity(0))  # respects cpusets/containers
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def logical_cores() -> int:
    """The machine's logical CPU count, ignoring affinity masks."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob to a concrete positive worker count.

    ``None`` and ``1`` mean serial; ``0`` (:data:`ALL_CORES`) and ``-1``
    mean "all available cores"; any other positive value is taken
    literally (it may exceed the core count — the OS will time-slice).

    Raises:
        ValueError: For any value below ``-1`` — historically these fell
            through to "all cores", silently masking typos like ``-8``.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < -1:
        raise ValueError(
            f"workers must be >= -1 (0 or -1 = all cores), got {workers}"
        )
    if workers in (ALL_CORES, -1):
        return available_cores()
    cores = available_cores()
    if workers > cores:
        _logger.warning(
            "workers=%d exceeds the %d affinity-visible core(s); effective "
            "parallelism is %d (the OS will time-slice the rest)",
            workers, cores, cores,
        )
    if workers > 1 and cores == 1:
        global _single_core_warned
        if not _single_core_warned:
            _single_core_warned = True
            _logger.warning(
                "only one core is visible to this process (affinity mask); "
                "workers=%d will fan out but speedup will be ~1x",
                workers,
            )
    return workers


_worker_profiler = None
_worker_profile_dumped = False


def _ensure_worker_profiler(profile_dir: str):
    """This worker process's accumulating profiler (created on first use).

    A forked worker can inherit the parent's *active* cProfile hook
    (``--profile`` runs); that hook is dropped first — the parent profiler
    cannot observe this process anyway, and two active profilers are an
    error.  The dump is registered both with :mod:`multiprocessing`'s
    finalizers (pool workers skip ``atexit``) and ``atexit`` (inline
    fallback runs in odd hosts), deduplicated by a flag.
    """
    global _worker_profiler
    if _worker_profiler is None:
        import cProfile
        import sys
        from multiprocessing import util as mp_util

        sys.setprofile(None)
        _worker_profiler = cProfile.Profile()
        pid = os.getpid()
        mp_util.Finalize(
            None, _dump_worker_profile, args=(profile_dir, pid), exitpriority=10
        )
        import atexit

        atexit.register(_dump_worker_profile, profile_dir, pid)
    return _worker_profiler


def _dump_worker_profile(profile_dir: str, pid: int) -> None:
    """Write this worker's accumulated profile once (idempotent)."""
    global _worker_profile_dumped
    if _worker_profile_dumped or _worker_profiler is None or os.getpid() != pid:
        return
    _worker_profile_dumped = True
    try:
        os.makedirs(profile_dir, exist_ok=True)
        _worker_profiler.dump_stats(
            os.path.join(profile_dir, f"worker-{pid}.pstats")
        )
    except Exception:  # pragma: no cover - profiling must never fail a run
        _logger.exception("failed to dump worker profile")


def _call_chunk(fn: Callable[[_P], _R], chunk: Sequence[_P]) -> List[_R]:
    """Run one submission unit in a worker (module-level: picklable)."""
    profile_dir = os.environ.get(WORKER_PROFILE_DIR_ENV)
    if not profile_dir:
        return [fn(payload) for payload in chunk]
    profiler = _ensure_worker_profiler(profile_dir)
    profiler.enable()
    try:
        return [fn(payload) for payload in chunk]
    finally:
        profiler.disable()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's worker processes (hung or broken)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead races
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_round(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    units: Sequence[Tuple[int, ...]],
    n_workers: int,
    timeout_s: Optional[float],
    results: Dict[int, _R],
    on_result: Optional[Callable[[int, _R], None]],
) -> List[Tuple[Tuple[int, ...], str]]:
    """One attempt at the unresolved units; returns the failed ones."""
    failures: List[Tuple[Tuple[int, ...], str]] = []
    # Each worker warms the JIT kernel cache once at startup, not per
    # task: forked workers inherit the parent's warm (the initializer is
    # then an instant no-op), spawn-style workers compile/cache-load once
    # before their first payload.  ``warm_kernels`` never raises.
    pool = ProcessPoolExecutor(
        max_workers=min(n_workers, len(units)), initializer=warm_kernels
    )
    killed = False
    try:
        futures = {
            pool.submit(_call_chunk, fn, [payloads[i] for i in unit]): unit
            for unit in units
        }
        not_done = set(futures)
        fatal: Optional[str] = None
        while not_done and fatal is None:
            done, not_done = wait(
                not_done, timeout=timeout_s, return_when=FIRST_COMPLETED
            )
            if not done:
                fatal = (
                    f"stalled: no task completed within {timeout_s}s "
                    "(presumed hung worker)"
                )
                break
            for future in done:
                unit = futures[future]
                try:
                    values = future.result()
                except BrokenProcessPool as exc:
                    fatal = f"process pool broke: {exc!r}"
                    break
                except Exception as exc:
                    failures.append((unit, f"{type(exc).__name__}: {exc}"))
                else:
                    for index, value in zip(unit, values):
                        results[index] = value
                        if on_result is not None:
                            on_result(index, value)
        if fatal is not None:
            resolved = set(results)
            failed = {i for unit, _ in failures for i in unit}
            for unit in futures.values():
                if unit[0] not in resolved and unit[0] not in failed:
                    failures.append((unit, fatal))
            _kill_pool(pool)
            killed = True
    finally:
        if not killed:
            pool.shutdown(wait=True)
    return failures


def map_tasks(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    workers: Optional[int] = 1,
    chunksize: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    jitter: float = DEFAULT_JITTER,
    on_result: Optional[Callable[[int, _R], None]] = None,
    on_failure: Optional[Callable[[WorkerFailure], None]] = None,
) -> List[_R]:
    """Order-preserving map of ``fn`` over ``payloads``, optionally parallel.

    Args:
        fn: A module-level (picklable) worker function.
        payloads: Picklable task descriptions; one ``fn`` call each.
        workers: Worker processes (see :func:`resolve_workers`); ``1`` runs
            inline in this process with zero overhead.
        chunksize: Payloads per worker dispatch for ``workers > 1``; also
            the retry granularity (a failed chunk retries whole).
        timeout_s: Stall detector for the parallel path: if no task
            completes for this long, the pool is presumed hung, its
            processes are killed and the unfinished payloads retried.
            ``None`` disables the detector.
        retries: How many pool re-attempts a failed payload gets (with
            exponential backoff) before being re-run inline in the parent.
        backoff_s: Base of the exponential backoff between retry rounds.
        jitter: Uniform stretch factor on each backoff wait (see
            :func:`backoff_delay`); ``0`` gives the bare exponential.
            Timing-only — results are identical for any value.
        on_result: Called as ``on_result(index, value)`` the first time
            each payload completes — completion order in parallel runs,
            submission order serially.  Must not raise.
        on_failure: Called with a :class:`WorkerFailure` for every failed
            attempt (crash, stall, or in-task exception); the failure is
            being handled — this hook exists for audit logging.

    Returns:
        ``[fn(p) for p in payloads]`` — same values, same order, regardless
        of ``workers`` and of any recovered faults along the way.
    """
    if retries < 0:
        raise ValueError(f"retries cannot be negative, got {retries}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if jitter < 0:
        raise ValueError(f"jitter cannot be negative, got {jitter}")
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(payloads) <= 1:
        serial: List[_R] = []
        for index, payload in enumerate(payloads):
            attempt = 0
            while True:
                try:
                    value = fn(payload)
                    break
                except Exception as exc:
                    attempt += 1
                    if on_failure is not None:
                        on_failure(
                            WorkerFailure(
                                index, attempt, f"{type(exc).__name__}: {exc}"
                            )
                        )
                    if attempt > retries:
                        raise
                    time.sleep(backoff_delay(attempt, backoff_s, jitter))
            serial.append(value)
            if on_result is not None:
                on_result(index, value)
        return serial

    # Warm the parent before any pool exists: forked workers then inherit
    # compiled kernels outright, and the retry path's inline re-runs never
    # pay a compile mid-recovery.
    warm_kernels()
    indices = list(range(len(payloads)))
    units: List[Tuple[int, ...]] = [
        tuple(indices[at:at + chunksize]) for at in range(0, len(indices), chunksize)
    ]
    results: Dict[int, _R] = {}
    attempts: Dict[Tuple[int, ...], int] = {unit: 0 for unit in units}
    pending = units
    while pending:
        failures = _pool_round(
            fn, payloads, pending, n_workers, timeout_s, results, on_result
        )
        retry_units: List[Tuple[int, ...]] = []
        round_attempts = 0
        for unit, cause in failures:
            attempts[unit] += 1
            round_attempts = max(round_attempts, attempts[unit])
            if on_failure is not None:
                on_failure(WorkerFailure(unit[0], attempts[unit], cause))
            if attempts[unit] > retries:
                # Last resort: recompute inline.  Purity keeps the value
                # bit-identical; a payload whose fn deterministically
                # raises surfaces its genuine exception here, exactly as
                # a serial run would.
                for index in unit:
                    value = fn(payloads[index])
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
            else:
                retry_units.append(unit)
        if retry_units:
            time.sleep(backoff_delay(round_attempts, backoff_s, jitter))
        pending = retry_units
    return [results[index] for index in indices]
