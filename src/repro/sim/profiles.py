"""Section VI usage profiles and their generator.

Each simulated household has a *usage profile*: a narrow interval it most
prefers, a wide interval it can tolerate, and a duration.  The paper's
distributions:

* beginning times of the narrow and wide intervals: Poisson with mean 16;
* duration: uniform on {1, ..., 4};
* narrow ending time: beginning + duration;
* wide ending time: uniform on {narrow end + 2, ..., 24};
* power rating: 2 kW (2 kWh per active hour);
* valuation factor rho: uniform on [1, 10].

Sampled beginning times are clipped so the narrow interval ends by hour 22,
keeping the wide-end distribution's support ``[narrow_end + 2, 24]``
nonempty (the paper leaves this boundary case unspecified).  The wide
interval shares the narrow interval's beginning time by default — the wide
window must contain the narrow one and the paper draws "the beginning
times" from one Poisson; set ``wide_head_slack`` to let the wide window
also start earlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.columnar import ColumnarNeighborhood
from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import (
    DEFAULT_RATING_KW,
    HouseholdType,
    Neighborhood,
    Preference,
)


@dataclass(frozen=True)
class UsageProfile:
    """One household's simulated demand for a day (Section VI)."""

    household_id: str
    narrow: Preference
    wide: Preference
    valuation_factor: float
    rating_kw: float = DEFAULT_RATING_KW

    def __post_init__(self) -> None:
        if not self.wide.window.contains(self.narrow.window):
            raise ValueError(
                f"wide window {self.wide.window} must contain narrow {self.narrow.window}"
            )
        if self.narrow.duration != self.wide.duration:
            raise ValueError("narrow and wide preferences must share the duration")

    @property
    def duration(self) -> int:
        return self.narrow.duration

    def as_household(self, true_preference: str = "wide") -> HouseholdType:
        """Materialize a :class:`HouseholdType` with the chosen true window.

        Args:
            true_preference: ``"wide"`` (the Figures 4-6 social-welfare
                setting, where households report their wide interval as
                their true preference) or ``"narrow"`` (the Figure 7 and
                user-study setting).
        """
        if true_preference == "wide":
            preference = self.wide
        elif true_preference == "narrow":
            preference = self.narrow
        else:
            raise ValueError(
                f"true_preference must be 'wide' or 'narrow', got {true_preference!r}"
            )
        return HouseholdType(
            household_id=self.household_id,
            true_preference=preference,
            valuation_factor=self.valuation_factor,
            rating_kw=self.rating_kw,
        )


@dataclass(frozen=True)
class ProfileGeneratorConfig:
    """Distribution parameters of the Section VI generator."""

    poisson_mean: float = 16.0
    min_duration: int = 1
    max_duration: int = 4
    wide_end_gap: int = 2
    rating_kw: float = DEFAULT_RATING_KW
    min_valuation: float = 1.0
    max_valuation: float = 10.0
    wide_head_slack: int = 0

    def __post_init__(self) -> None:
        if self.poisson_mean <= 0:
            raise ValueError(f"Poisson mean must be positive, got {self.poisson_mean}")
        if not 1 <= self.min_duration <= self.max_duration:
            raise ValueError(
                f"bad duration range [{self.min_duration}, {self.max_duration}]"
            )
        if self.max_duration + self.wide_end_gap > HOURS_PER_DAY:
            raise ValueError("durations plus wide-end gap exceed the day")
        if self.wide_end_gap < 0:
            raise ValueError(f"wide-end gap cannot be negative, got {self.wide_end_gap}")
        if self.rating_kw <= 0:
            raise ValueError(f"rating must be positive, got {self.rating_kw}")
        if not 0 < self.min_valuation <= self.max_valuation:
            raise ValueError(
                f"bad valuation range [{self.min_valuation}, {self.max_valuation}]"
            )
        if self.wide_head_slack < 0:
            raise ValueError(f"head slack cannot be negative, got {self.wide_head_slack}")


@dataclass(frozen=True)
class ColumnarProfiles:
    """A sampled population as parallel arrays, one row per household.

    The columnar twin of a ``List[UsageProfile]``; rows keep the sampled
    order (ids are ``hh000...``), and the same Section VI distributional
    invariants hold per row.  ``to_neighborhood`` selects the true window
    the way :meth:`UsageProfile.as_household` does.
    """

    ids: Tuple[str, ...]
    narrow_start: np.ndarray
    narrow_end: np.ndarray
    wide_start: np.ndarray
    wide_end: np.ndarray
    duration: np.ndarray
    rating: np.ndarray
    valuation: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    def to_neighborhood(self, true_preference: str = "wide") -> ColumnarNeighborhood:
        """The columnar neighborhood with the chosen true windows."""
        if true_preference == "wide":
            start, end = self.wide_start, self.wide_end
        elif true_preference == "narrow":
            start, end = self.narrow_start, self.narrow_end
        else:
            raise ValueError(
                f"true_preference must be 'wide' or 'narrow', got {true_preference!r}"
            )
        return ColumnarNeighborhood(
            ids=self.ids,
            true_start=start.copy(),
            true_end=end.copy(),
            duration=self.duration.copy(),
            rating=self.rating.copy(),
            valuation=self.valuation.copy(),
        )

    def to_profiles(self) -> List[UsageProfile]:
        """Materialize the object :class:`UsageProfile` list, same order."""
        return [
            UsageProfile(
                household_id=hid,
                narrow=Preference(Interval(na, nb), v),
                wide=Preference(Interval(wa, wb), v),
                valuation_factor=rho,
                rating_kw=r,
            )
            for hid, na, nb, wa, wb, v, r, rho in zip(
                self.ids,
                self.narrow_start.tolist(),
                self.narrow_end.tolist(),
                self.wide_start.tolist(),
                self.wide_end.tolist(),
                self.duration.tolist(),
                self.rating.tolist(),
                self.valuation.tolist(),
            )
        ]

    @classmethod
    def from_profiles(cls, profiles: Sequence[UsageProfile]) -> "ColumnarProfiles":
        """Lower an object profile list (order kept)."""
        n = len(profiles)
        return cls(
            ids=tuple(p.household_id for p in profiles),
            narrow_start=np.fromiter(
                (p.narrow.window.start for p in profiles), np.intp, count=n
            ),
            narrow_end=np.fromiter(
                (p.narrow.window.end for p in profiles), np.intp, count=n
            ),
            wide_start=np.fromiter(
                (p.wide.window.start for p in profiles), np.intp, count=n
            ),
            wide_end=np.fromiter(
                (p.wide.window.end for p in profiles), np.intp, count=n
            ),
            duration=np.fromiter((p.duration for p in profiles), np.intp, count=n),
            rating=np.fromiter((p.rating_kw for p in profiles), np.float64, count=n),
            valuation=np.fromiter(
                (p.valuation_factor for p in profiles), np.float64, count=n
            ),
        )


class ProfileGenerator:
    """Draws :class:`UsageProfile` populations per Section VI."""

    def __init__(self, config: Optional[ProfileGeneratorConfig] = None) -> None:
        self.config = config if config is not None else ProfileGeneratorConfig()

    def sample(
        self, rng: np.random.Generator, household_id: str
    ) -> UsageProfile:
        """Draw one household's profile."""
        cfg = self.config
        duration = int(rng.integers(cfg.min_duration, cfg.max_duration + 1))

        # Narrow begin: Poisson(16), clipped so that narrow_end + gap <= 24.
        latest_begin = HOURS_PER_DAY - cfg.wide_end_gap - duration
        narrow_begin = int(min(rng.poisson(cfg.poisson_mean), latest_begin))
        narrow_end = narrow_begin + duration

        wide_end = int(rng.integers(narrow_end + cfg.wide_end_gap, HOURS_PER_DAY + 1))
        wide_begin = narrow_begin
        if cfg.wide_head_slack > 0:
            wide_begin = max(0, narrow_begin - int(rng.integers(0, cfg.wide_head_slack + 1)))

        valuation_factor = float(rng.uniform(cfg.min_valuation, cfg.max_valuation))
        return UsageProfile(
            household_id=household_id,
            narrow=Preference(Interval(narrow_begin, narrow_end), duration),
            wide=Preference(Interval(wide_begin, wide_end), duration),
            valuation_factor=valuation_factor,
            rating_kw=cfg.rating_kw,
        )

    def sample_population(
        self,
        rng: np.random.Generator,
        size: int,
        id_prefix: str = "hh",
    ) -> List[UsageProfile]:
        """Draw ``size`` independent profiles with stable ids."""
        if size < 1:
            raise ValueError(f"population size must be >= 1, got {size}")
        width = len(str(size - 1))
        return [
            self.sample(rng, f"{id_prefix}{index:0{width}d}") for index in range(size)
        ]

    def sample_population_columnar(
        self,
        rng: np.random.Generator,
        size: int,
        id_prefix: str = "hh",
        ids: Optional[Tuple[str, ...]] = None,
    ) -> ColumnarProfiles:
        """Draw ``size`` profiles with batched array draws — the large-n path.

        Same marginal distributions as :meth:`sample_population` (each
        field's draw is the vectorized form of the scalar one, in the same
        per-field order), but the generator is consumed **field by field**
        rather than household by household, so the draw sequence differs:
        this is a distinct sampling path on the day's keyed substream, not
        a reorder of the object path's stream.  Same ``(seed, day)`` gives
        the same columnar population on every run — it just is not the
        object path's population.  Equivalence between the two pipelines
        is established on *identical inputs* via the bridges, not at the
        sampler.

        ``ids`` optionally supplies a pre-built id tuple (all days of a
        fixed-n batch share one) — ids are deterministic in ``size``, so
        this only skips the per-day f-string pass, never changes output.
        """
        if size < 1:
            raise ValueError(f"population size must be >= 1, got {size}")
        if ids is not None and len(ids) != size:
            raise ValueError(f"got {len(ids)} ids for population size {size}")
        cfg = self.config
        duration = rng.integers(
            cfg.min_duration, cfg.max_duration + 1, size=size
        ).astype(np.intp)

        # Narrow begin: Poisson(16), clipped so that narrow_end + gap <= 24.
        latest_begin = HOURS_PER_DAY - cfg.wide_end_gap - duration
        narrow_begin = np.minimum(
            rng.poisson(cfg.poisson_mean, size=size), latest_begin
        ).astype(np.intp)
        narrow_end = narrow_begin + duration

        wide_end = rng.integers(
            narrow_end + cfg.wide_end_gap, HOURS_PER_DAY + 1
        ).astype(np.intp)
        wide_begin = narrow_begin
        if cfg.wide_head_slack > 0:
            wide_begin = np.maximum(
                0, narrow_begin - rng.integers(0, cfg.wide_head_slack + 1, size=size)
            ).astype(np.intp)

        valuation = rng.uniform(cfg.min_valuation, cfg.max_valuation, size=size)
        if ids is None:
            width = len(str(size - 1))
            ids = tuple(f"{id_prefix}{index:0{width}d}" for index in range(size))
        return ColumnarProfiles(
            ids=ids,
            narrow_start=narrow_begin,
            narrow_end=narrow_end,
            wide_start=wide_begin,
            wide_end=wide_end,
            duration=duration,
            rating=np.full(size, cfg.rating_kw, dtype=np.float64),
            valuation=valuation,
        )

    def sample_population_columnar_batch(
        self,
        rngs: Sequence[np.random.Generator],
        size: int,
        id_prefix: str = "hh",
    ) -> List[ColumnarProfiles]:
        """Draw one columnar population per generator in ``rngs``.

        The batched front end of the multi-day engine: every day's keyed
        substream is consumed up front, each through exactly the
        field-by-field draw sequence of
        :meth:`sample_population_columnar` — so day ``k``'s population is
        bit-identical to a separate per-day call with ``rngs[k]``.  The
        id tuple (a pure function of ``size``) is built once and shared
        across all D days.
        """
        if size < 1:
            raise ValueError(f"population size must be >= 1, got {size}")
        width = len(str(size - 1))
        ids = tuple(f"{id_prefix}{index:0{width}d}" for index in range(size))
        return [
            self.sample_population_columnar(rng, size, id_prefix, ids=ids)
            for rng in rngs
        ]


def neighborhood_from_profiles(
    profiles: Sequence[UsageProfile], true_preference: str = "wide"
) -> Neighborhood:
    """Assemble a :class:`Neighborhood` from sampled profiles."""
    return Neighborhood.of(
        *(profile.as_household(true_preference) for profile in profiles)
    )
