"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows and series the paper reports;
this module renders them as aligned monospace tables so the shapes are easy
to compare against the figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned table with a header rule."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def fmt(value: float, digits: int = 3) -> str:
    """Fixed-point formatting shared by the experiment printers."""
    return f"{value:.{digits}f}"
