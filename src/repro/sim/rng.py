"""Deterministic randomness helpers shared by the simulators.

Everything in the simulation and user-study packages draws from
``numpy.random.Generator`` / ``random.Random`` instances seeded through
here, so every experiment is reproducible from a single integer seed.

Two derivation schemes coexist:

* **Sequential** (:func:`make_rngs` + :func:`spawn_seed`): one stream that
  child seeds are drawn from in program order.  Fine for inherently serial
  drivers such as the user-study session dealer.
* **Keyed substreams** (:func:`root_entropy` + :func:`make_day_rngs`): each
  simulated day gets its own ``numpy.random.SeedSequence`` keyed by
  ``(root, day)`` via ``spawn_key``, so day *d*'s stream is a pure function
  of the master seed and the day index — independent of how many other
  days ran before it, in which order, or in which process.  This is what
  makes the parallel runtime (:mod:`repro.sim.parallel`) bit-identical to
  a serial run: workers never share generator state because no state is
  carried across day boundaries at all.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import numpy as np


def make_rngs(seed: Optional[int]) -> Tuple[random.Random, np.random.Generator]:
    """A paired (stdlib, numpy) generator from one seed.

    The stdlib generator drives tie-breaking and shuffles; the numpy one
    drives the distribution sampling of Section VI.
    """
    py_rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return py_rng, np_rng


def spawn_seed(rng: random.Random) -> int:
    """A fresh child seed drawn from ``rng`` (stable across platforms)."""
    return rng.randrange(2**63)


def root_entropy(seed: Optional[int]) -> int:
    """Resolve a (possibly absent) master seed to concrete root entropy.

    ``None`` draws fresh OS entropy once, so that all per-day substreams of
    one run still derive from a single root and the run remains internally
    consistent (serial and parallel execution of the *same* run agree).
    """
    if seed is not None:
        return int(seed)
    return int(np.random.SeedSequence().entropy)


def day_seed_sequence(root: int, day: int) -> np.random.SeedSequence:
    """The keyed substream for day ``day`` under master entropy ``root``.

    ``SeedSequence(root, spawn_key=(day,))`` matches what
    ``SeedSequence(root).spawn(n)[day]`` would produce, without having to
    materialize the first ``day`` children — each worker derives only its
    own substream.
    """
    if day < 0:
        raise ValueError(f"day index cannot be negative, got {day}")
    return np.random.SeedSequence(root, spawn_key=(day,))


def make_day_rngs(root: int, day: int) -> Tuple[random.Random, np.random.Generator]:
    """Paired (stdlib, numpy) generators for one simulated day.

    Both generators are pure functions of ``(root, day)``: the numpy one is
    seeded directly from the day's :class:`~numpy.random.SeedSequence`, and
    the stdlib one from a 128-bit integer drawn off the same sequence, so
    neither shares state with any other day's pair.
    """
    seq = day_seed_sequence(root, day)
    np_rng = np.random.default_rng(seq)
    words = seq.generate_state(4, np.uint32)
    py_seed = int.from_bytes(words.tobytes(), "little")
    return random.Random(py_seed), np_rng
