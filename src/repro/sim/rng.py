"""Deterministic randomness helpers shared by the simulators.

Everything in the simulation and user-study packages draws from
``numpy.random.Generator`` / ``random.Random`` instances seeded through
here, so every experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import numpy as np


def make_rngs(seed: Optional[int]) -> Tuple[random.Random, np.random.Generator]:
    """A paired (stdlib, numpy) generator from one seed.

    The stdlib generator drives tie-breaking and shuffles; the numpy one
    drives the distribution sampling of Section VI.
    """
    py_rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return py_rng, np_rng


def spawn_seed(rng: random.Random) -> int:
    """A fresh child seed drawn from ``rng`` (stable across platforms)."""
    return rng.randrange(2**63)
