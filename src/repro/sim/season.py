"""Season-scale operation: weeks of Enki with churn and weekly KPIs.

The paper evaluates single days; an adopting utility runs the mechanism
for months.  This simulator stretches the stack to that horizon: a
neighborhood operates week after week, households occasionally move in
and out (churn), preferences redraw daily per Section VI, and the
operator gets the weekly KPIs it would actually monitor — cost, PAR,
surplus, defection rate — with the standing invariants checked every day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.mechanism import DayOutcome, EnkiMechanism
from ..core.types import HouseholdType, Neighborhood
from ..sim.profiles import ProfileGenerator
from ..sim.results import format_table
from ..sim.rng import spawn_seed

#: Days per simulated week.
DAYS_PER_WEEK = 7


@dataclass
class WeeklyKpis:
    """One week's operator dashboard."""

    week: int
    n_households_start: int
    joins: int
    departures: int
    mean_cost: float
    mean_par: float
    mean_surplus: float
    defection_rate: float

    def as_row(self) -> tuple:
        return (
            self.week,
            self.n_households_start,
            f"+{self.joins}/-{self.departures}",
            f"{self.mean_cost:.1f}",
            f"{self.mean_par:.2f}",
            f"{self.mean_surplus:.2f}",
            f"{self.defection_rate:.1%}",
        )


@dataclass
class SeasonResult:
    """The full season: weekly KPIs plus every settled day."""

    weeks: List[WeeklyKpis]
    outcomes: List[DayOutcome] = field(default_factory=list)

    @property
    def always_budget_balanced(self) -> bool:
        return all(
            outcome.settlement.neighborhood_utility >= -1e-9
            for outcome in self.outcomes
        )

    def render(self) -> str:
        return format_table(
            ["week", "homes", "churn", "cost ($)", "PAR", "surplus ($)",
             "defection"],
            [week.as_row() for week in self.weeks],
        )


class SeasonSimulator:
    """Multi-week Enki operation with household churn.

    Each day every household's preference redraws from the Section VI
    generator (its id and valuation factor persist).  Between weeks,
    each household departs with probability ``churn_rate`` and is replaced
    by a new arrival, keeping the population near its target size.

    Args:
        mechanism: The Enki instance operating the neighborhood.
        generator: Preference distribution.
        churn_rate: Weekly per-household departure probability.
    """

    def __init__(
        self,
        mechanism: Optional[EnkiMechanism] = None,
        generator: Optional[ProfileGenerator] = None,
        churn_rate: float = 0.05,
    ) -> None:
        if not 0.0 <= churn_rate <= 1.0:
            raise ValueError(f"churn rate must be in [0, 1], got {churn_rate}")
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.generator = generator if generator is not None else ProfileGenerator()
        self.churn_rate = churn_rate

    def run(
        self,
        n_households: int,
        weeks: int,
        seed: Optional[int] = None,
        keep_outcomes: bool = True,
    ) -> SeasonResult:
        """Operate the neighborhood for ``weeks`` weeks."""
        if n_households < 1:
            raise ValueError(f"need at least one household, got {n_households}")
        if weeks < 1:
            raise ValueError(f"need at least one week, got {weeks}")
        py_rng = random.Random(seed)
        np_rng = np.random.default_rng(spawn_seed(py_rng))

        # Persistent household identities: id -> valuation factor.
        next_id = n_households
        roster: Dict[str, float] = {
            f"hh{i:04d}": float(np_rng.uniform(1.0, 10.0))
            for i in range(n_households)
        }

        weekly: List[WeeklyKpis] = []
        all_outcomes: List[DayOutcome] = []
        for week in range(weeks):
            start_size = len(roster)
            costs: List[float] = []
            pars: List[float] = []
            surpluses: List[float] = []
            defections = 0
            decisions = 0
            for _ in range(DAYS_PER_WEEK):
                households = []
                for hid, rho in roster.items():
                    profile = self.generator.sample(np_rng, hid)
                    households.append(
                        HouseholdType(hid, profile.wide, valuation_factor=rho)
                    )
                neighborhood = Neighborhood.of(*households)
                outcome = self.mechanism.run_day(
                    neighborhood, rng=random.Random(spawn_seed(py_rng))
                )
                settlement = outcome.settlement
                costs.append(settlement.total_cost)
                pars.append(settlement.load_profile.peak_to_average_ratio())
                surpluses.append(settlement.neighborhood_utility)
                for hid in roster:
                    decisions += 1
                    if outcome.defected(hid):
                        defections += 1
                if keep_outcomes:
                    all_outcomes.append(outcome)

            # Weekly churn: departures replaced by new arrivals.
            departing = [
                hid for hid in list(roster) if py_rng.random() < self.churn_rate
            ]
            for hid in departing:
                del roster[hid]
            for _ in departing:
                roster[f"hh{next_id:04d}"] = float(np_rng.uniform(1.0, 10.0))
                next_id += 1

            weekly.append(
                WeeklyKpis(
                    week=week,
                    n_households_start=start_size,
                    joins=len(departing),
                    departures=len(departing),
                    mean_cost=sum(costs) / len(costs),
                    mean_par=sum(pars) / len(pars),
                    mean_surplus=sum(surpluses) / len(surpluses),
                    defection_rate=defections / decisions if decisions else 0.0,
                )
            )
        return SeasonResult(weeks=weekly, outcomes=all_outcomes)
