"""Zero-copy shared-memory transport for columnar days.

The parallel day fan-out used to pickle a whole neighborhood into every
worker task — at 100k households that is megabytes of object graph per
day, and `BENCH_core.json` showed the pool spending its time serializing
rather than computing.  This module ships a day as a handful of ndarrays
backed by :class:`multiprocessing.shared_memory.SharedMemory` instead:

* :class:`SharedArena` — owns the segments for one parallel run.  It
  creates them, tracks them in a process-wide registry
  (:func:`active_segments`), and unlinks them on :meth:`~SharedArena.
  dispose` (also wired to ``atexit`` so a crashed run cannot leak
  ``/dev/shm`` entries from the owning process).  Disposal is idempotent
  and guarded by owner pid, so ``fork``-inherited copies in workers never
  unlink the parent's segments.
* :class:`SharedColumnarDay` — a tiny picklable descriptor (segment name
  + array specs) that reconstructs a read-only
  :class:`~repro.core.columnar.ColumnarNeighborhood` view inside a worker
  without copying a byte, or compiles a contiguous row slice straight
  into a :class:`~repro.allocation.arrays.CompiledProblem` for sharded
  solves.
* :func:`share_floats` / :func:`attach_floats` (via the arena) — a small
  writable float64 board used by the parallel branch and bound to share
  incumbent bounds across subtree workers.

Worker-side attachments are cached per segment name and immediately
unregistered from the :mod:`multiprocessing` resource tracker: ownership
(and the unlink responsibility) stays with the creating process, which
avoids the Python 3.11 double-registration warnings on attach.  The
trade-off is that a SIGKILLed *parent* leaves its segments to the OS; a
SIGKILLed *worker* leaks nothing because it never owned anything.

Household ids travel as a fixed-width ``S`` byte array inside the segment
when they are ASCII (the generated ``hh000...`` ids always are), with a
pickled-tuple fallback for exotic ids.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..allocation.arrays import CompiledProblem
from ..core.columnar import ColumnarNeighborhood
from ..pricing.base import PricingModel

#: Byte alignment of every array packed into a segment.
_ALIGN = 64

#: Worker-side caches kept per segment name (days in flight are few).
_CACHE_LIMIT = 8

#: Segments owned (created) by this process: name -> (SharedMemory, pid).
_OWNED: Dict[str, Tuple[shared_memory.SharedMemory, int]] = {}

#: Segments attached (not owned) by this process: name -> SharedMemory.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()

#: Reconstructed day state keyed by segment name; each entry is a
#: three-slot list ``[views, neighborhood-or-None, ids-or-None]``.
_DAY_VIEWS: "OrderedDict[str, list]" = OrderedDict()


def active_segments() -> Tuple[str, ...]:
    """Names of shared-memory segments this process currently owns.

    The leak check used by the chaos suite: after every parallel run has
    disposed its arena this must be empty, worker crashes included.
    """
    return tuple(sorted(_OWNED))


def _unregister_tracker(segment: shared_memory.SharedMemory) -> None:
    """Drop ``segment`` from the resource tracker (best effort).

    On 3.11 attaching registers the name again; the creating process owns
    cleanup, so a second registration only produces spurious unlink
    attempts at interpreter shutdown.
    """
    try:
        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker may be absent/shut down
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """A SharedMemory handle for ``name``: owned, cached, or freshly opened."""
    owned = _OWNED.get(name)
    if owned is not None:
        return owned[0]
    segment = _ATTACHED.get(name)
    if segment is not None:
        _ATTACHED.move_to_end(name)
        return segment
    segment = shared_memory.SharedMemory(name=name, create=False)
    _unregister_tracker(segment)
    _ATTACHED[name] = segment
    while len(_ATTACHED) > _CACHE_LIMIT:
        _, stale = _ATTACHED.popitem(last=False)
        _DAY_VIEWS.pop(stale.name, None)
        try:
            stale.close()
        except BufferError:  # pragma: no cover - views still alive
            pass
    return segment


class SharedArena:
    """Owner of the shared-memory segments backing one parallel run.

    Use as a context manager (or call :meth:`dispose` in a ``finally``):
    segments are unlinked exactly once, by the process that created them,
    no matter how many forked workers attached along the way.
    """

    def __init__(self, prefix: str = "enki") -> None:
        self._prefix = prefix
        self._names: list = []
        self._owner_pid = os.getpid()
        self._disposed = False

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """A fresh owned segment of at least ``nbytes`` bytes."""
        if self._disposed:
            raise RuntimeError("arena already disposed")
        name = f"{self._prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 1)
        )
        _OWNED[segment.name] = (segment, self._owner_pid)
        self._names.append(segment.name)
        return segment

    def pack_day(
        self, neighborhood: ColumnarNeighborhood, report_columns: bool = False
    ) -> "SharedColumnarDay":
        """Copy a columnar neighborhood into one segment, once.

        Returns the descriptor workers use to reconstruct zero-copy views;
        the copy here is the only one the day's transport ever makes.

        With ``report_columns=True`` the segment also carries three
        NaN-filled float64 wire columns (``rep_begin`` / ``rep_end`` /
        ``rep_duration``) the streaming ingestor scatters reports into as
        they arrive — the settled shard then travels with its reports
        embedded, no per-task pickled arrays at all.  NaN is the sentinel
        for "never filled": an unfilled row that slips through lands in
        quarantine as a nan-bound report instead of settling silently.
        """
        encoding, ids_arr = _encode_ids(neighborhood.ids)
        arrays = [
            ("ids", ids_arr),
            ("true_start", neighborhood.true_start),
            ("true_end", neighborhood.true_end),
            ("duration", neighborhood.duration),
            ("rating", neighborhood.rating),
            ("valuation", neighborhood.valuation),
        ]
        if report_columns:
            empty = np.full(len(neighborhood), np.nan, dtype=np.float64)
            arrays += [
                ("rep_begin", empty),
                ("rep_end", empty),
                ("rep_duration", empty),
            ]
        specs = []
        offset = 0
        for key, arr in arrays:
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append((key, arr.dtype.str, int(arr.shape[0]), offset))
            offset += arr.nbytes
        segment = self.create(offset)
        for (key, arr), (_, dtype, length, at) in zip(arrays, specs):
            dest = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=segment.buf, offset=at
            )
            dest[:] = arr
        return SharedColumnarDay(
            segment=segment.name,
            n=len(neighborhood),
            specs=tuple(specs),
            ids_encoding=encoding,
            has_reports=report_columns,
        )

    def share_floats(self, count: int, fill: float) -> str:
        """A writable shared float64 vector; returns its segment name."""
        segment = self.create(count * 8)
        view = np.ndarray((count,), dtype=np.float64, buffer=segment.buf)
        view[:] = fill
        return segment.name

    def floats(self, name: str, count: int) -> np.ndarray:
        """The owner's writable view of a :meth:`share_floats` vector."""
        return attach_floats(name, count)

    def dispose(self) -> None:
        """Close and unlink every owned segment (idempotent, pid-guarded).

        Safe to call any number of times and in any order relative to the
        ``atexit`` backstop: a segment that was already unlinked (by an
        earlier ``dispose`` or by :func:`_dispose_all_owned`) is skipped
        silently, with no second unlink attempt and no resource-tracker
        warning.
        """
        if self._disposed:
            return
        self._disposed = True
        if os.getpid() != self._owner_pid:
            # A fork-inherited copy in a worker: the parent owns cleanup.
            return
        names, self._names = self._names, []
        for name in names:
            entry = _OWNED.pop(name, None)
            if entry is None:
                # Already cleaned up (second dispose, or the atexit
                # backstop ran first): nothing left to close or unlink.
                continue
            _unlink_owned(entry[0])

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()

    def __del__(self) -> None:  # pragma: no cover - backstop only
        try:
            self.dispose()
        except Exception:
            pass


def _unlink_owned(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned segment, tolerating every replay."""
    _DAY_VIEWS.pop(segment.name, None)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - caller kept views alive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        # Unlinked out from under us (external cleanup); make sure the
        # resource tracker forgets it too, or its own atexit sweep would
        # warn about (and retry) a segment that no longer exists.
        _unregister_tracker(segment)


@atexit.register
def _dispose_all_owned() -> None:
    """Last-resort unlink of owned segments if a run never disposed.

    Only this process's own segments are touched: fork-inherited entries
    stay in the registry untouched (their owner cleans them up), so a
    worker exiting never unlinks — or even forgets — the parent's
    segments.
    """
    pid = os.getpid()
    for name in list(_OWNED):
        if _OWNED[name][1] != pid:
            continue
        segment, _ = _OWNED.pop(name)
        _unlink_owned(segment)


def attach_floats(name: str, count: int) -> np.ndarray:
    """A writable view of a shared float64 vector by segment name."""
    segment = _attach(name)
    return np.ndarray((count,), dtype=np.float64, buffer=segment.buf)


def _encode_ids(ids: Tuple[str, ...]) -> Tuple[str, np.ndarray]:
    """Lower an id tuple to a packable array: fixed-width bytes or pickle."""
    if ids and all(type(i) is str for i in ids):
        try:
            arr = np.array(ids, dtype="S")
        except UnicodeEncodeError:
            arr = None
        if (
            arr is not None
            and arr.ndim == 1
            and arr.dtype.itemsize > 0
            # Fixed-width 'S' storage strips trailing NULs; such ids (or
            # empty ones) must take the exact pickle route instead.
            and not any((not i) or i[-1] == "\x00" for i in ids)
        ):
            return "bytes", arr
    payload = pickle.dumps(tuple(ids), protocol=pickle.HIGHEST_PROTOCOL)
    return "pickle", np.frombuffer(payload, dtype=np.uint8)


@dataclass(frozen=True)
class SharedColumnarDay:
    """Picklable descriptor of one day's arrays inside a shared segment.

    ``specs`` rows are ``(field, dtype, length, byte_offset)``; the
    descriptor itself is a few hundred bytes no matter how large the
    neighborhood is.  Reconstruction methods cache per segment name, so a
    worker decodes the id vector at most once per day.
    """

    segment: str
    n: int
    specs: Tuple[Tuple[str, str, int, int], ...]
    ids_encoding: str
    #: Whether the segment carries the three streamed report columns
    #: (``rep_begin`` / ``rep_end`` / ``rep_duration``).
    has_reports: bool = False

    def __len__(self) -> int:
        return self.n

    def _entry(self) -> dict:
        cached = _DAY_VIEWS.get(self.segment)
        if cached is not None:
            _DAY_VIEWS.move_to_end(self.segment)
            return cached[0]
        segment = _attach(self.segment)
        views: dict = {}
        for key, dtype, length, offset in self.specs:
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            )
            view.setflags(write=False)
            views[key] = view
        _DAY_VIEWS[self.segment] = [views, None, None]
        while len(_DAY_VIEWS) > _CACHE_LIMIT:
            _DAY_VIEWS.popitem(last=False)
        return views

    def column(self, field: str) -> np.ndarray:
        """A read-only zero-copy view of one packed column by name."""
        views = self._entry()
        if field not in views:
            raise KeyError(f"day segment has no column {field!r}")
        return views[field]

    def report_views(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only views of the embedded report wire columns.

        The worker-side accessor for streamed shards: the reports settle
        straight out of the shared segment, with no per-task arrays.
        """
        if not self.has_reports:
            raise ValueError("day was packed without report columns")
        views = self._entry()
        return views["rep_begin"], views["rep_end"], views["rep_duration"]

    def writable_report_views(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Writable views of the report columns, for the stream ingestor.

        Fresh (uncached) ndarrays over the same shared buffer: the owner
        scatters micro-batches into them while assembling the shard, then
        stops writing before the job is handed to the supervisor.
        """
        if not self.has_reports:
            raise ValueError("day was packed without report columns")
        segment = _attach(self.segment)
        out = []
        for key, dtype, length, offset in self.specs:
            if key in ("rep_begin", "rep_end", "rep_duration"):
                out.append(
                    np.ndarray(
                        (length,),
                        dtype=np.dtype(dtype),
                        buffer=segment.buf,
                        offset=offset,
                    )
                )
        return tuple(out)  # type: ignore[return-value]

    def ids(self) -> Tuple[str, ...]:
        """The full id tuple (decoded once per process per segment)."""
        self._entry()
        cached = _DAY_VIEWS[self.segment]
        if cached[2] is None:
            cached[2] = _decode_ids(cached[0]["ids"], self.ids_encoding)
        return cached[2]

    def neighborhood(self) -> ColumnarNeighborhood:
        """A zero-copy :class:`ColumnarNeighborhood` over the segment.

        The arrays are read-only views of the shared buffer; validation is
        skipped (the packed day was validated at construction).
        """
        self._entry()
        cached = _DAY_VIEWS[self.segment]
        if cached[1] is None:
            views = cached[0]
            cached[1] = ColumnarNeighborhood.from_trusted(
                ids=self.ids(),
                true_start=views["true_start"],
                true_end=views["true_end"],
                duration=views["duration"],
                rating=views["rating"],
                valuation=views["valuation"],
            )
        return cached[1]

    def compile_rows(
        self, lo: int, hi: int, pricing: Optional[PricingModel]
    ) -> CompiledProblem:
        """Compile rows ``[lo, hi)`` (truthful windows) without copying.

        The shard entry point for row-sharded solves: each worker lowers
        only its contiguous slice into a
        :class:`~repro.allocation.arrays.CompiledProblem`.
        """
        if not 0 <= lo <= hi <= self.n:
            raise ValueError(f"rows [{lo}, {hi}) outside [0, {self.n})")
        views = self._entry()
        if self.ids_encoding == "bytes":
            ids = tuple(views["ids"][lo:hi].astype(np.str_).tolist())
        else:
            ids = self.ids()[lo:hi]
        return CompiledProblem.from_arrays(
            ids=ids,
            win_start=views["true_start"][lo:hi],
            win_end=views["true_end"][lo:hi],
            duration=views["duration"][lo:hi],
            rating=views["rating"][lo:hi],
            pricing=pricing,
        )


def _decode_ids(arr: np.ndarray, encoding: str) -> Tuple[str, ...]:
    if encoding == "bytes":
        return tuple(arr.astype(np.str_).tolist())
    if encoding == "pickle":
        return tuple(pickle.loads(arr.tobytes()))
    raise ValueError(f"unknown ids encoding {encoding!r}")
