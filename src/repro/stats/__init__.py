"""Statistics substrate: descriptive summaries and hypothesis tests."""

from .bootstrap import BootstrapCI, bootstrap_ci
from .descriptive import MeanCI, mean_ci, sample_mean, sample_std
from .mannwhitney import MannWhitneyResult, mann_whitney_u, u_statistic
from .wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "MeanCI",
    "mean_ci",
    "sample_mean",
    "sample_std",
    "MannWhitneyResult",
    "mann_whitney_u",
    "u_statistic",
    "WilcoxonResult",
    "wilcoxon_signed_rank",
    "BootstrapCI",
    "bootstrap_ci",
]
