"""Bootstrap confidence intervals (percentile method).

The simulation study's 95% CIs use Student-t intervals; the bootstrap is
the distribution-free companion used by the extension analyses for
statistics whose sampling distribution is awkward (defection-rate
differences, imbalance shares).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap interval for one statistic."""

    estimate: float
    low: float
    high: float
    resamples: int
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = None,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: Optional[int] = None,
) -> BootstrapCI:
    """Percentile bootstrap CI of ``statistic`` over ``values``.

    Args:
        values: The observed sample.
        statistic: Function of a sample; the mean when omitted.
        resamples: Bootstrap replicates.
        confidence: Interval coverage in (0, 1).
        seed: Resampling seed.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if statistic is None:
        statistic = lambda sample: sum(sample) / len(sample)  # noqa: E731

    rng = random.Random(seed)
    n = len(values)
    replicates = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, min(resamples - 1, int(alpha * resamples)))
    high_index = max(0, min(resamples - 1, int((1.0 - alpha) * resamples) - 1))
    return BootstrapCI(
        estimate=statistic(values),
        low=replicates[low_index],
        high=replicates[high_index],
        resamples=resamples,
        confidence=confidence,
    )
