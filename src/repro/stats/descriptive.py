"""Descriptive statistics used across the evaluation (means, 95% CIs)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as sps


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with a symmetric confidence interval."""

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Sample mean with a Student-t confidence interval.

    The paper plots 95% confidence intervals over 10 simulated days; the
    t-interval is the textbook choice at such small n.  A single-value
    sample gets a zero-width interval.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1, confidence=confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return MeanCI(mean=mean, half_width=t_crit * sem, n=n, confidence=confidence)


def sample_mean(values: Sequence[float]) -> float:
    """Plain mean with an explicit empty-sample error."""
    if not values:
        raise ValueError("cannot average an empty sample")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) standard deviation."""
    n = len(values)
    if n < 2:
        raise ValueError("standard deviation needs at least two values")
    mean = sample_mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
