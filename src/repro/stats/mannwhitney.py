"""Mann-Whitney U test, implemented from scratch.

Tables III and Figure 8 of the paper rest on this test.  We implement both
the exact null distribution (dynamic programming over rank sums, valid
without ties) and the tie-corrected normal approximation; tests cross-check
the implementation against ``scipy.stats.mannwhitneyu``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Switch to the normal approximation above this total sample size.
EXACT_SIZE_LIMIT = 25


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sample Mann-Whitney U test."""

    u_statistic: float
    p_value: float
    method: str
    alternative: str


def _rank_with_ties(pooled: Sequence[float]) -> Tuple[List[float], Dict[float, int]]:
    """Midranks of the pooled sample and tie counts per value."""
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    ties: Dict[float, int] = {}
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and pooled[order[j + 1]] == pooled[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        if j > i:
            ties[pooled[order[i]]] = j - i + 1
        i = j + 1
    return ranks, ties


def u_statistic(sample1: Sequence[float], sample2: Sequence[float]) -> float:
    """The U statistic of sample 1 (midranks for ties)."""
    if not sample1 or not sample2:
        raise ValueError("both samples must be nonempty")
    pooled = list(sample1) + list(sample2)
    ranks, _ = _rank_with_ties(pooled)
    n1 = len(sample1)
    rank_sum_1 = sum(ranks[:n1])
    return rank_sum_1 - n1 * (n1 + 1) / 2.0


def _exact_u_cdf(n1: int, n2: int) -> List[float]:
    """Null distribution of U via the classic recurrence (no ties).

    ``count[n1][n2][u]`` satisfies
    ``c(n1, n2, u) = c(n1 - 1, n2, u - n2) + c(n1, n2 - 1, u)``;
    we build it bottom-up over a table of u-arrays.
    """
    max_u = n1 * n2
    # counts[i][j] is a list over u of arrangement counts.
    counts: List[List[List[int]]] = [
        [[0] * (max_u + 1) for _ in range(n2 + 1)] for _ in range(n1 + 1)
    ]
    for j in range(n2 + 1):
        counts[0][j][0] = 1
    for i in range(1, n1 + 1):
        counts[i][0][0] = 1
    for i in range(1, n1 + 1):
        for j in range(1, n2 + 1):
            row = counts[i][j]
            take = counts[i - 1][j]
            skip = counts[i][j - 1]
            for u in range(max_u + 1):
                total = skip[u]
                if u - j >= 0:
                    total += take[u - j]
                row[u] = total
    dist = counts[n1][n2]
    total = sum(dist)
    cumulative = []
    running = 0
    for value in dist:
        running += value
        cumulative.append(running / total)
    return cumulative


def mann_whitney_u(
    sample1: Sequence[float],
    sample2: Sequence[float],
    alternative: str = "two-sided",
) -> MannWhitneyResult:
    """Two-sample Mann-Whitney U test.

    Args:
        sample1: First sample.
        sample2: Second sample.
        alternative: ``"two-sided"``, ``"less"`` (sample 1 stochastically
            smaller) or ``"greater"``.

    Returns:
        The U statistic for sample 1 and the p-value.  Small untied samples
        use the exact distribution; otherwise the tie-corrected normal
        approximation with continuity correction applies.
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"unknown alternative {alternative!r}")
    n1, n2 = len(sample1), len(sample2)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be nonempty")

    pooled = list(sample1) + list(sample2)
    ranks, ties = _rank_with_ties(pooled)
    u1 = sum(ranks[:n1]) - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1

    if not ties and n1 + n2 <= EXACT_SIZE_LIMIT:
        cdf = _exact_u_cdf(n1, n2)
        p_leq = cdf[int(round(u1))]
        p_geq = 1.0 - (cdf[int(round(u1)) - 1] if u1 >= 1 else 0.0)
        if alternative == "less":
            p = p_leq
        elif alternative == "greater":
            p = p_geq
        else:
            p = min(1.0, 2.0 * min(p_leq, p_geq))
        return MannWhitneyResult(u1, p, "exact", alternative)

    n = n1 + n2
    mean_u = n1 * n2 / 2.0
    tie_term = sum(t**3 - t for t in ties.values())
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:
        # All observations identical: no evidence either way.
        return MannWhitneyResult(u1, 1.0, "normal", alternative)
    sd = math.sqrt(variance)

    def z_for(u: float, direction: int) -> float:
        # Continuity correction of 0.5 toward the mean.
        return (u - mean_u - 0.5 * direction) / sd

    if alternative == "less":
        p = _normal_cdf(z_for(u1, -1))
    elif alternative == "greater":
        p = 1.0 - _normal_cdf(z_for(u1, +1))
    else:
        if u1 >= mean_u:
            tail = 1.0 - _normal_cdf(z_for(u1, +1))
        else:
            tail = _normal_cdf(z_for(u1, -1))
        p = min(1.0, 2.0 * tail)
    return MannWhitneyResult(u1, p, "normal", alternative)


def _normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
