"""Wilcoxon signed-rank test, implemented from scratch.

The Figure 8 data are *paired* (each subject's Initial vs Cooperate
selecting ratio); the paper applies an unpaired Mann-Whitney, but the
natural paired companion analysis uses the signed-rank test.  We provide
it (exact null distribution for small samples, normal approximation with
tie correction otherwise) alongside the Mann-Whitney implementation, and
cross-check it against scipy in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Use the exact null distribution up to this many nonzero pairs.
EXACT_PAIR_LIMIT = 20


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a paired signed-rank test."""

    w_statistic: float
    p_value: float
    n_pairs_used: int
    method: str
    alternative: str


def _signed_ranks(differences: Sequence[float]) -> Tuple[List[float], List[int], float]:
    """Midranks of |d|, the signs, and the tie term for the variance."""
    order = sorted(range(len(differences)), key=lambda i: abs(differences[i]))
    ranks = [0.0] * len(differences)
    tie_term = 0.0
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and abs(differences[order[j + 1]]) == abs(differences[order[i]])
        ):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        count = j - i + 1
        if count > 1:
            tie_term += count**3 - count
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        i = j + 1
    signs = [1 if d > 0 else -1 for d in differences]
    return ranks, signs, tie_term


def _exact_w_cdf(ranks: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Null distribution of W+ over sign flips (handles midranks).

    Returns the support (attainable doubled-rank sums) and cumulative
    probabilities.  Ranks are doubled so midranks like 1.5 become
    integers.
    """
    doubled = [int(round(2 * r)) for r in ranks]
    max_sum = sum(doubled)
    counts = [0] * (max_sum + 1)
    counts[0] = 1
    for rank in doubled:
        for value in range(max_sum - rank, -1, -1):
            if counts[value]:
                counts[value + rank] += counts[value]
    total = float(2 ** len(ranks))
    support = [value / 2.0 for value in range(max_sum + 1)]
    cumulative = []
    running = 0.0
    for count in counts:
        running += count
        cumulative.append(running / total)
    return support, cumulative


def wilcoxon_signed_rank(
    sample1: Sequence[float],
    sample2: Sequence[float],
    alternative: str = "two-sided",
) -> WilcoxonResult:
    """Paired signed-rank test of ``sample1`` vs ``sample2``.

    Zero differences are dropped (the standard Wilcoxon treatment).

    Args:
        sample1: First paired sample.
        sample2: Second paired sample (same length).
        alternative: ``"two-sided"``, ``"less"`` (sample1 < sample2) or
            ``"greater"``.

    Returns:
        W+ (the positive-rank sum) and the p-value.
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"unknown alternative {alternative!r}")
    if len(sample1) != len(sample2):
        raise ValueError(
            f"paired samples must align, got {len(sample1)} vs {len(sample2)}"
        )
    differences = [a - b for a, b in zip(sample1, sample2) if a != b]
    n = len(differences)
    if n == 0:
        return WilcoxonResult(0.0, 1.0, 0, "degenerate", alternative)

    ranks, signs, tie_term = _signed_ranks(differences)
    w_plus = sum(rank for rank, sign in zip(ranks, signs) if sign > 0)

    if n <= EXACT_PAIR_LIMIT and tie_term == 0.0:
        support, cdf = _exact_w_cdf(ranks)
        index = min(
            range(len(support)), key=lambda i: abs(support[i] - w_plus)
        )
        p_leq = cdf[index]
        p_geq = 1.0 - (cdf[index - 1] if index >= 1 else 0.0)
        if alternative == "less":
            p = p_leq
        elif alternative == "greater":
            p = p_geq
        else:
            p = min(1.0, 2.0 * min(p_leq, p_geq))
        return WilcoxonResult(w_plus, p, n, "exact", alternative)

    mean_w = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term / 48.0
    if variance <= 0:
        return WilcoxonResult(w_plus, 1.0, n, "normal", alternative)
    sd = math.sqrt(variance)

    def cdf_at(w: float, direction: int) -> float:
        return 0.5 * (1.0 + math.erf((w - mean_w - 0.5 * direction) / (sd * math.sqrt(2.0))))

    if alternative == "less":
        p = cdf_at(w_plus, -1)
    elif alternative == "greater":
        p = 1.0 - cdf_at(w_plus, +1)
    else:
        if w_plus >= mean_w:
            tail = 1.0 - cdf_at(w_plus, +1)
        else:
            tail = cdf_at(w_plus, -1)
        p = min(1.0, 2.0 * tail)
    return WilcoxonResult(w_plus, p, n, "normal", alternative)
