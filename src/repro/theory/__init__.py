"""Executable counterparts of the paper's Section V theorems."""

from .bayes_nash import BayesNashEstimate, estimate_bayes_nash_regret
from .payment_properties import (
    PropertyCheck,
    check_all_properties,
    check_property_1,
    check_property_2,
    check_property_3,
)
from .bestresponse import (
    BestResponseResult,
    best_response_sweep,
    candidate_windows,
)
from .properties import (
    ParticipationGain,
    budget_balance_margin,
    find_negative_utility_day,
    incentive_regret,
    pareto_efficiency_ratio,
    participation_gain,
)

__all__ = [
    "BayesNashEstimate",
    "estimate_bayes_nash_regret",
    "PropertyCheck",
    "check_all_properties",
    "check_property_1",
    "check_property_2",
    "check_property_3",
    "BestResponseResult",
    "best_response_sweep",
    "candidate_windows",
    "ParticipationGain",
    "budget_balance_margin",
    "find_negative_utility_day",
    "incentive_regret",
    "pareto_efficiency_ratio",
    "participation_gain",
]
