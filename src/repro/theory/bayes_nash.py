"""Distributional incentive-compatibility probe (Theorem 2, properly).

Figure 7 checks one fixed world.  Weak *Bayesian* incentive compatibility
is a statement in expectation over opponents' types: truth-telling should
maximize a household's *expected* utility when the others' preferences are
drawn from the population distribution.  This module estimates exactly
that: sample many §VI worlds around a fixed target household, sweep the
target's reportable windows in each, and aggregate the regret of
truth-telling across worlds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.intervals import Interval
from ..core.mechanism import EnkiMechanism
from ..core.types import HouseholdType, Neighborhood
from ..sim.profiles import ProfileGenerator
from ..sim.rng import spawn_seed
from .bestresponse import Window, best_response_sweep


@dataclass
class BayesNashEstimate:
    """Monte-Carlo evidence on weak Bayesian incentive compatibility."""

    target_window: Window
    worlds: int
    mean_regret: float
    max_regret: float
    truthful_best_fraction: float
    mean_utilities: Dict[Window, float]

    @property
    def expected_best_window(self) -> Window:
        """The report maximizing the *expected* utility across worlds."""
        return max(self.mean_utilities, key=lambda w: self.mean_utilities[w])

    def truthful_maximizes_expectation(self, tolerance: float = 1e-9) -> bool:
        """The weak-Bayesian-IC claim: truth maximizes expected utility."""
        best = self.mean_utilities[self.expected_best_window]
        return best <= self.mean_utilities[self.target_window] + tolerance


def estimate_bayes_nash_regret(
    target: HouseholdType,
    n_opponents: int = 20,
    worlds: int = 10,
    repeats_per_world: int = 2,
    exploration: Optional[Interval] = None,
    generator: Optional[ProfileGenerator] = None,
    mechanism: Optional[EnkiMechanism] = None,
    seed: Optional[int] = None,
) -> BayesNashEstimate:
    """Estimate the target's expected regret for truth-telling.

    Args:
        target: The probed household (its true preference stays fixed).
        n_opponents: Opponents per sampled world, drawn from the Section VI
            distribution with their narrow windows as truths.
        worlds: Independent opponent draws to average over.
        repeats_per_world: Allocation-randomness repeats inside each world.
        exploration: Range of candidate reported windows; defaults to the
            target's true window padded by 2 hours each side.
        generator: Opponent type distribution (§VI defaults).
        mechanism: Enki instance (§VI defaults).
        seed: Master seed.

    Returns:
        Per-window expected utilities plus regret aggregates.
    """
    if worlds < 1:
        raise ValueError(f"worlds must be >= 1, got {worlds}")
    generator = generator if generator is not None else ProfileGenerator()
    mechanism = mechanism if mechanism is not None else EnkiMechanism()
    master = random.Random(seed)
    np_rng = np.random.default_rng(spawn_seed(master))

    if exploration is None:
        window = target.true_preference.window
        exploration = Interval(max(0, window.start - 2), min(24, window.end + 2))

    sums: Dict[Window, float] = {}
    regrets: List[float] = []
    truthful_best = 0
    truthful_window = (
        target.true_preference.window.start,
        target.true_preference.window.end,
    )

    for _ in range(worlds):
        opponents = generator.sample_population(np_rng, n_opponents, id_prefix="opp")
        households = [target] + [
            profile.as_household("narrow") for profile in opponents
        ]
        neighborhood = Neighborhood.of(*households)
        sweep = best_response_sweep(
            neighborhood,
            target.household_id,
            mechanism=mechanism,
            exploration=exploration,
            repeats=repeats_per_world,
            seed=spawn_seed(master),
        )
        for window, utility in sweep.utilities.items():
            sums[window] = sums.get(window, 0.0) + utility
        regrets.append(sweep.regret())
        if sweep.truthful_is_best(tolerance=1e-9):
            truthful_best += 1

    mean_utilities = {window: total / worlds for window, total in sums.items()}
    return BayesNashEstimate(
        target_window=truthful_window,
        worlds=worlds,
        mean_regret=sum(regrets) / worlds,
        max_regret=max(regrets),
        truthful_best_fraction=truthful_best / worlds,
        mean_utilities=mean_utilities,
    )
