"""Best-response exploration: the Figure 7 machinery.

Fix one household, keep everyone else truthful, and sweep every window the
household could report (all ``[a, b)`` with ``b - a >= v`` inside some
exploration range).  For each candidate the day is simulated end to end —
allocation, closest-feasible consumption (the household defects back into
its true window when its allocation misses it), settlement — and the
household's quasilinear utility is averaged over repeated runs to wash out
allocation tie-breaking.  Weak Bayesian incentive compatibility predicts
the truthful report maximizes this curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import EnkiMechanism, truthful_reports
from ..core.types import HouseholdId, Neighborhood, Preference, Report
from ..sim.rng import spawn_seed

#: A candidate reported window, as the paper's (beginning, ending) pair.
Window = Tuple[int, int]


@dataclass
class BestResponseResult:
    """Mean utility of every candidate report for the target household."""

    target: HouseholdId
    utilities: Dict[Window, float]
    truthful_window: Window
    repeats: int

    @property
    def best_window(self) -> Window:
        """The report with the highest mean utility."""
        return max(self.utilities, key=lambda w: self.utilities[w])

    @property
    def truthful_utility(self) -> float:
        return self.utilities[self.truthful_window]

    @property
    def best_utility(self) -> float:
        return self.utilities[self.best_window]

    def truthful_is_best(self, tolerance: float = 1e-9) -> bool:
        """True when no candidate beats truth-telling by more than ``tolerance``."""
        return self.best_utility <= self.truthful_utility + tolerance

    def regret(self) -> float:
        """How much utility truth-telling leaves on the table (>= 0)."""
        return max(0.0, self.best_utility - self.truthful_utility)


def candidate_windows(
    duration: int,
    exploration: Optional[Interval] = None,
) -> List[Window]:
    """All windows of length >= duration inside the exploration interval."""
    bounds = exploration if exploration is not None else Interval(0, HOURS_PER_DAY)
    windows: List[Window] = []
    for begin in range(bounds.start, bounds.end - duration + 1):
        for end in range(begin + duration, bounds.end + 1):
            windows.append((begin, end))
    return windows


def best_response_sweep(
    neighborhood: Neighborhood,
    target: HouseholdId,
    mechanism: Optional[EnkiMechanism] = None,
    exploration: Optional[Interval] = None,
    repeats: int = 10,
    seed: Optional[int] = None,
) -> BestResponseResult:
    """Sweep the target household's reportable windows (Figure 7).

    Args:
        neighborhood: Household types; everyone but ``target`` reports
            truthfully.
        target: The household whose best response is explored.
        mechanism: The Enki instance to evaluate under (defaults fresh).
        exploration: Range of candidate windows; the target's *true* window
            when omitted is not assumed — the full day is swept unless this
            narrows it (the paper sweeps the wide interval).
        repeats: Days averaged per candidate (the paper uses 10).
        seed: Master seed; each (candidate, repeat) gets a child seed so
            candidates face identical tie-break randomness per repeat.
    """
    if target not in neighborhood:
        raise KeyError(f"unknown household {target!r}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    mechanism = mechanism if mechanism is not None else EnkiMechanism()

    true_pref = neighborhood[target].true_preference
    duration = true_pref.duration
    windows = candidate_windows(duration, exploration)

    base_reports = truthful_reports(neighborhood)
    master = random.Random(seed)
    repeat_seeds = [spawn_seed(master) for _ in range(repeats)]

    utilities: Dict[Window, float] = {}
    for begin, end in windows:
        candidate = Preference(Interval(begin, end), duration)
        reports = dict(base_reports)
        reports[target] = Report(target, candidate)
        total = 0.0
        for repeat_seed in repeat_seeds:
            outcome = mechanism.run_day(
                neighborhood, reports, rng=random.Random(repeat_seed)
            )
            total += outcome.settlement.utilities[target]
        utilities[(begin, end)] = total / repeats

    return BestResponseResult(
        target=target,
        utilities=utilities,
        truthful_window=(true_pref.window.start, true_pref.window.end),
        repeats=repeats,
    )
