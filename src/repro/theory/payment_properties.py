"""Empirical verifiers for the payment mechanism's Properties 1-3.

Section IV-B2 states three all-else-equal properties the payment rule must
respect.  Each verifier here constructs (or accepts) a controlled pair of
households differing only in the relevant attribute, runs a settled day,
and checks the predicted payment ordering:

* **Property 1**: truthfully reporting a *wider* window pays less.
* **Property 2**: truthfully preferring *off-peak* hours pays less.
* **Property 3**: *deviating* from the allocation pays more than not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.intervals import Interval
from ..core.mechanism import EnkiMechanism, truthful_reports
from ..core.types import HouseholdType, Neighborhood, Preference


@dataclass(frozen=True)
class PropertyCheck:
    """One property verification: the two payments and the verdict."""

    property_id: int
    description: str
    favored_payment: float
    disfavored_payment: float

    @property
    def holds(self) -> bool:
        return self.favored_payment <= self.disfavored_payment + 1e-9


def check_property_1(
    mechanism: Optional[EnkiMechanism] = None,
    repeats: int = 5,
    seed: Optional[int] = None,
) -> PropertyCheck:
    """Wider truthful window pays less (all else equal).

    Two households share the same demand over the same evening, but one
    reports a 2-hour-wider window; a common background population fixes
    the peak.  Payments are averaged over allocation randomness.
    """
    mechanism = mechanism if mechanism is not None else EnkiMechanism()
    rng = random.Random(seed)
    narrow_total = 0.0
    wide_total = 0.0
    for _ in range(repeats):
        households = [
            HouseholdType("narrow", Preference.of(18, 21, 2), 5.0),
            HouseholdType("wide", Preference.of(17, 22, 2), 5.0),
        ] + [
            HouseholdType(f"bg{i}", Preference.of(17 + i % 3, 23, 2), 5.0)
            for i in range(6)
        ]
        outcome = mechanism.run_day(
            Neighborhood.of(*households), rng=random.Random(rng.randrange(2**63))
        )
        narrow_total += outcome.settlement.payments["narrow"]
        wide_total += outcome.settlement.payments["wide"]
    return PropertyCheck(
        property_id=1,
        description="wider truthful window pays less",
        favored_payment=wide_total / repeats,
        disfavored_payment=narrow_total / repeats,
    )


def check_property_2(
    mechanism: Optional[EnkiMechanism] = None,
    repeats: int = 5,
    seed: Optional[int] = None,
) -> PropertyCheck:
    """Off-peak preference pays less (all else equal).

    The Example 3 structure: equal-width windows, one off-peak, the others
    stacked on the evening peak.
    """
    mechanism = mechanism if mechanism is not None else EnkiMechanism()
    rng = random.Random(seed)
    offpeak_total = 0.0
    onpeak_total = 0.0
    for _ in range(repeats):
        households = [
            HouseholdType("offpeak", Preference.of(10, 13, 2), 5.0),
            HouseholdType("onpeak", Preference.of(18, 21, 2), 5.0),
        ] + [
            HouseholdType(f"bg{i}", Preference.of(18, 22, 2), 5.0)
            for i in range(6)
        ]
        outcome = mechanism.run_day(
            Neighborhood.of(*households), rng=random.Random(rng.randrange(2**63))
        )
        offpeak_total += outcome.settlement.payments["offpeak"]
        onpeak_total += outcome.settlement.payments["onpeak"]
    return PropertyCheck(
        property_id=2,
        description="off-peak truthful preference pays less",
        favored_payment=offpeak_total / repeats,
        disfavored_payment=onpeak_total / repeats,
    )


def check_property_3(
    mechanism: Optional[EnkiMechanism] = None,
    seed: Optional[int] = None,
) -> PropertyCheck:
    """Deviating from the allocation pays more (Example 4's structure)."""
    mechanism = mechanism if mechanism is not None else EnkiMechanism()
    rng = random.Random(seed)
    pref = Preference.of(18, 20, 1)
    neighborhood = Neighborhood.of(
        HouseholdType("A", pref, 5.0), HouseholdType("B", pref, 5.0)
    )
    reports = truthful_reports(neighborhood)
    allocation = mechanism.allocate(neighborhood, reports, rng).allocation
    consumption = dict(allocation)
    # B overrides its allocation with the hour it was not assigned.
    other = Interval(18, 19) if allocation["B"].start == 19 else Interval(19, 20)
    consumption["B"] = other
    settlement = mechanism.settle(neighborhood, reports, allocation, consumption)
    return PropertyCheck(
        property_id=3,
        description="deviating from the allocation pays more",
        favored_payment=settlement.payments["A"],
        disfavored_payment=settlement.payments["B"],
    )


def check_all_properties(
    mechanism: Optional[EnkiMechanism] = None,
    seed: Optional[int] = None,
) -> List[PropertyCheck]:
    """Run all three verifiers."""
    rng = random.Random(seed)
    return [
        check_property_1(mechanism, seed=rng.randrange(2**63)),
        check_property_2(mechanism, seed=rng.randrange(2**63)),
        check_property_3(mechanism, seed=rng.randrange(2**63)),
    ]
