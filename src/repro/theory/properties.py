"""Empirical checkers for the paper's Section V economic properties.

Each theorem gets an executable counterpart:

* Theorem 1 (ex ante budget balance): ``budget_balance_margin`` verifies
  ``sum(p) - kappa = (xi - 1) * kappa >= 0`` on any settled day.
* Theorem 2 (weak Bayesian IC): delegated to
  :mod:`repro.theory.bestresponse` — ``incentive_regret`` summarizes it.
* Theorem 3 (weak Pareto efficiency): ``pareto_efficiency_ratio`` compares
  the total true valuation under Enki's greedy equilibrium allocation with
  the best achievable total valuation.
* Theorem 4 (no individual rationality): ``find_negative_utility_day``
  searches generated neighborhoods for a household with negative utility.
* Theorems 5-6 (participation incentives): ``participation_gain`` compares
  expected utilities with Enki against the proportional price-taking
  counterfactual, overall and for the most flexible household.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.flexibility import predicted_flexibility
from ..core.mechanism import DayOutcome, EnkiMechanism, truthful_reports
from ..core.types import Neighborhood
from ..core.valuation import max_valuation
from ..mechanisms.proportional import ProportionalMechanism
from ..sim.profiles import ProfileGenerator, neighborhood_from_profiles
from .bestresponse import BestResponseResult, best_response_sweep


def budget_balance_margin(outcome: DayOutcome) -> float:
    """Theorem 1: the center's surplus ``sum(p) - kappa``; >= 0 means balanced."""
    settlement = outcome.settlement
    return sum(settlement.payments.values()) - settlement.total_cost


def pareto_efficiency_ratio(
    neighborhood: Neighborhood,
    mechanism: Optional[EnkiMechanism] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Theorem 3: achieved fraction of the maximum total true valuation.

    Under truthful equilibrium reports every allocation inside the reported
    window satisfies the true preference fully, so the achieved total
    valuation is compared against the unconstrained maximum
    ``sum_i rho_i * v_i / 2``; 1.0 means fully Pareto efficient on the
    valuation side.
    """
    mechanism = mechanism if mechanism is not None else EnkiMechanism()
    outcome = mechanism.run_day(neighborhood, rng=rng)
    achieved = sum(outcome.settlement.valuations.values())
    maximum = sum(
        max_valuation(hh.duration, hh.valuation_factor) for hh in neighborhood
    )
    if maximum <= 0:
        raise ValueError("neighborhood has no positive valuations to compare")
    return achieved / maximum


def incentive_regret(
    neighborhood: Neighborhood,
    target: str,
    repeats: int = 10,
    seed: Optional[int] = None,
) -> BestResponseResult:
    """Theorem 2 probe: the target's regret for truth-telling (see Fig 7)."""
    return best_response_sweep(
        neighborhood, target, repeats=repeats, seed=seed
    )


def find_negative_utility_day(
    n_households: int = 20,
    max_days: int = 50,
    seed: Optional[int] = None,
) -> Optional[Tuple[DayOutcome, str]]:
    """Theorem 4: hunt for a household with negative utility under Enki.

    Generates fresh neighborhoods until some truthful, cooperative
    household ends a day with ``U_i < 0`` (valuations are private but
    payments track the peak, so low-rho households can go under).

    Returns:
        The offending day and household id, or ``None`` if none was found
        within ``max_days`` (which would itself be evidence worth noting).
    """
    generator = ProfileGenerator()
    np_rng = np.random.default_rng(seed)
    mechanism = EnkiMechanism()
    for day in range(max_days):
        profiles = generator.sample_population(np_rng, n_households)
        neighborhood = neighborhood_from_profiles(profiles, "wide")
        outcome = mechanism.run_day(neighborhood, rng=random.Random(day))
        for hid, utility in outcome.settlement.utilities.items():
            if utility < 0:
                return outcome, hid
    return None


@dataclass
class ParticipationGain:
    """Theorems 5-6: expected utilities with and without Enki."""

    mean_utility_enki: float
    mean_utility_baseline: float
    flexible_utility_enki: float
    flexible_utility_baseline: float
    flexible_household: str

    @property
    def mean_gain(self) -> float:
        """Theorem 5's claim is that this is >= 0."""
        return self.mean_utility_enki - self.mean_utility_baseline

    @property
    def flexible_gain(self) -> float:
        """Theorem 6's claim is that this is >= 0."""
        return self.flexible_utility_enki - self.flexible_utility_baseline


def participation_gain(
    neighborhood: Neighborhood,
    days: int = 10,
    seed: Optional[int] = None,
) -> ParticipationGain:
    """Average per-household utility under Enki vs the price-taking baseline.

    Both regimes see the same neighborhood for ``days`` settled days; the
    baseline is :class:`~repro.mechanisms.proportional.ProportionalMechanism`
    (Section V-D's non-participation model, everyone consuming at its
    preferred slot).
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    enki = EnkiMechanism()
    baseline = ProportionalMechanism()
    rng = random.Random(seed)

    reports = truthful_reports(neighborhood)
    flexibility = predicted_flexibility(
        {hid: report.preference for hid, report in reports.items()}
    )
    flexible_household = max(flexibility, key=lambda hid: flexibility[hid])

    enki_total = 0.0
    base_total = 0.0
    enki_flex = 0.0
    base_flex = 0.0
    for day in range(days):
        day_rng = random.Random(rng.randrange(2**63))
        enki_outcome = enki.run_day(neighborhood, rng=day_rng)
        base_outcome = baseline.run_day(neighborhood, rng=day_rng)
        enki_total += sum(enki_outcome.settlement.utilities.values())
        base_total += sum(base_outcome.utilities.values())
        enki_flex += enki_outcome.settlement.utilities[flexible_household]
        base_flex += base_outcome.utilities[flexible_household]

    n = len(neighborhood)
    return ParticipationGain(
        mean_utility_enki=enki_total / (days * n),
        mean_utility_baseline=base_total / (days * n),
        flexible_utility_enki=enki_flex / days,
        flexible_utility_baseline=base_flex / days,
        flexible_household=flexible_household,
    )
